"""The unified ExecutionOptions API.

Pins the single-owner defaulting rules (in particular the
columnar-on-at-batch_size>=64 rule applying identically to the batch and
streaming engines -- they used to disagree), the legacy-kwarg adapter's
deprecation semantics, and options= acceptance across every front-end.
"""

import warnings

import pytest

from repro.core.columnar import COLUMNAR_MIN_BATCH
from repro.core.optimizer import Catalog
from repro.core.options import (
    DEFAULT_MAX_BUFFER,
    ExecutionOptions,
    merge_options,
)
from repro.core.schema import Relation, Schema
from repro.engine.runner import run_plan
from repro.functional.stream_api import QueryContext
from repro.sql.catalog import SqlSession
from repro.streaming.runner import stream_plan


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.register(Relation(
        "t", Schema.of("k", "v"), [(i % 4, i) for i in range(96)]))
    return catalog


@pytest.fixture
def session(catalog):
    return SqlSession(catalog)


SQL = "SELECT k, COUNT(*) FROM t GROUP BY k"


class TestResolve:
    def test_defaults(self):
        resolved = ExecutionOptions().resolve()
        assert resolved.batch_size == 1
        assert resolved.executor == "inline"
        assert resolved.parallelism is None
        assert resolved.columnar is False
        assert resolved.rate is None
        assert resolved.max_buffer == DEFAULT_MAX_BUFFER
        assert resolved.on_overflow == "shed"

    def test_streaming_default_batch_size(self):
        resolved = ExecutionOptions().resolve(default_batch_size=64)
        assert resolved.batch_size == 64
        assert resolved.columnar is True  # 64 >= COLUMNAR_MIN_BATCH

    @pytest.mark.parametrize("batch_size,expected", [
        (1, False),
        (COLUMNAR_MIN_BATCH - 1, False),
        (COLUMNAR_MIN_BATCH, True),
        (1024, True),
    ])
    def test_columnar_rule_single_owner(self, batch_size, expected):
        resolved = ExecutionOptions(batch_size=batch_size).resolve()
        assert resolved.columnar is expected

    def test_explicit_columnar_wins_over_rule(self):
        assert ExecutionOptions(
            batch_size=1024, columnar=False).resolve().columnar is False
        assert ExecutionOptions(
            batch_size=1, columnar=True).resolve().columnar is True

    @pytest.mark.parametrize("bad", [
        dict(batch_size=0), dict(parallelism=0), dict(rate=0.0),
        dict(rate=-1.0), dict(max_buffer=0), dict(on_overflow="panic"),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ExecutionOptions(**bad).resolve()

    def test_overlay_set_fields_win(self):
        base = ExecutionOptions(batch_size=8, executor="threads")
        over = base.overlay(ExecutionOptions(batch_size=64))
        assert over.batch_size == 64
        assert over.executor == "threads"
        assert base.overlay(None) is base

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecutionOptions().batch_size = 5


class TestMergeAdapter:
    def test_legacy_kwargs_alone_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            merged = merge_options(None, dict(batch_size=32, executor=None))
        assert merged.batch_size == 32
        assert merged.executor is None

    def test_conflict_warns_and_options_wins(self):
        options = ExecutionOptions(batch_size=64)
        with pytest.warns(DeprecationWarning, match="batch_size"):
            merged = merge_options(options, dict(batch_size=8))
        assert merged.batch_size == 64

    def test_agreeing_values_do_not_warn(self):
        options = ExecutionOptions(batch_size=64)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            merged = merge_options(options, dict(batch_size=64))
        assert merged.batch_size == 64

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="turbo"):
            merge_options(None, dict(turbo=True))


class TestColumnarParityRegression:
    """stream_plan's columnar default used to disagree with the batch
    engine (explicit opt-in vs on-at-batch_size>=64); both now resolve
    through the one rule."""

    @pytest.mark.parametrize("batch_size", [1, 32, 64, 256])
    def test_streaming_matches_batch_columnar_default(self, session,
                                                      batch_size):
        plan = session.plan(SQL)
        batch_result = run_plan(
            plan, options=ExecutionOptions(batch_size=batch_size))
        query = session.stream(SQL, options=ExecutionOptions(
            batch_size=batch_size))
        expected = batch_size >= COLUMNAR_MIN_BATCH
        assert query.options.columnar is expected
        assert query.cluster.columnar is (expected and batch_size > 1)
        query.run()
        assert query.snapshot() == sorted(batch_result.results)
        # the batch run resolved through the same rule
        if expected and batch_size > 1:
            assert batch_result.metrics.columnar_batches > 0

    def test_streaming_columnar_actually_vectorizes(self, session):
        query = session.stream(SQL, options=ExecutionOptions(batch_size=96))
        query.run()
        assert query.cluster.metrics.columnar_batches > 0


class TestFrontEnds:
    """options= accepted everywhere; legacy kwargs still work."""

    def test_run_plan_options(self, session):
        plan = session.plan(SQL)
        legacy = run_plan(plan, batch_size=16, executor="inline")
        unified = run_plan(plan, options=ExecutionOptions(
            batch_size=16, executor="inline"))
        assert sorted(legacy.results) == sorted(unified.results)

    def test_sql_execute_options(self, session):
        legacy = session.execute(SQL, batch_size=16)
        unified = session.execute(
            SQL, options=ExecutionOptions(batch_size=16))
        assert sorted(legacy.results) == sorted(unified.results)

    def test_sql_execute_conflict_warns(self, session):
        with pytest.warns(DeprecationWarning):
            session.execute(SQL, batch_size=8,
                            options=ExecutionOptions(batch_size=16))

    def test_sql_stream_options(self, session):
        query = session.stream(SQL, options=ExecutionOptions(batch_size=16))
        query.run()
        assert query.snapshot() == sorted(session.execute(SQL).results)

    def test_session_execution_layer(self, catalog):
        session = SqlSession(
            catalog, execution=ExecutionOptions(batch_size=16))
        query = session.stream(SQL)
        assert query.options.batch_size == 16
        # per-call options overlay the session layer
        query2 = session.stream(SQL, options=ExecutionOptions(batch_size=8))
        assert query2.options.batch_size == 8

    def test_functional_execute_options(self, catalog):
        ctx = QueryContext(catalog, machines=2)
        legacy = (ctx.stream("t").group_by("k").agg_count()
                  .execute(batch_size=16))
        unified = (ctx.stream("t").group_by("k").agg_count()
                   .execute(options=ExecutionOptions(batch_size=16)))
        assert sorted(legacy.results) == sorted(unified.results)

    def test_functional_stream_options(self, catalog):
        ctx = QueryContext(catalog, machines=2)
        query = (ctx.stream("t").group_by("k").agg_count()
                 .stream(options=ExecutionOptions(batch_size=16)))
        assert query.options.batch_size == 16
        query.run()
        batch = (ctx.stream("t").group_by("k").agg_count().execute())
        assert query.snapshot() == sorted(batch.results)

    def test_functional_context_execution_layer(self, catalog):
        ctx = QueryContext(catalog, execution=ExecutionOptions(batch_size=16),
                           machines=2)
        query = ctx.stream("t").group_by("k").agg_count().stream()
        assert query.options.batch_size == 16

    def test_streaming_rejects_parallelism_via_options(self, session):
        from repro.storm.executor import ExecutorError

        with pytest.raises(ExecutorError, match="parallelism"):
            session.stream(SQL, options=ExecutionOptions(parallelism=2))
