"""Unit tests for the continuous streaming runtime (repro.streaming)."""

import math
import random
import threading
from collections import Counter

import pytest

from repro.core.optimizer import OptimizerOptions
from repro.core.schema import Relation, Schema
from repro.engine.component import AggComponent, PhysicalPlan, SourceComponent
from repro.engine.operators import count, total
from repro.engine.runner import run_plan
from repro.engine.windows import WindowClause, WindowSpec
from repro.sql.catalog import SqlSession
from repro.storm.executor import ExecutorError
from repro.storm.metrics import StreamMetrics
from repro.streaming import (
    Backpressure,
    CallbackSource,
    DeltaSink,
    ReplaySource,
    StreamingCluster,
    WatermarkTracker,
    stream_plan,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_events(n=200, keys=4, seed=3):
    rng = random.Random(seed)
    rows = [(ts, rng.randrange(keys), rng.randrange(10)) for ts in range(n)]
    return Relation("events", Schema.of("ts", "key", "value"), rows)


def sliding_agg_plan(events, size=50, parallelism=2):
    return PhysicalPlan(
        sources=[SourceComponent("events", events)],
        joins=[],
        aggregation=AggComponent(
            "agg", group_positions=[1], aggregates=[count(), total(2)],
            parallelism=parallelism,
            window=WindowSpec.sliding(size, ts_positions={"": 0}),
        ),
    )


class TestReplaySource:
    def test_replays_rows_in_order_on_the_relation_stream(self):
        source = ReplaySource([(1,), (2,), (3,)], stream="R")
        assert source.poll(2) == [("R", (1,)), ("R", (2,))]
        assert not source.exhausted()
        assert source.poll(5) == [("R", (3,))]
        assert source.exhausted()

    def test_rate_limit_is_a_token_bucket_over_the_clock(self):
        clock = FakeClock()
        source = ReplaySource([(i,) for i in range(100)], stream="R",
                              rate=10, clock=clock)
        first = source.poll(50)  # initial burst = one second of tokens
        assert len(first) == 10
        assert source.poll(50) == []  # bucket drained
        clock.advance(0.5)
        assert len(source.poll(50)) == 5  # half a second -> 5 tokens
        clock.advance(100)
        # tokens cap at one second's burst, however long the pause
        assert len(source.poll(50)) == 10

    def test_sub_unit_rate_still_makes_progress(self):
        """Regression: a rate below 1 row/sec must not livelock -- the
        bucket holds at least one whole token."""
        clock = FakeClock()
        source = ReplaySource([(1,), (2,)], stream="R", rate=0.5, clock=clock)
        assert len(source.poll(10)) == 1  # one banked token at start
        assert source.poll(10) == []
        clock.advance(2.0)  # half a row per second -> one row per 2s
        assert len(source.poll(10)) == 1
        assert source.exhausted()

    def test_watermark_tracks_emitted_event_time(self):
        source = ReplaySource([(5, "a"), (9, "b")], stream="R", ts_position=0)
        assert source.watermark() is None  # no promise before emitting
        source.poll(1)
        assert source.watermark() == 5
        source.poll(1)
        assert source.watermark() == 9

    def test_source_without_event_time_never_constrains(self):
        source = ReplaySource([(1,)], stream="R")
        assert source.watermark() == math.inf

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            ReplaySource([], stream="R", rate=0)


class TestCallbackSource:
    def test_generator_mode_drains_lazily(self):
        source = CallbackSource(iter([("S", (1,)), ("S", (2,))]))
        assert source.poll(1) == [("S", (1,))]
        assert not source.exhausted()
        assert source.poll(5) == [("S", (2,))]
        source.poll(1)
        assert source.exhausted()

    def test_push_then_close(self):
        source = CallbackSource()
        source.push((1,), stream="S")
        source.push((2,), stream="S")
        source.close()
        assert source.poll(10) == [("S", (1,)), ("S", (2,))]
        assert source.exhausted()
        with pytest.raises(RuntimeError):
            source.push((3,))

    def test_nonblocking_push_raises_backpressure_when_full(self):
        source = CallbackSource(capacity=2)
        source.push((1,))
        source.push((2,))
        with pytest.raises(Backpressure):
            source.push((3,), block=False)

    def test_blocking_push_waits_for_the_consumer(self):
        source = CallbackSource(capacity=1)
        source.push((1,))
        done = []

        def producer():
            source.push((2,))  # blocks until the consumer polls
            done.append(True)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert source.poll(1) == [("default", (1,))]
        thread.join(timeout=5)
        assert done == [True]
        assert source.poll(1) == [("default", (2,))]

    def test_manual_watermarks(self):
        source = CallbackSource(manual_watermarks=True)
        assert source.watermark() is None
        source.set_watermark(7)
        assert source.watermark() == 7


class TestWatermarkTracker:
    def test_merged_undefined_until_every_input_reports(self):
        tracker = WatermarkTracker()
        tracker.register("a")
        tracker.register("b")
        tracker.update("a", 10)
        assert tracker.merged() is None
        tracker.update("b", 4)
        assert tracker.merged() == 4

    def test_watermarks_never_regress(self):
        tracker = WatermarkTracker()
        tracker.register("a")
        tracker.update("a", 10)
        tracker.update("a", 3)
        assert tracker.merged() == 10

    def test_done_input_stops_constraining(self):
        tracker = WatermarkTracker()
        tracker.register("a")
        tracker.register("b")
        tracker.update("a", 2)
        tracker.mark_done("a")
        tracker.update("b", 9)
        assert tracker.merged() == 9

    def test_infinite_watermark_is_not_end_of_stream(self):
        """Regression: a timestamp-less input promises inf while still
        having data in flight -- all_done must track EOS explicitly, or
        the sink exits early and the pipeline deadlocks."""
        tracker = WatermarkTracker()
        tracker.register("a")
        tracker.register("b")
        tracker.update("a", math.inf)
        tracker.update("b", math.inf)
        assert tracker.merged() == math.inf
        assert not tracker.all_done()
        tracker.mark_done("a")
        assert not tracker.all_done()
        tracker.mark_done("b")
        assert tracker.all_done()


class TestDeltaSink:
    def test_insert_and_retract_maintain_the_multiset(self):
        sink = DeltaSink()
        sink.execute_batch("J", "J", [(1,), (1,), (2,)])
        sink.execute_batch("J", "J:retract", [(1,), (9,)])  # (9,) ignored
        assert sink.snapshot() == [(1,), (2,)]

    def test_subscription_sees_deltas_in_order(self):
        sink = DeltaSink()
        subscription = sink.subscribe()
        sink.execute_batch("J", "J", [(1,)])
        sink.execute_batch("J", "J:retract", [(1,)])
        sink.finish()
        deltas = [(d.sign, d.row) for d in subscription]
        assert deltas == [(1, (1,)), (-1, (1,))]
        assert subscription.closed

    def test_late_subscriber_catches_up_with_current_state(self):
        sink = DeltaSink()
        sink.execute_batch("J", "J", [(1,), (2,), (2,)])
        subscription = sink.subscribe()
        sink.finish()
        replayed = [(d.sign, d.row) for d in subscription]
        assert sorted(r for _s, r in replayed) == [(1,), (2,), (2,)]
        assert all(sign == 1 for sign, _row in replayed)

    def test_catch_up_larger_than_ring_is_not_shed(self):
        """Regression: a bounded 'shed' subscriber attaching to a result
        bigger than its ring must receive the full catch-up snapshot
        (one overshoot at attach), not an instant lockout where every
        re-subscribe sheds again."""
        sink = DeltaSink()
        sink.execute_batch("J", "J", [(i,) for i in range(100)])
        subscription = sink.subscribe(max_buffer=8, on_overflow="shed")
        assert not subscription.overflowed
        drained = [subscription.pop() for _ in range(100)]
        assert all(d is not None and d.sign == 1 for d in drained)
        # once the overshoot is drained the ring is bounded again
        sink.execute_batch("J", "J", [(i,) for i in range(9)])
        assert subscription.overflowed

    def test_subscribe_concurrent_with_pump_converges(self):
        """Regression: the catch-up snapshot is ordered into the ring
        under the sink lock.  If a concurrent publisher could slip a
        delta batch ahead of the catch-up, a -row sequenced before its
        +row would be dropped by changelog semantics and the
        subscriber's converged multiset would keep the retracted row."""
        sink = DeltaSink()
        stop = threading.Event()

        def pump():
            i = 0
            while not stop.is_set():
                sink.execute_batch(
                    "J", "J", [((i + j) % 7,) for j in range(3)])
                sink.execute_batch("J", "J:retract", [((i + 3) % 7,)])
                i += 1
            sink.finish()

        thread = threading.Thread(target=pump)
        thread.start()
        try:
            subscriptions = [sink.subscribe() for _ in range(25)]
        finally:
            stop.set()
            thread.join()
        expected = sink.snapshot()
        for subscription in subscriptions:
            counts = Counter()
            for delta in subscription:
                if delta.sign > 0:
                    counts[delta.row] += 1
                elif counts[delta.row] > 0:
                    counts[delta.row] -= 1
                # a retraction of an absent row is dropped -- the
                # client-side mirror that makes mis-ordering visible
            assert sorted(counts.elements()) == expected


class TestStreamMetrics:
    def test_throughput_over_trailing_window(self):
        clock = FakeClock()
        metrics = StreamMetrics(clock=clock, horizon=10.0)
        metrics.record_events(100)
        clock.advance(2.0)
        metrics.record_events(100)
        assert metrics.events_per_second() == pytest.approx(100.0)

    def test_lag_is_event_time_minus_watermark(self):
        metrics = StreamMetrics(clock=FakeClock())
        assert metrics.event_time_lag() is None
        metrics.record_events(1, event_time=120)
        metrics.record_watermark(100)
        assert metrics.event_time_lag() == 20

    def test_snapshot_fields(self):
        metrics = StreamMetrics(clock=FakeClock())
        snapshot = metrics.snapshot()
        assert {"events", "events_per_sec", "watermark",
                "event_time_lag", "uptime_sec"} <= set(snapshot)


class TestStreamingClusterValidation:
    def test_unknown_executor_rejected(self):
        plan = sliding_agg_plan(make_events(10))
        with pytest.raises(ExecutorError, match="fibers"):
            stream_plan(plan, executor="fibers")

    def test_threads_refuse_adaptive_partitioners(self):
        from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
        from repro.engine.component import JoinComponent
        from repro.partitioning.adaptive import AdaptiveOneBucket

        rows = [(i, i % 5) for i in range(20)]
        R = Relation("R", Schema.of("x", "y"), rows)
        S = Relation("S", Schema.of("y", "z"), rows)
        spec = JoinSpec(
            [RelationInfo("R", R.schema, 20), RelationInfo("S", S.schema, 20)],
            [EquiCondition(("R", "y"), ("S", "y"))],
        )
        plan = PhysicalPlan(
            sources=[SourceComponent("R", R), SourceComponent("S", S)],
            joins=[JoinComponent("J", spec, machines=4,
                                 scheme=AdaptiveOneBucket("R", "S", machines=4))],
        )
        with pytest.raises(ExecutorError) as excinfo:
            stream_plan(plan, executor="threads")
        assert "AdaptiveOneBucket" in str(excinfo.value)
        assert "executor='inline'" in str(excinfo.value)
        # the inline streaming executor still runs it
        query = stream_plan(plan, executor="inline").run()
        assert query.snapshot() == sorted(run_plan(plan).results)

    def test_sources_must_match_spouts(self):
        plan = sliding_agg_plan(make_events(10))
        from repro.engine.runner import build_topology
        from repro.streaming.runner import DeltaAggBolt, _IdleSpout

        topology, _ = build_topology(
            plan, spout_factory=lambda s: (lambda i, p: _IdleSpout()),
            agg_bolt_factory=DeltaAggBolt,
            sink_factory=lambda i, p: DeltaSink(), source_parallelism=1)
        with pytest.raises(ValueError, match="spout components"):
            StreamingCluster(topology, {"wrong": ReplaySource([], stream="w")})

    def test_step_is_inline_only(self):
        plan = sliding_agg_plan(make_events(10))
        query = stream_plan(plan, executor="threads")
        with pytest.raises(ExecutorError, match="inline"):
            query.cluster.step()
        query.run()  # clean up the threads


class TestIncrementalDeltas:
    def test_deltas_arrive_while_the_query_runs(self):
        """The core new-workload property: a rate-limited replay emits
        incremental result deltas long before the sources are drained."""
        plan = sliding_agg_plan(make_events(300))
        query = stream_plan(plan, batch_size=8, rate=100_000)
        iterator = iter(query)
        first = [next(iterator) for _ in range(10)]
        assert len(first) == 10
        assert not query.done  # mid-flight
        list(iterator)  # drain
        assert query.done
        assert query.snapshot() == sorted(
            run_plan(sliding_agg_plan(make_events(300)), batch_size=8).results)

    def test_empty_source_still_completes_with_watermarks(self):
        """Regression: a relation that is empty from the start must count
        as finished, or the merged watermark never becomes defined and
        the run never flushes."""
        from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
        from repro.engine.component import JoinComponent

        A = Relation("A", Schema.of("ts", "k"), [(t, t % 3) for t in range(30)])
        B = Relation("B", Schema.of("ts", "k"), [])
        spec = JoinSpec(
            [RelationInfo("A", A.schema, 30), RelationInfo("B", B.schema, 0)],
            [EquiCondition(("A", "k"), ("B", "k"))],
        )
        plan = PhysicalPlan(
            sources=[SourceComponent("A", A), SourceComponent("B", B)],
            joins=[JoinComponent(
                "J", spec, machines=2,
                window=WindowSpec.tumbling(10, ts_positions={"A": 0, "B": 0}))],
        )
        query = stream_plan(plan, batch_size=8).run()
        assert query.done
        assert query.snapshot() == sorted(run_plan(plan).results)
        # the empty source promised everything, so A's watermark governs
        assert query.stats()["watermark"] is not None

    def test_stats_report_watermark_and_lag(self):
        plan = sliding_agg_plan(make_events(120))
        query = stream_plan(plan, batch_size=16).run()
        stats = query.stats()
        assert stats["events"] == 120
        # the source's final promise covers its last batch, so a finished
        # in-order replay is fully caught up
        assert stats["watermark"] == 119
        assert stats["event_time_lag"] == 0
        assert stats["deltas"] > 0

    def test_timestampless_source_disables_punctuation(self):
        """A join against a timestamp-less relation can emit old event
        times after any global watermark, so mixed plans must not
        punctuate -- window maintenance stays arrival-driven and the
        snapshot matches the batch engine at the same batch size."""
        from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
        from repro.engine.component import JoinComponent

        rng = random.Random(5)
        events = Relation("events", Schema.of("ts", "k"),
                          [(t, rng.randrange(4)) for t in range(80)])
        dims = Relation("dims", Schema.of("k", "name"),
                        [(k, f"k{k}") for k in range(4)])
        spec = JoinSpec(
            [RelationInfo("events", events.schema, 80),
             RelationInfo("dims", dims.schema, 4)],
            [EquiCondition(("events", "k"), ("dims", "k"))],
        )
        plan_template = dict(
            sources=[SourceComponent("events", events),
                     SourceComponent("dims", dims)],
            joins=[JoinComponent("J", spec, machines=2,
                                 output_positions=[3, 0])],  # name, ts
        )

        def make():
            return PhysicalPlan(
                aggregation=AggComponent(
                    "agg", group_positions=[0], aggregates=[count()],
                    window=WindowSpec.tumbling(20, ts_positions={"": 1}),
                ),
                **{k: list(v) if isinstance(v, list) else v
                   for k, v in plan_template.items()},
            )

        expected = sorted(run_plan(make(), batch_size=16).results)
        query = stream_plan(make(), batch_size=16).run()
        assert not query.cluster._event_time  # dims has no event time
        assert query.snapshot() == expected
        assert query.stats()["watermark"] is None

    def test_stream_rejects_parallelism_override(self):
        from repro.core.optimizer import Catalog
        from repro.functional.stream_api import QueryContext

        catalog = Catalog()
        catalog.register(make_events(20))
        ctx = QueryContext(catalog, machines=2)
        with pytest.raises(ValueError, match="parallelism"):
            ctx.stream("events").stream(parallelism=2)

    def test_delta_stream_replays_to_the_snapshot(self):
        """Applying the deltas in order reconstructs the snapshot exactly
        -- the subscription is a faithful changelog."""
        from collections import Counter

        plan = sliding_agg_plan(make_events(150), parallelism=1)
        query = stream_plan(plan, batch_size=16)
        state = Counter()
        for delta in query:
            if delta.sign > 0:
                state[delta.row] += 1
            else:
                state[delta.row] -= 1
        rows = sorted(row for row, n in state.items() for _ in range(n))
        assert rows == query.snapshot()


class TestSqlStreamAcceptance:
    """ISSUE 5 acceptance: a sliding-window SQL aggregation over a
    rate-limited replayed dataset emits incremental deltas while running,
    and its final snapshot is byte-identical to the batch ``run_plan``
    result on the same data."""

    def make_session(self):
        session = SqlSession(options=OptimizerOptions(
            machines=2,
            agg_window=WindowClause("sliding", 60, "events.ts"),
        ))
        session.register(make_events(400, keys=5, seed=11))
        return session

    SQL = ("SELECT events.key, COUNT(*), SUM(events.value) "
           "FROM events GROUP BY events.key")

    @pytest.mark.parametrize("executor", ["inline", "threads"])
    def test_sliding_window_sql_stream_matches_batch(self, executor):
        session = self.make_session()
        batch = session.execute(self.SQL, batch_size=16)
        query = session.stream(self.SQL, batch_size=16, executor=executor,
                               rate=500_000)
        deltas = []
        mid_flight = 0
        for delta in query:
            deltas.append(delta)
            if not query.done:
                mid_flight += 1
        if executor == "inline":
            # the iterator itself drives the inline pump, so deltas are
            # observable strictly before exhaustion (threads may finish
            # in the background before the first observation)
            assert mid_flight > 0
        assert any(d.sign < 0 for d in deltas)  # retractions flowed
        assert query.snapshot() == sorted(batch.results)
        stats = query.stats()
        assert stats["watermark"] is not None
