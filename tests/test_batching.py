"""Unit tests for the micro-batch APIs of the batched dataplane.

Every batch API must agree exactly with its per-tuple counterpart: same
outputs, same counters, same state transitions.  The cluster-level tests
also guard the work-queue refactor (no recursion on deep topologies).
"""

import random
from collections import Counter

import pytest

from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Schema
from repro.core.expressions import col
from repro.engine.operators import Aggregation, Projection, Selection, avg, count, total
from repro.joins.dbtoaster import DBToasterJoin
from repro.joins.traditional import TraditionalJoin
from repro.storm import (
    AllGrouping,
    Bolt,
    CustomGrouping,
    FieldsGrouping,
    GlobalGrouping,
    KeyMappedGrouping,
    ListSpout,
    LocalCluster,
    ShuffleGrouping,
    TopologyBuilder,
)
from repro.storm.groupings import HypercubeGrouping
from repro.util import round_robin_assignment
from tests.conftest import interleaved_stream, make_rst_data


def rst_spec():
    return JoinSpec(
        [
            RelationInfo("R", Schema.of("x", "y"), 1000),
            RelationInfo("S", Schema.of("y", "z"), 1000),
            RelationInfo("T", Schema.of("z", "t"), 1000),
        ],
        [
            EquiCondition(("R", "y"), ("S", "y")),
            EquiCondition(("S", "z"), ("T", "z")),
        ],
    )


# ---------------------------------------------------------------------------
# groupings
# ---------------------------------------------------------------------------


def _flatten(task_batches):
    """(task, rows) list -> per-tuple (task, row) pairs for comparison."""
    return [(task, row) for task, rows in task_batches for row in rows]


class TestTargetsBatch:
    ROWS = [(i, i % 3, f"k{i % 5}") for i in range(23)]

    def check_matches_per_tuple(self, make_grouping, n_tasks=4):
        batch_grouping = make_grouping()
        tuple_grouping = make_grouping()
        got = _flatten(batch_grouping.targets_batch("s", self.ROWS, n_tasks))
        expected = [
            (task, row)
            for row in self.ROWS
            for task in tuple_grouping.targets("s", row, n_tasks)
        ]
        assert Counter(got) == Counter(expected)
        # row order within each task bucket must follow the batch order
        per_task = {}
        for task, row in got:
            per_task.setdefault(task, []).append(row)
        for task, rows in per_task.items():
            reference = [row for t, row in expected if t == task]
            assert rows == reference

    def test_shuffle(self):
        self.check_matches_per_tuple(ShuffleGrouping)

    def test_shuffle_continues_round_robin_across_batches(self):
        grouping = ShuffleGrouping()
        first = _flatten(grouping.targets_batch("s", self.ROWS[:5], 4))
        second = _flatten(grouping.targets_batch("s", self.ROWS[5:10], 4))
        task_of = {row: task for task, row in first + second}
        assert [task_of[self.ROWS[i]] for i in range(10)] == [
            i % 4 for i in range(10)
        ]

    def test_fields(self):
        self.check_matches_per_tuple(lambda: FieldsGrouping([1, 2]))

    def test_all(self):
        self.check_matches_per_tuple(AllGrouping)

    def test_all_broadcasts_whole_batch(self):
        batches = AllGrouping().targets_batch("s", self.ROWS, 3)
        assert [task for task, _rows in batches] == [0, 1, 2]
        assert all(rows == list(self.ROWS) for _task, rows in batches)

    def test_global(self):
        self.check_matches_per_tuple(GlobalGrouping)

    def test_custom_uses_per_tuple_fallback(self):
        def make():
            return CustomGrouping(lambda stream, values, n: [values[0] % n])

        self.check_matches_per_tuple(make)

    def test_key_mapped_including_unseen_keys(self):
        mapping = round_robin_assignment(["k0", "k1", "k2"], 4)  # k3, k4 unseen
        self.check_matches_per_tuple(lambda: KeyMappedGrouping(2, mapping))

    def test_hypercube(self):
        from repro.partitioning.hash_hypercube import HashHypercube

        spec = rst_spec()
        partitioner = HashHypercube.build(spec, 8, seed=3)
        grouping = HypercubeGrouping(partitioner, "S")
        rows = [row for _rel, row in interleaved_stream(make_rst_data(seed=2))][:20]
        got = _flatten(grouping.targets_batch("S", rows, 8))
        expected = [(t, row) for row in rows
                    for t in grouping.targets("S", row, 8)]
        assert Counter(got) == Counter(expected)
        per_task = {}
        for task, row in got:
            per_task.setdefault(task, []).append(row)
        for task, task_rows in per_task.items():
            assert task_rows == [row for t, row in expected if t == task]

    def test_hypercube_validates_parallelism(self):
        from repro.partitioning.hash_hypercube import HashHypercube

        partitioner = HashHypercube.build(rst_spec(), 8, seed=3)
        with pytest.raises(ValueError, match="does not match"):
            HypercubeGrouping(partitioner, "S").targets_batch("S", [(1, 2)], 5)

    def test_single_row_batch_preserves_target_order(self):
        # AllGrouping targets [0, 1, 2]; the batch API must keep that order
        batches = AllGrouping().targets_batch("s", [(1,)], 3)
        assert batches == [(0, [(1,)]), (1, [(1,)]), (2, [(1,)])]


# ---------------------------------------------------------------------------
# spouts and bolts
# ---------------------------------------------------------------------------


class TestSpoutBatch:
    def test_list_spout_next_batch_matches_next_tuple(self):
        rows = [(i,) for i in range(11)]
        batched = ListSpout(rows, "s")
        batched.open(1, 2)
        pulled = []
        while True:
            chunk = batched.next_batch(3)
            pulled.extend(chunk)
            if len(chunk) < 3:
                break
        reference = ListSpout(rows, "s")
        reference.open(1, 2)
        expected = []
        while True:
            emission = reference.next_tuple()
            if emission is None:
                break
            expected.append(emission)
        assert pulled == expected

    def test_base_spout_batch_falls_back_to_next_tuple(self):
        from repro.storm.topology import Spout

        spout = ListSpout([(1,), (2,)], "s")
        assert Spout.next_batch(spout, 5) == [("s", (1,)), ("s", (2,))]
        assert Spout.next_batch(spout, 5) == []

    def test_bolt_execute_batch_default_loops_execute(self):
        class Doubler(Bolt):
            def execute(self, source, stream, values):
                return [("out", values), ("out", values)]

        emissions = Doubler().execute_batch("src", "s", [(1,), (2,)])
        assert emissions == [("out", (1,)), ("out", (1,)),
                             ("out", (2,)), ("out", (2,))]


# ---------------------------------------------------------------------------
# operators
# ---------------------------------------------------------------------------


class TestOperatorBatch:
    def test_selection_batch_matches_per_row(self):
        schema = Schema.of("x", "y")
        rows = [(i, i % 4) for i in range(20)]
        batched = Selection(col("x").lt(12), schema)
        looped = Selection(col("x").lt(12), schema)
        kept = batched.apply_batch(rows)
        expected = [row for row in rows if looped.apply(row) is not None]
        assert kept == expected
        assert (batched.seen, batched.passed) == (looped.seen, looped.passed)
        assert batched.selectivity == looped.selectivity

    def test_projection_batch_matches_per_row(self):
        schema = Schema.of("x", "y")
        rows = [(i, 2 * i) for i in range(9)]
        projection = Projection([col("y"), col("x")], schema)
        assert projection.apply_batch(rows) == [projection.apply(r) for r in rows]
        single = Projection([col("y")], schema)
        assert single.apply_batch(rows) == [single.apply(r) for r in rows]

    def test_aggregation_batch_matches_per_row(self):
        rng = random.Random(5)
        rows = [(rng.randrange(3), rng.randrange(10), rng.random())
                for _ in range(50)]
        batched = Aggregation([0], [count(), total(1), avg(2)])
        looped = Aggregation([0], [count(), total(1), avg(2)])
        outputs = batched.consume_batch(rows)
        expected = [looped.consume(row) for row in rows]
        assert outputs == expected
        assert batched.snapshot() == looped.snapshot()
        assert batched.consumed == looped.consumed == len(rows)

    def test_aggregation_batch_without_collect_only_updates_state(self):
        rows = [(1, 5), (2, 7), (1, 1)]
        silent = Aggregation([0], [total(1)])
        assert silent.consume_batch(rows, collect=False) is None
        loud = Aggregation([0], [total(1)])
        loud.consume_batch(rows)
        assert silent.snapshot() == loud.snapshot() == [(1, 6), (2, 7)]

    def test_aggregation_batch_retraction_deletes_empty_groups(self):
        agg = Aggregation([0], [count(), total(1)])
        agg.consume_batch([(1, 5), (1, 3)])
        outputs = agg.consume_batch([(1, 5), (1, 3)], sign=-1)
        assert outputs == [(1, 1, 3), (1, 0, 0)]
        assert agg.group_count == 0


# ---------------------------------------------------------------------------
# local joins
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("factory", [DBToasterJoin, TraditionalJoin])
class TestLocalJoinBatch:
    def test_insert_batch_matches_per_tuple(self, factory):
        spec = rst_spec()
        data = make_rst_data(seed=9, n=30)
        stream = interleaved_stream(data, seed=9)
        batched = factory(spec)
        looped = factory(spec)
        # feed the stream in per-relation runs of varying size
        position = 0
        batch_output = []
        while position < len(stream):
            rel_name = stream[position][0]
            run = []
            end = position
            while end < len(stream) and end - position < 7 \
                    and stream[end][0] == rel_name:
                run.append(stream[end][1])
                end += 1
            batch_output.extend(batched.insert_batch(rel_name, run))
            position = end
        loop_output = []
        for rel_name, row in stream:
            loop_output.extend(looped.insert(rel_name, row))
        assert batch_output == loop_output
        assert batched.state_size() == looped.state_size()

    def test_delete_batch_retracts_exactly_what_insert_produced(self, factory):
        spec = rst_spec()
        data = make_rst_data(seed=11, n=20)
        join = factory(spec)
        for rel_name, row in interleaved_stream(data, seed=11):
            join.insert(rel_name, row)
        produced = join.insert_batch("R", data["R"][:5])
        retracted = join.delete_batch("R", data["R"][:5])
        assert Counter(retracted) == Counter(produced)

    def test_delete_batch_ignores_unknown_rows(self, factory):
        spec = rst_spec()
        join = factory(spec)
        join.insert("R", (1, 2))
        if factory is TraditionalJoin:
            assert join.delete_batch("R", [(9, 9)]) == []
        else:
            # DBToaster treats deletes as negative deltas; deleting a row
            # that was never inserted is an inconsistency it rejects
            with pytest.raises(ValueError):
                join.delete_batch("R", [(9, 9)])


# ---------------------------------------------------------------------------
# cluster-level batching and the work-queue refactor
# ---------------------------------------------------------------------------


class CollectBolt(Bolt):
    def __init__(self, store):
        self.store = store

    def execute(self, source, stream, values):
        self.store.append(values)
        return []


class TestClusterBatching:
    def build_pipeline(self, store):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda i, p: ListSpout(
            [(i,) for i in range(40)], "src"), parallelism=2)
        builder.set_bolt("sink", lambda i, p: CollectBolt(store),
                         parallelism=2).shuffle_grouping("src")
        return builder.build()

    @pytest.mark.parametrize("batch_size", [1, 3, 16, 100])
    def test_everything_delivered_at_any_batch_size(self, batch_size):
        store = []
        metrics = LocalCluster(self.build_pipeline(store)).run(
            batch_size=batch_size)
        assert sorted(store) == [(i,) for i in range(40)]
        assert metrics.component_input("sink") == 40
        assert metrics.component_output("src") == 40

    @pytest.mark.parametrize("batch_size", [1, 4, 64])
    def test_max_tuples_respected_with_batches(self, batch_size):
        store = []
        LocalCluster(self.build_pipeline(store)).run(
            max_tuples=10, batch_size=batch_size)
        assert len(store) == 10

    def test_batch_size_validated(self):
        store = []
        with pytest.raises(ValueError, match="batch_size"):
            LocalCluster(self.build_pipeline(store)).run(batch_size=0)

    def test_finish_flush_works_in_batch_mode(self):
        from collections import Counter as CCounter

        class CountBolt(Bolt):
            def __init__(self):
                self.counts = CCounter()

            def execute(self, source, stream, values):
                self.counts[values[0]] += 1
                return []

            def finish(self):
                return [("counts", (key, n))
                        for key, n in sorted(self.counts.items())]

        store = []
        builder = TopologyBuilder()
        builder.set_spout("src", lambda i, p: ListSpout(
            [("x",), ("x",), ("y",)] * 4, "src"))
        builder.set_bolt("count", lambda i, p: CountBolt()).shuffle_grouping("src")
        builder.set_bolt("sink", lambda i, p: CollectBolt(store)) \
            .shuffle_grouping("count")
        LocalCluster(builder.build()).run(batch_size=5)
        assert sorted(store) == [("x", 8), ("y", 4)]

    def test_deep_topology_runs_without_recursion_error(self):
        """A linear chain of >= 100 bolts must not recurse per tuple.

        The seed engine dispatched tuples through recursive calls, one
        stack frame per topology level; the work-queue engine is flat.
        This chain is deep enough that recursive dispatch would blow
        CPython's default 1000-frame stack.
        """
        depth = 1100
        store = []

        class Forward(Bolt):
            def execute(self, source, stream, values):
                return [("fwd", values)]

        builder = TopologyBuilder()
        builder.set_spout("src", lambda i, p: ListSpout([(1,), (2,)], "src"))
        previous = "src"
        for level in range(depth):
            builder.set_bolt(f"b{level}", lambda i, p: Forward()) \
                .shuffle_grouping(previous)
            previous = f"b{level}"
        builder.set_bolt("sink", lambda i, p: CollectBolt(store)) \
            .shuffle_grouping(previous)
        metrics = LocalCluster(builder.build()).run()
        assert sorted(store) == [(1,), (2,)]
        assert metrics.component_input("sink") == 2
        assert metrics.component_input(f"b{depth - 1}") == 2
