"""Columnar path equivalence: same answers as the row engine, everywhere.

The columnar kernels are an execution detail, not a semantics change:
for every golden plan, ``columnar=True`` must produce the identical
result multiset as ``columnar=False`` at the same batch size, on every
backend (the processes run also exercises ColumnBatch over the pickle
pipes).  The default knob (`columnar=None`) resolves from the batch
size -- ``batch_size=1`` always stays on the golden-pinned row path --
and the opt-in streaming columnar mode must converge to the same
snapshot as the batch engine.
"""

from collections import Counter

import pytest

from repro.engine import run_plan
from repro.streaming import stream_plan

from tests.batching_plans import GOLDEN_PLANS, run_result_fingerprint

BATCH = 64

PLAN_NAMES = sorted(GOLDEN_PLANS)


def _run(name, **kwargs):
    return run_plan(GOLDEN_PLANS[name](), **kwargs)


def _multiset(result):
    return Counter(result.results)


@pytest.mark.parametrize("name", PLAN_NAMES)
@pytest.mark.parametrize("executor", ["inline", "threads"])
def test_columnar_matches_row(name, executor):
    row = _run(name, batch_size=BATCH, executor=executor, columnar=False)
    col = _run(name, batch_size=BATCH, executor=executor, columnar=True)
    assert _multiset(col) == _multiset(row)
    assert _multiset(row)  # not vacuous
    assert row.metrics.columnar_rows == 0
    assert col.metrics.columnar_rows > 0
    # same data crossed every edge, whatever representation carried it
    assert col.metrics.edge_transfers == row.metrics.edge_transfers
    assert dict(col.reads) == dict(row.reads)


@pytest.mark.parametrize("name", ["join_only", "snapshot_agg"])
def test_columnar_matches_row_processes(name):
    """ColumnBatches survive the worker pickle pipes intact."""
    row = _run(name, batch_size=BATCH, executor="processes", parallelism=2,
               columnar=False)
    col = _run(name, batch_size=BATCH, executor="processes", parallelism=2,
               columnar=True)
    assert _multiset(col) == _multiset(row)
    assert _multiset(row)
    assert col.metrics.columnar_rows > 0


class TestKnobResolution:
    """`columnar=None` (the default) engages only at batch_size >= 64."""

    def test_batch_one_default_stays_row_path(self):
        default = _run("snapshot_agg", batch_size=1)
        assert default.metrics.columnar_rows == 0
        # ... and is byte-identical to the explicit row path (the golden
        # captures under tests/golden/ pin this very execution)
        explicit = _run("snapshot_agg", batch_size=1, columnar=False)
        assert run_result_fingerprint(default) == \
            run_result_fingerprint(explicit)

    def test_below_threshold_default_stays_row_path(self):
        result = _run("join_only", batch_size=32)
        assert result.metrics.columnar_rows == 0

    def test_at_threshold_default_engages(self):
        result = _run("join_only", batch_size=64)
        assert result.metrics.columnar_rows > 0

    def test_explicit_opt_in_overrides_small_batch(self):
        result = _run("join_only", batch_size=8, columnar=True)
        assert result.metrics.columnar_rows > 0

    def test_explicit_opt_out_overrides_large_batch(self):
        result = _run("join_only", batch_size=128, columnar=False)
        assert result.metrics.columnar_rows == 0


@pytest.mark.parametrize("executor", ["inline", "threads"])
@pytest.mark.parametrize("name", ["two_joins", "snapshot_agg"])
def test_streaming_columnar_snapshot_matches_batch(name, executor):
    """Opt-in columnar replay converges to the batch engine's answer."""
    plan = GOLDEN_PLANS[name]()
    query = stream_plan(plan, batch_size=BATCH, executor=executor,
                        columnar=True).run()
    expected = sorted(run_plan(GOLDEN_PLANS[name]()).results)
    assert query.snapshot() == expected
    assert expected  # not vacuous
