"""Tests for the hypercube dimension optimiser (paper section 4)."""

import pytest

from repro.partitioning.hypercube import (
    HASH,
    RANDOM,
    DimensionSpec,
    HypercubeConfig,
    OptRelation,
    _enumerate_sizes,
    optimize_dimensions,
)


def hash_dim(name, *members):
    return DimensionSpec(name, HASH, frozenset(members))


def random_dim(name, member):
    return DimensionSpec(name, RANDOM, frozenset({member}))


class TestDimensionSpec:
    def test_random_dim_requires_single_owner(self):
        with pytest.raises(ValueError, match="exactly one relation"):
            DimensionSpec("z", RANDOM, frozenset({("S", "z"), ("T", "z")}))

    def test_kind_validated(self):
        with pytest.raises(ValueError):
            DimensionSpec("y", "range", frozenset({("R", "y")}))

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            DimensionSpec("y", HASH, frozenset())

    def test_attribute_of_is_deterministic(self):
        dim = hash_dim("k", ("R", "b"), ("R", "a"), ("S", "k"))
        assert dim.attribute_of("R") == "a"  # sorted order
        assert dim.attribute_of("S") == "k"
        assert dim.attribute_of("T") is None

    def test_owner_relations(self):
        dim = hash_dim("y", ("R", "y"), ("S", "y"))
        assert dim.owner_relations() == frozenset({"R", "S"})


class TestEnumeration:
    def test_all_products_bounded(self):
        for sizes in _enumerate_sizes(3, 12):
            product = sizes[0] * sizes[1] * sizes[2]
            assert product <= 12

    def test_counts_for_two_dims(self):
        # number of (a, b) with a*b <= 6: sum over a of floor(6/a) = 6+3+2+1+1+1
        assert len(list(_enumerate_sizes(2, 6))) == 14

    def test_single_dim(self):
        assert list(_enumerate_sizes(1, 3)) == [(1,), (2,), (3,)]


class TestOptimizeDimensions:
    def test_uniform_chain_picks_square(self):
        """Paper 3.1: R><S><T, 64 machines, equal sizes -> 8x8, load 0.26H."""
        dims = [
            hash_dim("y", ("R", "y"), ("S", "y")),
            hash_dim("z", ("S", "z"), ("T", "z")),
        ]
        relations = [
            OptRelation("R", 1000, (0,), {}),
            OptRelation("S", 1000, (0, 1), {}),
            OptRelation("T", 1000, (1,), {}),
        ]
        config = optimize_dimensions(dims, relations, 64)
        assert config.sizes == (8, 8)
        assert config.max_load == pytest.approx(0.265625 * 1000)

    def test_non_square_budget_uses_integers(self):
        """7 machines, 3 symmetric dims: integer search must not fall back
        to 1x1x1 sequential execution (the Chu et al. motivation)."""
        dims = [
            random_dim("~A", ("A", "*")),
            random_dim("~B", ("B", "*")),
            random_dim("~C", ("C", "*")),
        ]
        relations = [
            OptRelation("A", 100, (0,), {}),
            OptRelation("B", 100, (1,), {}),
            OptRelation("C", 100, (2,), {}),
        ]
        config = optimize_dimensions(dims, relations, 7)
        assert config.machines_used > 1

    def test_proportional_sizes_for_random_dims(self):
        """Zhang et al.: optimal random hypercube has |Ri|/pi equal."""
        dims = [random_dim("~A", ("A", "*")), random_dim("~B", ("B", "*"))]
        relations = [
            OptRelation("A", 400, (0,), {}),
            OptRelation("B", 100, (1,), {}),
        ]
        config = optimize_dimensions(dims, relations, 64)
        assert config.sizes == (16, 4)

    def test_small_relation_broadcast(self):
        """A tiny relation gets dimension size 1 (broadcast)."""
        dims = [
            hash_dim("y", ("R", "y"), ("S", "y")),
            hash_dim("z", ("S", "z"), ("T", "z")),
        ]
        relations = [
            OptRelation("R", 1000, (0,), {}),
            OptRelation("S", 1000, (0, 1), {}),
            OptRelation("T", 1, (1,), {}),
        ]
        config = optimize_dimensions(dims, relations, 16)
        assert config.size_of("z") == 1
        assert config.size_of("y") == 16

    def test_relation_without_dims_is_replicated_everywhere(self):
        dims = [hash_dim("y", ("R", "y"), ("S", "y"))]
        relations = [
            OptRelation("R", 100, (0,), {}),
            OptRelation("S", 100, (0,), {}),
            OptRelation("U", 10, (), {}),
        ]
        config = optimize_dimensions(dims, relations, 8)
        # U contributes its full size to every machine
        assert config.max_load >= 10 + 200 / 8

    def test_no_dims_degenerates_to_sequential(self):
        config = optimize_dimensions([], [OptRelation("R", 50, (), {})], 8)
        assert config.machines_used == 1
        assert config.max_load == 50

    def test_skew_adjustment_raises_hash_load(self):
        dims = [hash_dim("k", ("R", "k"), ("S", "k"))]
        base = [
            OptRelation("R", 1000, (0,), {}),
            OptRelation("S", 1000, (0,), {}),
        ]
        skewed = [
            OptRelation("R", 1000, (0,), {0: 0.5}),
            OptRelation("S", 1000, (0,), {}),
        ]
        uniform = optimize_dimensions(dims, base, 8)
        adjusted = optimize_dimensions(dims, skewed, 8)
        assert adjusted.max_load > uniform.max_load
        # (L - Lmf)/p + Lmf with p=8: 500/8 + 500 = 562.5, plus S's 125
        assert adjusted.max_load == pytest.approx(562.5 + 125)

    def test_skew_aware_flag_disables_adjustment(self):
        dims = [hash_dim("k", ("R", "k"), ("S", "k"))]
        skewed = [OptRelation("R", 1000, (0,), {0: 0.9})]
        config = optimize_dimensions(dims, skewed, 8, skew_aware=False)
        assert config.max_load == pytest.approx(125)

    def test_rejects_nonpositive_machines(self):
        with pytest.raises(ValueError):
            optimize_dimensions([], [], 0)


class TestOptRelationLoad:
    def test_uniform_load(self):
        rel = OptRelation("R", 120, (0, 1), {})
        assert rel.load((3, 4)) == 10

    def test_communication(self):
        rel = OptRelation("R", 10, (0,), {})
        # replicated over dims 1 and 2 of sizes 4, 5
        assert rel.communication((3, 4, 5)) == 10 * 20

    def test_skew_adjusted_load_never_below_uniform(self):
        rel = OptRelation("R", 100, (0,), {0: 0.3})
        assert rel.load((10,)) >= 100 / 10


class TestHypercubeConfig:
    def test_machines_used_and_avg_load(self):
        dims = (hash_dim("y", ("R", "y")),)
        config = HypercubeConfig(dims, (4,), 8, max_load=25.0,
                                 total_communication=100.0)
        assert config.machines_used == 4
        assert config.avg_load == 25.0
        assert config.skew_degree == 1.0

    def test_size_of_unknown_raises(self):
        config = HypercubeConfig((), (), 1, 0.0, 0.0)
        with pytest.raises(KeyError):
            config.size_of("y")

    def test_describe_mentions_dimensions(self):
        dims = (hash_dim("y", ("R", "y")),)
        config = HypercubeConfig(dims, (4,), 8, 25.0, 100.0)
        assert "y[hash]=4" in config.describe()
