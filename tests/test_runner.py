"""End-to-end tests for the plan runner (physical plan -> topology -> results)."""

import random
from collections import Counter, defaultdict

import pytest

from repro.core.expressions import col
from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Relation, Schema
from repro.engine import (
    AggComponent,
    JoinComponent,
    PhysicalPlan,
    SourceComponent,
    WindowSpec,
    count,
    run_plan,
    total,
)
from repro.joins import reference_join


def make_setup(seed=0, n=40):
    rng = random.Random(seed)
    R = Relation("R", Schema.of("x", "y"),
                 [(rng.randrange(20), rng.randrange(6)) for _ in range(n)])
    S = Relation("S", Schema.of("y", "z"),
                 [(rng.randrange(6), rng.randrange(5)) for _ in range(n)])
    T = Relation("T", Schema.of("z", "t"),
                 [(rng.randrange(5), rng.randrange(9)) for _ in range(n)])
    spec = JoinSpec(
        [RelationInfo("R", R.schema, n), RelationInfo("S", S.schema, n),
         RelationInfo("T", T.schema, n)],
        [EquiCondition(("R", "y"), ("S", "y")),
         EquiCondition(("S", "z"), ("T", "z"))],
    )
    return R, S, T, spec


class TestJoinPlans:
    def test_join_without_aggregation_returns_flat_rows(self):
        R, S, T, spec = make_setup(seed=60)
        plan = PhysicalPlan(
            sources=[SourceComponent("R", R), SourceComponent("S", S),
                     SourceComponent("T", T)],
            joins=[JoinComponent("J", spec, machines=6)],
        )
        result = run_plan(plan)
        expected = reference_join(spec, {"R": R.rows, "S": S.rows, "T": T.rows})
        assert Counter(result.results) == Counter(expected)

    def test_selection_pushed_into_source(self):
        R, S, T, spec = make_setup(seed=61)
        plan = PhysicalPlan(
            sources=[SourceComponent("R", R, predicate=col("x").lt(10)),
                     SourceComponent("S", S), SourceComponent("T", T)],
            joins=[JoinComponent("J", spec, machines=6)],
        )
        result = run_plan(plan)
        filtered = {"R": [r for r in R.rows if r[0] < 10], "S": S.rows, "T": T.rows}
        assert Counter(result.results) == Counter(reference_join(spec, filtered))
        cost_class, seen, passed = result.selections["R"]
        assert seen == len(R.rows)
        assert passed == len(filtered["R"])

    def test_aggregation_with_output_scheme(self):
        R, S, T, spec = make_setup(seed=62)
        plan = PhysicalPlan(
            sources=[SourceComponent("R", R), SourceComponent("S", S),
                     SourceComponent("T", T)],
            joins=[JoinComponent("J", spec, machines=6,
                                 output_positions=[1, 5])],  # R.y, T.t
            aggregation=AggComponent("agg", group_positions=[0],
                                     aggregates=[count(), total(1)],
                                     parallelism=2),
        )
        result = run_plan(plan)
        expected = defaultdict(lambda: [0, 0])
        for row in reference_join(spec, {"R": R.rows, "S": S.rows, "T": T.rows}):
            expected[row[1]][0] += 1
            expected[row[1]][1] += row[5]
        assert sorted(result.results) == sorted(
            (k, c, s) for k, (c, s) in expected.items()
        )

    def test_pipeline_of_two_way_joins(self):
        """R >< S via hash, then (RS) >< T: the paper's baseline shape."""
        R, S, T, spec = make_setup(seed=63)
        spec_rs = JoinSpec(
            [RelationInfo("R", R.schema, len(R)), RelationInfo("S", S.schema, len(S))],
            [EquiCondition(("R", "y"), ("S", "y"))],
        )
        from repro.joins.base import JoinSchema
        rs_schema = JoinSchema.from_spec(spec_rs).output_schema()
        spec_rst = JoinSpec(
            [RelationInfo("J1", rs_schema, 100), RelationInfo("T", T.schema, len(T))],
            [EquiCondition(("J1", "S.z"), ("T", "z"))],
        )
        plan = PhysicalPlan(
            sources=[SourceComponent("R", R), SourceComponent("S", S),
                     SourceComponent("T", T)],
            joins=[JoinComponent("J1", spec_rs, machines=4, scheme="hash"),
                   JoinComponent("J2", spec_rst, machines=4, scheme="hash")],
        )
        result = run_plan(plan)
        expected = reference_join(spec, {"R": R.rows, "S": S.rows, "T": T.rows})
        # J2 output order: J1 columns then T columns == R, S, T order
        assert Counter(result.results) == Counter(expected)

    def test_online_aggregation_emits_running_updates(self):
        R, S, T, spec = make_setup(seed=64, n=15)
        plan = PhysicalPlan(
            sources=[SourceComponent("R", R), SourceComponent("S", S),
                     SourceComponent("T", T)],
            joins=[JoinComponent("J", spec, machines=4, output_positions=[1])],
            aggregation=AggComponent("agg", group_positions=[0],
                                     aggregates=[count()], parallelism=1,
                                     online=True),
        )
        result = run_plan(plan)
        expected = Counter(
            row[1] for row in reference_join(spec, {"R": R.rows, "S": S.rows,
                                                    "T": T.rows})
        )
        # online mode emits an update per input; the final value per key must
        # match the reference
        finals = {}
        for key, value in result.results:
            finals[key] = value
        assert finals == dict(expected)

    def test_validation_rejects_unknown_upstream(self):
        R, S, T, spec = make_setup(seed=65)
        plan = PhysicalPlan(
            sources=[SourceComponent("R", R), SourceComponent("S", S)],
            joins=[JoinComponent("J", spec, machines=2)],  # references T
        )
        with pytest.raises(ValueError, match="not an upstream"):
            run_plan(plan)

    def test_metrics_surface(self):
        R, S, T, spec = make_setup(seed=66)
        plan = PhysicalPlan(
            sources=[SourceComponent("R", R, parallelism=2),
                     SourceComponent("S", S), SourceComponent("T", T)],
            joins=[JoinComponent("J", spec, machines=8)],
        )
        result = run_plan(plan)
        assert result.query_input == 120
        assert result.replication_factor("J") >= 1.0
        assert result.skew_degree("J") >= 1.0
        assert result.intermediate_network_factor() > 0
        assert "hypercube" in result.partitioner_info["J"]
        assert len(result.join_work["J"]) == 8

    def test_windowed_join_plan(self):
        rng = random.Random(67)
        A = Relation("A", Schema.of("ts", "k"),
                     [(ts, rng.randrange(3)) for ts in range(30)])
        B = Relation("B", Schema.of("ts", "k"),
                     [(ts, rng.randrange(3)) for ts in range(30)])
        spec = JoinSpec(
            [RelationInfo("A", A.schema, 30), RelationInfo("B", B.schema, 30)],
            [EquiCondition(("A", "k"), ("B", "k"))],
        )
        window = WindowSpec.tumbling(10, ts_positions={"A": 0, "B": 0})
        plan = PhysicalPlan(
            sources=[SourceComponent("A", A), SourceComponent("B", B)],
            joins=[JoinComponent("J", spec, machines=1, window=window)],
        )
        result = run_plan(plan)
        # every output pair must share a window
        for row in result.results:
            assert row[0] // 10 == row[2] // 10

    def test_single_source_aggregation_plan(self):
        rng = random.Random(68)
        R = Relation("R", Schema.of("k:str", "v"),
                     [(rng.choice("abc"), rng.randrange(10)) for _ in range(50)])
        plan = PhysicalPlan(
            sources=[SourceComponent("R", R)],
            aggregation=AggComponent("agg", group_positions=[0],
                                     aggregates=[total(1)], parallelism=2),
        )
        result = run_plan(plan)
        expected = defaultdict(int)
        for k, v in R.rows:
            expected[k] += v
        assert sorted(result.results) == sorted(expected.items())
