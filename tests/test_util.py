"""Tests for repro.util: stable hashing and small helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    ceil_div,
    hash_to_bucket,
    make_rng,
    round_robin_assignment,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("squall") == stable_hash("squall")

    def test_known_string_value_is_stable_across_runs(self):
        # crc32-based: pinned so a behaviour change is caught
        import zlib
        assert stable_hash("abc") == zlib.crc32(b"abc")

    def test_int_and_equal_float_hash_independently(self):
        # ints and floats are hashed by different code paths on purpose
        assert isinstance(stable_hash(42), int)
        assert isinstance(stable_hash(42.0), int)

    def test_large_int_folds_upper_bits(self):
        assert stable_hash(2**40 + 7) != stable_hash(7)

    def test_negative_int_supported(self):
        assert 0 <= stable_hash(-12345) <= 0xFFFFFFFF

    def test_tuple_hash_differs_by_order(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_none_supported(self):
        assert stable_hash(None) == stable_hash(None)

    def test_bytes_supported(self):
        assert stable_hash(b"xyz") == stable_hash(b"xyz")

    def test_bool_distinct_from_large_int(self):
        assert stable_hash(True) != stable_hash(12345678)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash({"a": 1})

    @given(st.one_of(st.integers(), st.text(), st.floats(allow_nan=False)))
    def test_always_32_bit(self, value):
        assert 0 <= stable_hash(value) <= 0xFFFFFFFF

    @given(st.text(), st.integers(min_value=1, max_value=64))
    def test_bucket_in_range(self, value, buckets):
        assert 0 <= hash_to_bucket(value, buckets) < buckets

    def test_bucket_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            hash_to_bucket("x", 0)


class TestRoundRobinAssignment:
    def test_even_domain_is_perfectly_balanced(self):
        assignment = round_robin_assignment(range(8), 4)
        per_machine = [0] * 4
        for machine in assignment.values():
            per_machine[machine] += 1
        assert per_machine == [2, 2, 2, 2]

    def test_uneven_domain_differs_by_at_most_one(self):
        # 15 keys over 8 machines: the paper's d=15, p=8 example --
        # optimal assigns at most ceil(15/8)=2 keys per machine
        assignment = round_robin_assignment(range(15), 8)
        per_machine = [0] * 8
        for machine in assignment.values():
            per_machine[machine] += 1
        assert max(per_machine) - min(per_machine) <= 1
        assert max(per_machine) == 2

    def test_equal_keys_and_machines_is_one_each(self):
        assignment = round_robin_assignment(range(5), 5)
        assert sorted(assignment.values()) == [0, 1, 2, 3, 4]

    def test_deterministic(self):
        keys = ["URGENT", "HIGH", "MEDIUM", "LOW"]
        assert round_robin_assignment(keys, 3) == round_robin_assignment(keys, 3)

    def test_rejects_nonpositive_machines(self):
        with pytest.raises(ValueError):
            round_robin_assignment(["a"], 0)


class TestSmallHelpers:
    def test_ceil_div(self):
        assert ceil_div(15, 8) == 2
        assert ceil_div(16, 8) == 2
        assert ceil_div(17, 8) == 3
        assert ceil_div(0, 5) == 0

    def test_make_rng_reproducible(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_make_rng_independent_instances(self):
        rng = make_rng(7)
        rng.random()
        assert make_rng(7).random() != rng.random()
