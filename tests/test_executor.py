"""Unit tests for the execution backends (storm/executor.py).

Covers the scheduling machinery (topological levels, task ownership),
the error surface (unknown backends, unsupported knob combinations,
worker failures), pickle-safety of operators shipped across process
boundaries, and the per-task micro-batch metrics that give the parallel
backends' load-balance tests their signal.
"""

import pickle

import pytest

from repro.core.expressions import col
from repro.core.schema import Schema
from repro.engine.operators import Projection, Selection
from repro.engine.runner import SinkBolt
from repro.storm import (
    Bolt,
    ExecutorError,
    ListSpout,
    LocalCluster,
    TopologyBuilder,
)
from repro.storm.executor import (
    EXECUTOR_NAMES,
    Router,
    ThreadExecutor,
    assign_tasks,
    create_executor,
    default_parallelism,
    topological_levels,
)

PARALLEL = [name for name in EXECUTOR_NAMES if name != "inline"]


class DoublerBolt(Bolt):
    def execute(self, source, stream, values):
        return [("default", tuple(v * 2 for v in values))]


class FailingBolt(Bolt):
    def execute(self, source, stream, values):
        raise RuntimeError("boom in worker")


def diamond_topology(rows=None, bolt_factory=None):
    """spout -> (left, right) -> join-ish sink bolt collecting rows."""
    rows = rows if rows is not None else [(i,) for i in range(20)]
    bolt_factory = bolt_factory or (lambda i, p: DoublerBolt())
    builder = TopologyBuilder()
    builder.set_spout("spout", lambda i, p: ListSpout(rows), parallelism=2)
    builder.set_bolt("left", bolt_factory, parallelism=2).shuffle_grouping("spout")
    builder.set_bolt("right", bolt_factory, parallelism=2).shuffle_grouping("spout")
    sink = SinkBolt()
    declarer = builder.set_bolt("sink", lambda i, p: sink)
    declarer.global_grouping("left")
    declarer.global_grouping("right")
    return builder.build(), sink


class TestScheduling:
    def test_topological_levels_of_a_diamond(self):
        topology, _sink = diamond_topology()
        assert topological_levels(topology) == [
            ["spout"], ["left", "right"], ["sink"]
        ]

    def test_every_edge_goes_to_a_strictly_later_level(self):
        topology, _sink = diamond_topology()
        levels = topological_levels(topology)
        depth = {name: i for i, level in enumerate(levels) for name in level}
        for edge in topology.edges:
            assert depth[edge.target] > depth[edge.source]

    def test_assignment_is_disjoint_and_balanced(self):
        topology, _sink = diamond_topology()
        assignment = assign_tasks(topology, 3)
        # every task owned exactly once
        assert set(assignment) == {
            (name, t)
            for name, spec in topology.components.items()
            for t in range(spec.parallelism)
        }
        loads = [0, 0, 0]
        for owner in assignment.values():
            loads[owner] += 1
        assert max(loads) - min(loads) <= 1  # global round-robin

    def test_worker_count_clamped_to_task_count(self):
        topology, _sink = diamond_topology()
        executor = ThreadExecutor(LocalCluster(topology), parallelism=64)
        assert executor.n_workers == 7  # 2 + 2 + 2 + 1 tasks

    def test_default_parallelism_is_positive(self):
        assert default_parallelism() >= 1


class TestErrors:
    def test_unknown_executor_name(self):
        topology, _sink = diamond_topology()
        cluster = LocalCluster(topology)
        with pytest.raises(ExecutorError, match="unknown executor"):
            cluster.run(executor="goroutines")

    def test_zero_parallelism_rejected(self):
        topology, _sink = diamond_topology()
        with pytest.raises(ExecutorError, match="parallelism"):
            create_executor("threads", LocalCluster(topology), parallelism=0)

    def test_max_tuples_needs_inline(self):
        topology, _sink = diamond_topology()
        with pytest.raises(ExecutorError, match="max_tuples"):
            LocalCluster(topology).run(max_tuples=5, executor="threads")

    @pytest.mark.parametrize("executor", PARALLEL)
    def test_worker_failure_surfaces_with_traceback(self, executor):
        topology, _sink = diamond_topology(
            bolt_factory=lambda i, p: FailingBolt())
        cluster = LocalCluster(topology)
        with pytest.raises(ExecutorError, match="boom in worker"):
            cluster.run(batch_size=4, executor=executor, parallelism=2)


class TestParallelExecution:
    @pytest.mark.parametrize("executor", PARALLEL)
    def test_matches_inline_results(self, executor):
        rows = [(i,) for i in range(50)]
        inline_topology, inline_sink = diamond_topology(rows)
        LocalCluster(inline_topology).run(batch_size=8)

        topology, _sink = diamond_topology(rows)
        cluster = LocalCluster(topology)
        cluster.run(batch_size=8, executor=executor, parallelism=3)
        # read the sink's post-run store from the cluster: under the
        # processes backend the pre-fork sink object is never mutated
        store = cluster.task("sink", 0).store
        assert sorted(store) == sorted(inline_sink.store)
        assert len(store) == 2 * len(rows)  # left + right each double all

    @pytest.mark.parametrize("executor", PARALLEL)
    def test_single_worker_degenerate_case(self, executor):
        rows = [(i,) for i in range(10)]
        topology, _sink = diamond_topology(rows)
        cluster = LocalCluster(topology)
        cluster.run(batch_size=4, executor=executor, parallelism=1)
        assert len(cluster.task("sink", 0).store) == 2 * len(rows)

    @pytest.mark.parametrize("executor", PARALLEL)
    def test_runs_are_deterministic(self, executor):
        stores = []
        metrics = []
        for _run in range(2):
            topology, _sink = diamond_topology()
            cluster = LocalCluster(topology)
            result = cluster.run(batch_size=4, executor=executor, parallelism=3)
            stores.append(list(cluster.task("sink", 0).store))
            metrics.append((result.received, result.emitted, result.batches))
        assert stores[0] == stores[1]  # same order, not just same multiset
        assert metrics[0] == metrics[1]


class TestBatchMetrics:
    """The satellite fix: spout tasks get per-task batch counts, so the
    parallel backends' load-balance checks have a per-task activity
    signal (spouts have no ``received`` counters at all)."""

    def test_inline_records_spout_batches_per_task(self):
        topology, _sink = diamond_topology(rows=[(i,) for i in range(40)])
        cluster = LocalCluster(topology)
        metrics = cluster.run(batch_size=8)
        counts = metrics.batch_counts("spout")
        assert len(counts) == 2
        # 40 rows striped over 2 tasks = 20 rows/task = 3 pulls of 8 each
        assert counts == [3, 3]

    def test_inline_records_bolt_batches(self):
        topology, _sink = diamond_topology()
        metrics = LocalCluster(topology).run(batch_size=8)
        assert sum(metrics.batch_counts("sink")) > 0

    @pytest.mark.parametrize("executor", PARALLEL)
    def test_parallel_backends_balance_spout_batches(self, executor):
        topology, _sink = diamond_topology(rows=[(i,) for i in range(64)])
        cluster = LocalCluster(topology)
        metrics = cluster.run(batch_size=8, executor=executor, parallelism=2)
        counts = metrics.batch_counts("spout")
        # both striped spout tasks pulled the same number of micro-batches
        assert counts == [4, 4]
        assert sum(metrics.batch_counts("left")) > 0

    def test_unknown_component_has_no_batch_counts(self):
        topology, _sink = diamond_topology()
        metrics = LocalCluster(topology).run()
        assert metrics.batch_counts("nope") == []


class TestPickleSafety:
    """Operators cross process boundaries when the processes backend
    ships final task state home; compiled closures must be dropped and
    rebuilt on arrival."""

    def test_selection_roundtrip_recompiles_and_keeps_counters(self):
        schema = Schema.of("x", "y")
        selection = Selection(col("x").lt(10), schema)
        assert selection.apply((3, 0)) == (3, 0)
        assert selection.apply((30, 0)) is None
        clone = pickle.loads(pickle.dumps(selection))
        assert clone.seen == 2 and clone.passed == 1
        assert clone.apply((5, 0)) == (5, 0)  # the predicate still works
        assert clone.selectivity == pytest.approx(2 / 3)

    def test_projection_roundtrip_recompiles(self):
        schema = Schema.of("x", "y")
        projection = Projection([col("y"), col("x")], schema)
        clone = pickle.loads(pickle.dumps(projection))
        assert clone.apply((1, 2)) == (2, 1)
        assert clone.apply_batch([(1, 2), (3, 4)]) == [(2, 1), (4, 3)]

    def test_source_spout_ships_counters_not_the_dataset(self):
        """A shipped-home spout must not drag the input relation back
        over the pipe -- only its measurement state matters."""
        from repro.core.schema import Relation
        from repro.engine.component import SourceComponent
        from repro.engine.runner import SourceSpout

        rows = [(i, i) for i in range(1000)]
        component = SourceComponent(
            "R", Relation("R", Schema.of("x", "y"), rows),
            predicate=col("x").lt(500))
        spout = SourceSpout(component)
        spout.open(0, 1)
        emitted = spout.next_batch(10_000)
        assert len(emitted) == 500 and spout.read == 1000
        clone = pickle.loads(pickle.dumps(spout))
        # counters survive, dataset does not
        assert clone.read == 1000
        assert clone.selection.seen == 1000 and clone.selection.passed == 500
        assert clone.rows == [] and clone.component.relation.rows == []
        # the original spout is untouched
        assert spout.rows is rows and component.relation.rows is rows


class TestAdaptiveSchemeRefusal:
    """Adaptive (stream-observing) partitioners cannot be task-localized:
    worker copies would diverge and silently lose matches, so the
    parallel backends must refuse them up front."""

    def build_adaptive_cluster(self):
        from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
        from repro.core.schema import Relation, Schema
        from repro.engine.component import JoinComponent, PhysicalPlan, SourceComponent
        from repro.engine.runner import run_plan
        from repro.partitioning.adaptive import AdaptiveOneBucket

        rows = [(i, i % 5) for i in range(40)]
        R = Relation("R", Schema.of("x", "y"), rows)
        S = Relation("S", Schema.of("y", "z"), rows)
        spec = JoinSpec(
            [RelationInfo("R", R.schema, 40), RelationInfo("S", S.schema, 40)],
            [EquiCondition(("R", "y"), ("S", "y"))],
        )
        plan = PhysicalPlan(
            sources=[SourceComponent("R", R), SourceComponent("S", S)],
            joins=[JoinComponent(
                "J", spec, machines=4,
                scheme=AdaptiveOneBucket("R", "S", machines=4,
                                         check_interval=8))],
        )
        return plan, run_plan

    @pytest.mark.parametrize("executor", PARALLEL)
    def test_parallel_backends_refuse_adaptive_partitioners(self, executor):
        plan, run_plan = self.build_adaptive_cluster()
        with pytest.raises(ExecutorError, match="adapt"):
            run_plan(plan, batch_size=8, executor=executor, parallelism=2)

    @pytest.mark.parametrize("executor", PARALLEL)
    def test_refusal_names_partitioner_and_inline_escape_hatch(self, executor):
        """The dedicated error must name the offending partitioner (not the
        grouping wrapper) and point the user at executor='inline'."""
        plan, run_plan = self.build_adaptive_cluster()
        with pytest.raises(ExecutorError) as excinfo:
            run_plan(plan, batch_size=8, executor=executor, parallelism=2)
        message = str(excinfo.value)
        assert "AdaptiveOneBucket" in message
        assert "executor='inline'" in message
        assert executor in message  # names the backend that refused
        assert "HypercubeGrouping" not in message  # culprit, not the wrapper

    def test_inline_still_runs_adaptive_partitioners(self):
        plan, run_plan = self.build_adaptive_cluster()
        result = run_plan(plan, batch_size=8)
        assert result.results


class TestRouter:
    def test_clone_preserves_sharing_across_a_joins_input_edges(self):
        """A partitioner driving several input edges of one join must stay
        ONE object inside each worker's routing table, or the edges'
        routing decisions drift apart (stateful random dimensions)."""
        from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
        from repro.core.schema import Schema
        from repro.partitioning.hash_hypercube import HashHypercube
        from repro.storm.groupings import HypercubeGrouping

        spec = JoinSpec(
            [RelationInfo("R", Schema.of("x", "y"), 10),
             RelationInfo("S", Schema.of("y", "z"), 10)],
            [EquiCondition(("R", "y"), ("S", "y"))],
        )
        partitioner = HashHypercube.build(spec, 4, seed=1)
        builder = TopologyBuilder()
        builder.set_spout("R", lambda i, p: ListSpout([], stream="R"))
        builder.set_spout("S", lambda i, p: ListSpout([], stream="S"))
        declarer = builder.set_bolt("J", lambda i, p: DoublerBolt(),
                                    parallelism=4)
        declarer.custom_grouping("R", HypercubeGrouping(partitioner, "R"))
        declarer.custom_grouping("S", HypercubeGrouping(partitioner, "S"))
        router = Router(builder.build(), clone=True)
        cloned = [grouping for edges in router._edges.values()
                  for _edge, grouping in edges
                  if isinstance(grouping, HypercubeGrouping)]
        assert len(cloned) == 2
        assert cloned[0].partitioner is cloned[1].partitioner
        assert cloned[0].partitioner is not partitioner

    def test_task_local_copy_does_not_share_shuffle_state(self):
        topology, _sink = diamond_topology()
        original = Router(topology)
        clone = Router(topology, clone=True)
        emissions = [("default", (i,)) for i in range(4)]
        first = clone.route("spout", emissions)
        # advancing the clone's shuffle counters leaves the original alone
        assert original.route("spout", emissions) == first

    def test_sink_bolt_grows_its_own_store_by_default(self):
        sink = SinkBolt()
        sink.execute_batch("J", "J", [(1,), (2,)])
        assert sink.store == [(1,), (2,)]
