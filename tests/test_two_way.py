"""Tests for 2-way partitioning schemes: hash, 1-Bucket, M-Bucket."""

import random
from collections import Counter

import pytest

from repro.core.predicates import BandCondition, EquiCondition, ThetaCondition
from repro.core.schema import Schema
from repro.partitioning.base import UnsupportedJoinError
from repro.partitioning.two_way import HashTwoWay, MBucket, OneBucket, choose_matrix


class TestChooseMatrix:
    def test_square_for_equal_sizes(self):
        assert choose_matrix(16, 100, 100) == (4, 4)

    def test_proportional_for_skewed_sizes(self):
        rows, cols = choose_matrix(16, 400, 100)
        assert rows > cols
        assert rows * cols <= 16

    def test_one_sided_when_other_empty(self):
        rows, cols = choose_matrix(8, 1000, 1)
        assert rows == 8
        assert cols == 1

    def test_prime_budget_still_uses_machines(self):
        rows, cols = choose_matrix(7, 100, 100)
        assert rows * cols >= 6  # e.g. 2x3 or 3x2, not 1x1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            choose_matrix(0, 1, 1)


class TestHashTwoWay:
    def test_matching_keys_meet(self):
        schemas = {"R": Schema.of("a", "k"), "S": Schema.of("k", "b")}
        scheme = HashTwoWay.for_condition(
            EquiCondition(("R", "k"), ("S", "k")), schemas, 8
        )
        for key in range(50):
            r_dest = scheme.destinations("R", (0, key))
            s_dest = scheme.destinations("S", (key, 0))
            assert r_dest == s_dest
            assert len(r_dest) == 1

    def test_no_replication(self):
        schemas = {"R": Schema.of("k"), "S": Schema.of("k")}
        scheme = HashTwoWay.for_condition(
            EquiCondition(("R", "k"), ("S", "k")), schemas, 8
        )
        assert scheme.expected_replication("R") == 1
        assert scheme.replication_factor({"R": 100, "S": 100}) == 1.0

    def test_rejects_theta(self):
        schemas = {"R": Schema.of("k"), "S": Schema.of("k")}
        with pytest.raises(UnsupportedJoinError):
            HashTwoWay.for_condition(
                ThetaCondition(("R", "k"), "<", ("S", "k")), schemas, 8
            )

    def test_content_sensitive(self):
        scheme = HashTwoWay("R", 0, "S", 0, 4)
        assert scheme.is_content_sensitive()

    def test_skewed_key_overloads_one_machine(self):
        scheme = HashTwoWay("R", 0, "S", 0, 8)
        loads = Counter()
        for _ in range(800):
            loads[scheme.destinations("R", ("hot",))[0]] += 1
        for i in range(200):
            loads[scheme.destinations("R", (f"cold{i}",))[0]] += 1
        assert max(loads.values()) >= 800  # the hot key pins one machine


class TestOneBucket:
    def test_every_pair_meets_exactly_once(self):
        scheme = OneBucket("R", "S", 12, 100, 100, seed=3)
        r_placements = [set(scheme.destinations("R", (i,))) for i in range(40)]
        s_placements = [set(scheme.destinations("S", (j,))) for j in range(40)]
        for r_set in r_placements:
            for s_set in s_placements:
                assert len(r_set & s_set) == 1

    def test_replication_counts(self):
        scheme = OneBucket("R", "S", 16, 100, 100, seed=0)
        assert scheme.rows * scheme.cols <= 16
        assert scheme.expected_replication("R") == scheme.cols
        assert scheme.expected_replication("S") == scheme.rows

    def test_content_insensitive_under_sorted_arrival(self):
        """Sorted input spreads evenly: random routing ignores values."""
        scheme = OneBucket("R", "S", 16, 100, 100, seed=1)
        loads = Counter()
        for i in range(1600):  # sorted keys
            for machine in scheme.destinations("R", (i,)):
                loads[machine] += 1
        assert not scheme.is_content_sensitive()
        assert max(loads.values()) / min(loads.values()) < 1.5

    def test_explicit_shape(self):
        scheme = OneBucket("R", "S", 16, shape=(2, 8))
        assert (scheme.rows, scheme.cols) == (2, 8)

    def test_unknown_relation_rejected(self):
        scheme = OneBucket("R", "S", 4)
        with pytest.raises(KeyError):
            scheme.destinations("Q", (1,))


class TestMBucket:
    def make(self, machines=8, width=2.0, op=None):
        rng = random.Random(0)
        sample = [rng.randrange(1000) for _ in range(500)]
        if op is None:
            cond = BandCondition(("R", "k"), ("S", "k"), width=width)
        else:
            cond = ThetaCondition(("R", "k"), op, ("S", "k"))
        return MBucket("R", 0, "S", 0, machines, sample, cond), cond

    def test_left_goes_to_single_stripe(self):
        scheme, _ = self.make()
        for value in (0, 250, 999):
            assert len(scheme.destinations("R", (value,))) == 1

    def test_band_pairs_meet(self):
        scheme, cond = self.make(width=5.0)
        rng = random.Random(1)
        lefts = [(rng.randrange(1000),) for _ in range(100)]
        rights = [(rng.randrange(1000),) for _ in range(100)]
        for l_row in lefts:
            l_dest = set(scheme.destinations("R", l_row))
            for r_row in rights:
                if cond.evaluate(l_row[0], r_row[0]):
                    r_dest = set(scheme.destinations("S", r_row))
                    assert l_dest & r_dest, (l_row, r_row)

    def test_inequality_pairs_meet(self):
        scheme, cond = self.make(op="<")
        rng = random.Random(2)
        lefts = [(rng.randrange(1000),) for _ in range(60)]
        rights = [(rng.randrange(1000),) for _ in range(60)]
        for l_row in lefts:
            l_dest = set(scheme.destinations("R", l_row))
            for r_row in rights:
                if cond.evaluate(l_row[0], r_row[0]):
                    assert l_dest & set(scheme.destinations("S", r_row))

    def test_product_skew_weakness(self):
        """A value region producing most of the output overloads its
        stripe -- the weakness EWH fixes (paper: 'prone to join product
        skew')."""
        # left keys uniform, right keys all clustered at 500 +- 1
        rng = random.Random(3)
        sample = [rng.randrange(1000) for _ in range(500)]
        cond = BandCondition(("R", "k"), ("S", "k"), width=1.0)
        scheme = MBucket("R", 0, "S", 0, 8, sample, cond)
        loads = Counter()
        for _ in range(400):
            for machine in scheme.destinations("S", (500,)):
                loads[machine] += 1
        # all right tuples land on the stripe(s) covering 500
        assert len(loads) <= 2

    def test_needs_sample(self):
        with pytest.raises(ValueError):
            MBucket("R", 0, "S", 0, 4, [], BandCondition(("R", "k"), ("S", "k"), 1))

    def test_content_sensitive(self):
        scheme, _ = self.make()
        assert scheme.is_content_sensitive()
