"""The annotation convention must cost nothing at runtime.

``GUARDED_BY`` / ``PIPE_PICKLED`` are plain class attributes read only
by the AST analyzer -- never by the engine.  These tests pin that
contract: no descriptors, no per-instance storage, byte-identical
method code, and no measurable slowdown on a hot attribute-access loop
(so ``benchmarks/BENCH_baseline.json`` stays valid untouched).
"""

import threading
import time

from repro.serving.broker import QueryBroker
from repro.storm.metrics import ServingMetrics, StreamMetrics
from repro.streaming.deltas import DeltaSink, Subscription


def test_markers_are_plain_class_data():
    for cls in (QueryBroker, StreamMetrics, ServingMetrics, Subscription,
                DeltaSink):
        marker = cls.__dict__["GUARDED_BY"]
        assert type(marker) is dict
        # a plain dict is not a descriptor: nothing runs on attribute
        # access, unlike e.g. a decorator-based @guarded_by design
        assert not hasattr(type(marker), "__get__") or not callable(
            getattr(type(marker), "__set_name__", None))
    assert type(DeltaSink.__dict__["PIPE_PICKLED"]) is bool


def test_no_per_instance_cost():
    sink = DeltaSink()
    assert "GUARDED_BY" not in sink.__dict__
    assert "PIPE_PICKLED" not in sink.__dict__
    metrics = StreamMetrics()
    assert "GUARDED_BY" not in metrics.__dict__


def test_annotated_method_bytecode_is_unchanged():
    """GUARDED_BY in a class body cannot alter the code of its methods."""

    class Plain:
        def __init__(self):
            self._lock = threading.Lock()
            self.items = []

        def add(self, item):
            with self._lock:
                self.items.append(item)

    class Annotated:
        GUARDED_BY = {"items": "_lock"}

        def __init__(self):
            self._lock = threading.Lock()
            self.items = []

        def add(self, item):
            with self._lock:
                self.items.append(item)

    assert Plain.add.__code__.co_code == Annotated.add.__code__.co_code
    assert Plain.__init__.__code__.co_code == Annotated.__init__.__code__.co_code


def test_hot_path_timing_is_unaffected():
    """Generous bound: the annotated loop must stay within 2x of the
    plain loop (identical bytecode leaves only scheduling noise)."""

    class Plain:
        def __init__(self):
            self.count = 0

        def bump(self):
            self.count += 1

    class Annotated:
        GUARDED_BY = {"count": "_lock"}
        PIPE_PICKLED = False

        def __init__(self):
            self.count = 0

        def bump(self):
            self.count += 1

    def measure(cls, n=50_000, repeats=5):
        best = float("inf")
        instance = cls()
        for _ in range(repeats):
            bump = instance.bump
            start = time.perf_counter()
            for _ in range(n):
                bump()
            best = min(best, time.perf_counter() - start)
        return best

    plain = measure(Plain)
    annotated = measure(Annotated)
    assert annotated < plain * 2.0, (
        f"annotated hot loop {annotated:.6f}s vs plain {plain:.6f}s")
