"""Docs stay runnable: every fenced ``python`` block executes green.

The README and everything under ``docs/`` are part of the tested
surface: each ``python`` code fence is extracted and executed, blocks
within one file sharing a namespace (so a quickstart block can define
what a later block uses).  Non-python fences (``text`` diagrams,
``bash`` command lines, transcripts) are prose and are skipped.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: every markdown file whose python blocks must run
DOC_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("**/*.md")],
    key=lambda path: str(path.relative_to(REPO)),
)

FENCE = re.compile(
    r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL)


def python_blocks(path: Path):
    """All fenced python blocks of one file, with their line numbers."""
    text = path.read_text()
    blocks = []
    for match in FENCE.finditer(text):
        line = text.count("\n", 0, match.start()) + 2  # first code line
        blocks.append((line, match.group(1)))
    return blocks


def test_doc_files_exist_and_carry_code():
    assert [path.name for path in DOC_FILES] == [
        "README.md", "ARCHITECTURE.md", "FAULT_TOLERANCE.md",
        "OBSERVABILITY.md", "STATIC_ANALYSIS.md"]
    for path in DOC_FILES:
        assert python_blocks(path), f"{path.name} has no python examples"


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=lambda path: str(path.relative_to(REPO)))
def test_every_python_block_executes(path):
    namespace = {"__name__": f"docs_{path.stem}"}
    for line, code in python_blocks(path):
        try:
            exec(compile(code, f"{path.name}:{line}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - the failure path
            pytest.fail(
                f"{path.relative_to(REPO)} block at line {line} failed: "
                f"{type(exc).__name__}: {exc}")
