"""Tests for the query optimizer (logical -> physical compilation)."""

import random
from collections import Counter

import pytest

from repro.core.expressions import col
from repro.core.logical import AggItem, LogicalPlan, ScanDef, resolve_column
from repro.core.optimizer import Catalog, Optimizer, OptimizerOptions
from repro.core.predicates import EquiCondition
from repro.core.schema import Relation, Schema
from repro.engine.runner import run_plan
from repro.joins import reference_join


def catalog_rst(seed=70, n=40, hot_fraction=0.0):
    rng = random.Random(seed)

    def z_value():
        if hot_fraction and rng.random() < hot_fraction:
            return 0
        return rng.randrange(50)

    R = Relation("R", Schema.of("x", "y"),
                 [(rng.randrange(20), rng.randrange(6)) for _ in range(n)])
    S = Relation("S", Schema.of("y", "z"),
                 [(rng.randrange(6), z_value()) for _ in range(n)])
    T = Relation("T", Schema.of("z", "t"),
                 [(z_value(), rng.randrange(9)) for _ in range(n)])
    return Catalog({"R": R, "S": S, "T": T})


def rst_logical(group=True):
    return LogicalPlan(
        scans=[ScanDef("R", "R"), ScanDef("S", "S"), ScanDef("T", "T")],
        conditions=[EquiCondition(("R", "y"), ("S", "y")),
                    EquiCondition(("S", "z"), ("T", "z"))],
        group_by=["R.y"] if group else [],
        aggregates=[AggItem("count")] if group else [],
    )


class TestLogicalPlan:
    def test_validate_catches_unknown_alias(self):
        plan = LogicalPlan(
            scans=[ScanDef("R", "R")],
            conditions=[EquiCondition(("R", "y"), ("S", "y"))],
        )
        with pytest.raises(ValueError, match="unknown alias"):
            plan.validate({"R": Schema.of("x", "y")})

    def test_resolve_column_qualified(self):
        schemas = {"R": Schema.of("x"), "S": Schema.of("x")}
        assert resolve_column("R.x", schemas) == ("R", "x")

    def test_resolve_column_ambiguous(self):
        schemas = {"R": Schema.of("x"), "S": Schema.of("x")}
        with pytest.raises(KeyError, match="ambiguous"):
            resolve_column("x", schemas)

    def test_dag_rendering(self):
        plan = rst_logical()
        text = plan.dag()
        assert "scan(R)" in text
        assert "aggregate" in text


class TestCompilation:
    def test_multiway_plan_executes_correctly(self):
        catalog = catalog_rst()
        optimizer = Optimizer(catalog, OptimizerOptions(machines=6))
        physical = optimizer.compile(rst_logical())
        result = run_plan(physical)
        data = {name: catalog.get(name).rows for name in ("R", "S", "T")}
        spec = physical.joins[0].spec
        expected = Counter(row[1] for row in reference_join(spec, data))
        assert sorted(result.results) == sorted(expected.items())

    def test_pipeline_plan_matches_multiway(self):
        catalog = catalog_rst(seed=71)
        multiway = Optimizer(catalog, OptimizerOptions(machines=6)).compile(
            rst_logical()
        )
        pipeline = Optimizer(
            catalog, OptimizerOptions(machines=6, mode="pipeline")
        ).compile(rst_logical())
        assert len(pipeline.joins) == 2
        result_a = run_plan(multiway)
        result_b = run_plan(pipeline)
        assert sorted(result_a.results) == sorted(result_b.results)

    def test_selection_pushdown_reduces_join_input(self):
        catalog = catalog_rst(seed=72)
        logical = rst_logical()
        logical.scans[0].predicates.append(col("x").lt(5))
        physical = Optimizer(catalog, OptimizerOptions(machines=4)).compile(logical)
        result = run_plan(physical)
        cost_class, seen, passed = result.selections["R"]
        assert passed < seen

    def test_skew_marking_from_statistics(self):
        catalog = catalog_rst(seed=73, n=400, hot_fraction=0.6)
        physical = Optimizer(catalog, OptimizerOptions(machines=8)).compile(
            rst_logical()
        )
        spec = physical.joins[0].spec
        assert spec.by_name["S"].is_skewed("z")
        assert spec.by_name["T"].is_skewed("z")
        assert not spec.by_name["R"].is_skewed("y") or True  # y has 6 < 8 keys

    def test_small_domain_rule_marks_skew(self):
        """y has only 6 distinct values < 8 machines: skewed by the
        small-domain rule, so the Hybrid goes random on it."""
        catalog = catalog_rst(seed=74, n=200)
        physical = Optimizer(catalog, OptimizerOptions(machines=8)).compile(
            rst_logical()
        )
        spec = physical.joins[0].spec
        assert spec.by_name["R"].is_skewed("y")

    def test_explicit_scheme_respected(self):
        catalog = catalog_rst(seed=75)
        physical = Optimizer(
            catalog, OptimizerOptions(machines=4, scheme="random")
        ).compile(rst_logical())
        assert physical.joins[0].scheme == "random"

    def test_output_scheme_projects_needed_columns_only(self):
        catalog = catalog_rst(seed=76)
        physical = Optimizer(catalog, OptimizerOptions(machines=4)).compile(
            rst_logical()
        )
        join = physical.joins[0]
        # group on R.y, count(*): only one column crosses the network
        assert join.output_positions == [1]

    def test_aggregation_key_domain_for_small_groups(self):
        catalog = catalog_rst(seed=77, n=100)
        physical = Optimizer(catalog, OptimizerOptions(machines=4)).compile(
            rst_logical()
        )
        agg = physical.aggregation
        assert agg is not None
        assert agg.key_domain is not None  # y has 6 distinct values
        assert len(agg.key_domain) <= 6

    def test_join_order_heuristic_smallest_first(self):
        catalog = Catalog({
            "A": Relation("A", Schema.of("k"), [(i,) for i in range(100)]),
            "B": Relation("B", Schema.of("k", "j"), [(i % 10, i % 5) for i in range(10)]),
            "C": Relation("C", Schema.of("j"), [(i,) for i in range(50)]),
        })
        logical = LogicalPlan(
            scans=[ScanDef("A", "A"), ScanDef("B", "B"), ScanDef("C", "C")],
            conditions=[EquiCondition(("A", "k"), ("B", "k")),
                        EquiCondition(("B", "j"), ("C", "j"))],
        )
        optimizer = Optimizer(catalog, OptimizerOptions(machines=4, mode="pipeline"))
        physical = optimizer.compile(logical)
        first_join = physical.joins[0]
        assert set(first_join.spec.relation_names) == {"B", "C"}  # smallest + connected

    def test_pipeline_aggregation_rewires_columns(self):
        catalog = catalog_rst(seed=78)
        logical = rst_logical()
        physical = Optimizer(
            catalog, OptimizerOptions(machines=4, mode="pipeline")
        ).compile(logical)
        result = run_plan(physical)
        multiway = Optimizer(catalog, OptimizerOptions(machines=4)).compile(
            rst_logical()
        )
        expected = run_plan(multiway)
        assert sorted(result.results) == sorted(expected.results)

    def test_single_relation_aggregate_plan(self):
        catalog = catalog_rst(seed=79)
        logical = LogicalPlan(
            scans=[ScanDef("R", "R")],
            group_by=["R.y"],
            aggregates=[AggItem("sum", "R.x")],
        )
        physical = Optimizer(catalog, OptimizerOptions(machines=4)).compile(logical)
        assert not physical.joins
        result = run_plan(physical)
        expected = Counter()
        for x, y in catalog.get("R").rows:
            expected[y] += x
        assert sorted(result.results) == sorted(expected.items())

    def test_source_parallelism_scales_with_size(self):
        optimizer = Optimizer(Catalog(), OptimizerOptions(source_budget=4))
        assert optimizer._source_parallelism(10) == 1
        assert optimizer._source_parallelism(200_000) == 4
