"""Deterministic physical plans shared by the batching-equivalence tests.

The golden files under ``tests/golden/`` were captured by running these
exact plans through the seed per-tuple engine (recursive ``_dispatch``).
``test_batching_equivalence.py`` replays them through the batched
dataplane and asserts byte-identical results and metrics for
``batch_size=1`` and multiset-identical results for larger batches.
"""

from __future__ import annotations

import random

from repro.core.expressions import col
from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Relation, Schema
from repro.engine import (
    AggComponent,
    JoinComponent,
    PhysicalPlan,
    SourceComponent,
    count,
    total,
)


def rst_relations(seed: int = 60, n: int = 40):
    """The paper's running example R(x,y) >< S(y,z) >< T(z,t)."""
    rng = random.Random(seed)
    R = Relation("R", Schema.of("x", "y"),
                 [(rng.randrange(20), rng.randrange(6)) for _ in range(n)])
    S = Relation("S", Schema.of("y", "z"),
                 [(rng.randrange(6), rng.randrange(5)) for _ in range(n)])
    T = Relation("T", Schema.of("z", "t"),
                 [(rng.randrange(5), rng.randrange(9)) for _ in range(n)])
    spec = JoinSpec(
        [RelationInfo("R", R.schema, n), RelationInfo("S", S.schema, n),
         RelationInfo("T", T.schema, n)],
        [EquiCondition(("R", "y"), ("S", "y")),
         EquiCondition(("S", "z"), ("T", "z"))],
    )
    return R, S, T, spec


def plan_join_only() -> PhysicalPlan:
    """Plain 3-way join, parallel R readers, hybrid hypercube + DBToaster."""
    R, S, T, spec = rst_relations(seed=60)
    return PhysicalPlan(
        sources=[SourceComponent("R", R, parallelism=2),
                 SourceComponent("S", S), SourceComponent("T", T)],
        joins=[JoinComponent("J", spec, machines=6)],
    )


def plan_selection_traditional() -> PhysicalPlan:
    """Selection pushed into the R source; traditional local join on hash."""
    R, S, T, spec = rst_relations(seed=61)
    return PhysicalPlan(
        sources=[SourceComponent("R", R, predicate=col("x").lt(10)),
                 SourceComponent("S", S), SourceComponent("T", T)],
        joins=[JoinComponent("J", spec, machines=4, scheme="hash",
                             local_join="traditional")],
    )


def plan_online_agg() -> PhysicalPlan:
    """Online aggregation: result *order* depends on tuple interleaving."""
    R, S, T, spec = rst_relations(seed=64, n=15)
    return PhysicalPlan(
        sources=[SourceComponent("R", R), SourceComponent("S", S),
                 SourceComponent("T", T)],
        joins=[JoinComponent("J", spec, machines=4, output_positions=[1])],
        aggregation=AggComponent("agg", group_positions=[0],
                                 aggregates=[count()], parallelism=2,
                                 online=True),
    )


def plan_snapshot_agg() -> PhysicalPlan:
    """Offline aggregation with a predefined key domain (key-mapped routing)."""
    R, S, T, spec = rst_relations(seed=62)
    return PhysicalPlan(
        sources=[SourceComponent("R", R), SourceComponent("S", S),
                 SourceComponent("T", T)],
        joins=[JoinComponent("J", spec, machines=6,
                             output_positions=[1, 5])],  # R.y, T.t
        aggregation=AggComponent("agg", group_positions=[0],
                                 aggregates=[count(), total(1)],
                                 parallelism=3, key_domain=list(range(6))),
    )


def plan_two_joins() -> PhysicalPlan:
    """R >< S via hash, then (RS) >< T: a pipeline of two 2-way joins."""
    from repro.joins.base import JoinSchema

    R, S, T, _spec = rst_relations(seed=63)
    spec_rs = JoinSpec(
        [RelationInfo("R", R.schema, len(R)), RelationInfo("S", S.schema, len(S))],
        [EquiCondition(("R", "y"), ("S", "y"))],
    )
    rs_schema = JoinSchema.from_spec(spec_rs).output_schema()
    spec_rst = JoinSpec(
        [RelationInfo("J1", rs_schema, 100), RelationInfo("T", T.schema, len(T))],
        [EquiCondition(("J1", "S.z"), ("T", "z"))],
    )
    return PhysicalPlan(
        sources=[SourceComponent("R", R), SourceComponent("S", S),
                 SourceComponent("T", T)],
        joins=[JoinComponent("J1", spec_rs, machines=4, scheme="hash"),
               JoinComponent("J2", spec_rst, machines=4, scheme="hash")],
    )


#: name -> plan builder; every entry has a golden capture
GOLDEN_PLANS = {
    "join_only": plan_join_only,
    "selection_traditional": plan_selection_traditional,
    "online_agg": plan_online_agg,
    "snapshot_agg": plan_snapshot_agg,
    "two_joins": plan_two_joins,
}


def run_result_fingerprint(result) -> dict:
    """JSON-friendly snapshot of everything the equivalence test compares."""
    return {
        "results": [list(row) for row in result.results],
        "received": {k: list(v) for k, v in result.metrics.received.items()},
        "emitted": {k: list(v) for k, v in result.metrics.emitted.items()},
        "edge_transfers": {
            f"{src}->{dst}": n
            for (src, dst), n in sorted(result.metrics.edge_transfers.items())
        },
        "reads": dict(result.reads),
        "selections": {k: list(v) for k, v in result.selections.items()},
        "join_work": {k: list(v) for k, v in result.join_work.items()},
        "join_state": {k: list(v) for k, v in result.join_state.items()},
    }
