"""Tests for scheme-aware fault tolerance (paper section 5)."""


import signal

import pytest

from repro.partitioning import HashHypercube, RandomHypercube
from repro.storm.failures import (
    FaultInjector,
    ReplicatedStateTracker,
    WorkerKill,
    checkpoint_plan,
    recovery_strategy,
)

from tests.conftest import make_rst_data


class TestPeerMachines:
    def test_random_hypercube_peers_match_figure_2b(self, rst_spec):
        """In a 4x4x4 Random-Hypercube, machine {1,1,1}'s R slice lives on
        every {1,*,*} machine (the paper's recovery example)."""
        partitioner = RandomHypercube.build(rst_spec, 64)
        machine = partitioner.linearize((1, 1, 1))
        peers = partitioner.peer_machines(machine, "R")
        assert len(peers) == 15  # 4*4 - itself
        for peer in peers:
            assert partitioner.delinearize(peer)[0] == 1

    def test_fully_partitioned_relation_has_no_peers(self, rst_spec):
        """S owns both dims of the 8x8 Hash-Hypercube: no replicas exist."""
        partitioner = HashHypercube.build(rst_spec, 64)
        machine = partitioner.linearize((3, 4))
        assert partitioner.peer_machines(machine, "S") == []
        assert len(partitioner.peer_machines(machine, "R")) == 7


class TestRecovery:
    def test_random_scheme_recovers_everything(self, rst_spec):
        partitioner = RandomHypercube.build(rst_spec, 8, seed=5)
        tracker = ReplicatedStateTracker(partitioner)
        data = make_rst_data(seed=50, n=60)
        for name, rows in data.items():
            for row in rows:
                tracker.insert(name, row)
        failed = 3
        report = tracker.fail_and_recover(failed)
        assert report.fully_recovered
        for rel_name, recovered in report.recovered.items():
            assert sorted(recovered) == sorted(tracker.slice_of(failed, rel_name))
        assert report.network_tuples == sum(
            len(rows) for rows in report.recovered.values()
        )

    def test_hash_scheme_reports_unrecoverable_relation(self, rst_spec):
        partitioner = HashHypercube.build(rst_spec, 16, seed=6)
        tracker = ReplicatedStateTracker(partitioner)
        data = make_rst_data(seed=51, n=60)
        for name, rows in data.items():
            for row in rows:
                tracker.insert(name, row)
        # find a machine that actually stores some S tuples
        machine = next(
            m for m in range(partitioner.n_machines)
            if tracker.state[m].get("S")
        )
        report = tracker.fail_and_recover(machine)
        assert "S" in report.unrecoverable  # S owns every dimension
        assert not report.fully_recovered
        # R and T are replicated, so they recover
        for rel in ("R", "T"):
            if tracker.state[machine].get(rel):
                assert rel in report.recovered

    def test_network_faster_than_disk_story_counts_tuples(self, rst_spec):
        partitioner = RandomHypercube.build(rst_spec, 8, seed=7)
        tracker = ReplicatedStateTracker(partitioner)
        data = make_rst_data(seed=52, n=30)
        for name, rows in data.items():
            for row in rows:
                tracker.insert(name, row)
        report = tracker.fail_and_recover(0)
        assert report.network_tuples > 0


class TestCheckpointPlan:
    def test_hash_hypercube_needs_checkpoint_for_fully_owned(self, rst_spec):
        partitioner = HashHypercube.build(rst_spec, 64)
        plan = checkpoint_plan(partitioner)
        assert plan == {"R": False, "S": True, "T": False}

    def test_random_hypercube_needs_no_checkpoints(self, rst_spec):
        partitioner = RandomHypercube.build(rst_spec, 64)
        plan = checkpoint_plan(partitioner)
        assert plan == {"R": False, "S": False, "T": False}

    def test_partial_replication_minimises_checkpointing(self, rst_spec):
        """Squall replicates only the state the scheme does not already
        replicate: exactly the relations flagged True."""
        partitioner = HashHypercube.build(rst_spec, 64)
        flagged = [rel for rel, needed in checkpoint_plan(partitioner).items() if needed]
        assert flagged == ["S"]


class TestRecoveryStrategy:
    def test_names_a_mechanism_per_relation(self, rst_spec):
        partitioner = HashHypercube.build(rst_spec, 64)
        assert recovery_strategy(partitioner) == {
            "R": "peer", "S": "checkpoint", "T": "peer"}

    def test_full_replication_means_all_peer(self, rst_spec):
        partitioner = RandomHypercube.build(rst_spec, 64)
        strategy = recovery_strategy(partitioner)
        assert set(strategy.values()) == {"peer"}


class TestFaultInjector:
    def test_kill_plan_resolves_partitions_to_owning_workers(self):
        injector = (FaultInjector()
                    .kill_worker_of("J", 0, after_batches=2)
                    .kill_worker_of("J", 1, after_batches=5)
                    .kill_worker_of("agg", 0))
        assignment = {("J", 0): 0, ("J", 1): 1, ("agg", 0): 0}
        assert injector.kill_plan(assignment) == {
            0: [(2, signal.SIGKILL), (1, signal.SIGKILL)],
            1: [(5, signal.SIGKILL)],
        }

    def test_coordinator_owned_partition_is_rejected(self):
        injector = FaultInjector([WorkerKill("sink", 0)])
        with pytest.raises(ValueError, match="coordinator"):
            injector.kill_plan({("J", 0): 0})

    def test_constructor_accepts_prebuilt_specs(self):
        kills = [WorkerKill("J", 2, after_batches=3)]
        assert FaultInjector(kills).kill_plan({("J", 2): 4}) == {
            4: [(3, signal.SIGKILL)]}
