# ruff: noqa
"""An AB-BA deadlock between a broker-like registry and its sink.

``Registry.attach`` takes the registry lock then calls into the sink
(which takes the sink lock); ``Sink.teardown`` takes the sink lock then
calls back into the registry (which takes the registry lock).  Two
threads running one each deadlock.  squall-lint's lock-order rule must
find the cycle, and the re-acquisition of a non-reentrant Lock must be
flagged as a guaranteed self-deadlock.
"""

import threading


class Registry:
    def __init__(self, sink):
        self._lock = threading.Lock()
        self._entries = {}
        self.sink = sink

    def attach(self, key, subscription):
        with self._lock:
            self._entries[key] = subscription
            self.sink.admit(subscription)

    def evict(self, key):
        with self._lock:
            self._entries.pop(key, None)


class Sink:
    def __init__(self):
        self._lock = threading.Lock()
        self.registry = None
        self._subscribers = []

    def admit(self, subscription):
        with self._lock:
            self._subscribers.append(subscription)

    def teardown(self, key):
        with self._lock:
            self.registry.evict(key)

    def drain(self):
        # guaranteed self-deadlock: _lock is a plain threading.Lock
        with self._lock:
            with self._lock:
                return list(self._subscribers)
