# ruff: noqa
"""Seeded reconstruction of the unpicklable-bolt-state bug.

The original Selection/Projection operators compiled their predicates
into closures in __init__; the processes executor then failed at
runtime trying to pickle the staged topology ("unpicklable bolt
state").  squall-lint's pickle-safety rule must catch every such
assignment statically: lambdas, locally defined closures, generator
expressions, and threading primitives stored on a pipe-reachable class
with no __getstate__.
"""

import threading


class Bolt:
    """Stand-in for the topology base class (resolved by name)."""


class BadSelectionBolt(Bolt):
    def __init__(self, column, threshold):
        self._predicate = lambda row: row[column] > threshold
        self._lock = threading.Lock()

    def prepare(self, rows):
        def keyer(row):
            return row[0]

        self._keyer = keyer
        self._pending = (row for row in rows)
