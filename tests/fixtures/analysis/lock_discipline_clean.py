# ruff: noqa
"""The fixed subscribe path, plus the two sanctioned escape hatches:
a ``holds=`` annotation for a helper called under the lock, and a
per-line suppression for a deliberate unlocked read."""

import threading


class FixedSink:
    GUARDED_BY = {
        "_subscriptions": "_lock",
        "_counts": "_lock",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._subscriptions = []
        self._counts = {}

    def subscribe(self, subscription):
        with self._lock:
            catch_up = dict(self._counts)
            self._subscriptions.append(subscription)
        return catch_up

    def _attach(self, subscription):  # squall-lint: holds=_lock
        self._subscriptions.append(subscription)

    def approximate_backlog(self):
        # monitoring only: a torn read is acceptable here, and saying so
        # is the point of the per-line suppression
        return len(self._subscriptions)  # squall-lint: disable=lock-discipline
