# ruff: noqa
"""The fixed metrics registry: get-or-create under the lock.

Same shape as ``registry_bad.py`` with the dedup and collector
registration moved inside ``with self._lock:`` (the lookup helper is
annotated ``holds=`` because every caller already owns the lock) --
squall-lint must report nothing.
"""

import threading


class CleanRegistry:
    GUARDED_BY = {
        "_instruments": "_lock",
        "_collectors": "_lock",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments = {}
        self._collectors = []

    def _get_locked(self, name):  # squall-lint: holds=_lock
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = [0]
            self._instruments[name] = instrument
        return instrument

    def counter(self, name):
        with self._lock:
            return self._get_locked(name)

    def register_collector(self, collector):
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def samples(self):
        with self._lock:
            instruments = dict(self._instruments)
            collectors = list(self._collectors)
        out = [(name, value[0]) for name, value in sorted(instruments.items())]
        for collector in collectors:
            out.extend(collector())
        return out
