# ruff: noqa
"""Seeded reconstruction of the uncheckpointed-routing-field bug.

A shuffle grouping's round-robin cursor advances on every routed batch;
if it is not captured by routing_state()/restore_routing_state(), a
recovered worker restarts the cursor at 0 and the replayed deltas land
on different tasks than the original delivery -- exactly-once recovery
silently breaks.  Part 2: a __getstate__ that drops a key which
__setstate__ never restores loses the attribute on every recovery.
"""


class Grouping:
    """Stand-in for the routing base class (resolved by name)."""

    def routing_state(self):
        return None

    def restore_routing_state(self, state):
        pass


class ForgetfulShuffle(Grouping):
    def __init__(self):
        self._next = 0

    def targets(self, stream, values, n_tasks):
        target = self._next % n_tasks
        self._next += 1
        return [target]


class PartialShuffle(Grouping):
    """Captures one of its two mutable fields -- the other is lost."""

    def __init__(self):
        self._next = 0
        self._routed = 0

    def routing_state(self):
        return self._next

    def restore_routing_state(self, state):
        self._next = state

    def targets(self, stream, values, n_tasks):
        target = self._next % n_tasks
        self._next += 1
        self._routed += 1
        return [target]


class LossyOperator:
    def __init__(self, rows):
        self.rows = rows
        self._cache = {}

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_cache"]
        return state
    # BUG: no __setstate__ -- every recovered instance lacks _cache
