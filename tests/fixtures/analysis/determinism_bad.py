# ruff: noqa
"""Seeded nondeterminism in operator kernels.

The equivalence suites pin byte-identical results across batch sizes
and executors; every construct below breaks that: set iteration order
differs between processes (hash randomization), wall-clock and the
module-level RNG differ between original run and replay, and id() is a
per-process address.
"""

import random
import time


class Bolt:
    """Stand-in for the topology base class (resolved by name)."""


class UnorderedJoinBolt(Bolt):
    def __init__(self):
        self._seen = set()

    def execute_batch(self, source, stream, rows):
        self._seen.update(rows)
        emissions = []
        for row in set(rows):  # iteration order is not deterministic
            emissions.append((stream, row))
        return emissions

    def finish(self):
        return [(None, row) for row in self._seen | {("eos",)}]


class WallClockBolt(Bolt):
    def execute_batch(self, source, stream, rows):
        stamped = [(time.time(), row) for row in rows]
        return [(stream, row) for _ts, row in stamped]

    def pick_replica(self, n_tasks):
        return random.randrange(n_tasks)

    def route_key(self, row):
        return id(row) % 64
