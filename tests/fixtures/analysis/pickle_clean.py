# ruff: noqa
"""The two sanctioned fixes for unpicklable bolt state: a
__getstate__/__setstate__ pair that rebuilds the closures (what
Selection/Projection do), or PIPE_PICKLED = False for a class that
never crosses a pipe (what DeltaSink does)."""

import threading


class Bolt:
    """Stand-in for the topology base class (resolved by name)."""


class FixedSelectionBolt(Bolt):
    def __init__(self, column, threshold):
        self.column = column
        self.threshold = threshold
        self._predicate = lambda row: row[column] > threshold

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_predicate"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._predicate = (
            lambda row: row[self.column] > self.threshold)


class CoordinatorSink(Bolt):
    PIPE_PICKLED = False  # coordinator-owned; never pickled whole

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}
