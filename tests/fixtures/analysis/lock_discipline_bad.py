# ruff: noqa
"""Seeded reconstruction of the PR 7 subscribe/fan-out race.

The pre-review DeltaSink appended the new subscription to the fan-out
list *outside* the sink lock and published the catch-up snapshot after
releasing it, so a concurrent execute_batch could order a newer delta
batch ahead of the attach snapshot.  squall-lint's lock-discipline rule
must flag every unlocked touch of the GUARDED_BY fields.
"""

import threading


class RacySink:
    GUARDED_BY = {
        "_subscriptions": "_lock",
        "_counts": "_lock",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._subscriptions = []
        self._counts = {}

    def execute_batch(self, rows):
        with self._lock:
            for row in rows:
                self._counts[row] = self._counts.get(row, 0) + 1
            subscriptions = list(self._subscriptions)
        return subscriptions

    def subscribe(self, subscription):
        # BUG (the PR 7 race): attach outside the lock -- a concurrent
        # execute_batch can fan out between the snapshot read and the
        # append, silently skipping or double-delivering deltas.
        catch_up = dict(self._counts)
        self._subscriptions.append(subscription)
        return catch_up

    def subscriber_count(self):
        with self._lock:
            return len(self._subscriptions)
