# ruff: noqa
"""Seeded reconstruction of a metrics-registry dedup race.

A registry that deduplicates instruments by (name, labels) must do the
get-or-create under its lock: two run_wave threads asking for the same
counter at once would otherwise both miss the lookup, each create an
instrument, and one thread's increments would land on an object nobody
ever exports.  This fixture touches the GUARDED_BY dict outside the
lock in exactly that get-or-create; squall-lint's lock-discipline rule
must flag every unlocked access.
"""

import threading


class RacyRegistry:
    GUARDED_BY = {
        "_instruments": "_lock",
        "_collectors": "_lock",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments = {}
        self._collectors = []

    def counter(self, name):
        # BUG: the lookup and the insert race -- two threads can both
        # miss, both create, and one counter's increments are lost
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = [0]
            self._instruments[name] = instrument
        return instrument

    def register_collector(self, collector):
        # BUG: unlocked append can drop a concurrent registration
        self._collectors.append(collector)

    def samples(self):
        with self._lock:
            instruments = dict(self._instruments)
            collectors = list(self._collectors)
        out = [(name, value[0]) for name, value in sorted(instruments.items())]
        for collector in collectors:
            out.extend(collector())
        return out
