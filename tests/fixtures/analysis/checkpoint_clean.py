# ruff: noqa
"""The checkpoint-complete versions: the cursor rides routing_state
(what ShuffleGrouping does) and the dropped pickle key is rebuilt in
__setstate__ (what Selection does)."""


class Grouping:
    """Stand-in for the routing base class (resolved by name)."""

    def routing_state(self):
        return None

    def restore_routing_state(self, state):
        pass


class CheckpointedShuffle(Grouping):
    def __init__(self):
        self._next = 0

    def routing_state(self):
        return self._next

    def restore_routing_state(self, state):
        self._next = state

    def targets(self, stream, values, n_tasks):
        target = self._next % n_tasks
        self._next += 1
        return [target]


class RestoringOperator:
    def __init__(self, rows):
        self.rows = rows
        self._cache = {}

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_cache"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cache = {}
