# ruff: noqa
"""The deterministic versions: sorted() restores a total order over a
set, latency metrics use the blessed time.monotonic(), replica choice
uses a seeded random.Random carried in state, and the one justified
id() use is suppressed with an explanation."""

import random
import time


class Bolt:
    """Stand-in for the topology base class (resolved by name)."""


class OrderedJoinBolt(Bolt):
    def __init__(self, seed=0):
        self._seen = set()
        self._rng = random.Random(seed)
        self._latency = 0.0

    def execute_batch(self, source, stream, rows):
        self._seen.update(rows)
        started = time.monotonic()
        emissions = [(stream, row) for row in sorted(set(rows))]
        self._latency = time.monotonic() - started
        return emissions

    def pick_replica(self, n_tasks):
        return self._rng.randrange(n_tasks)

    def debug_tag(self, row):
        # log-only tag, never routed or emitted
        return id(row) % 64  # squall-lint: disable=determinism
