"""Tests for the functional stream API."""

import random
from collections import defaultdict

import pytest

from repro.core.expressions import col
from repro.core.optimizer import Catalog
from repro.core.schema import Relation, Schema
from repro.functional import QueryContext


@pytest.fixture
def catalog():
    rng = random.Random(80)
    return Catalog({
        "users": Relation("users", Schema.of("uid", "country:str"),
                          [(i, rng.choice(["CH", "DE", "FR"])) for i in range(30)]),
        "clicks": Relation("clicks", Schema.of("uid", "amount"),
                           [(rng.randrange(30), rng.randrange(100))
                            for _ in range(80)]),
        "limits": Relation("limits", Schema.of("cap"),
                           [(20,), (50,), (80,)]),
    })


class TestStreamBasics:
    def test_unknown_table(self, catalog):
        ctx = QueryContext(catalog)
        with pytest.raises(KeyError):
            ctx.stream("nope")

    def test_filter_then_join_then_group(self, catalog):
        ctx = QueryContext(catalog, machines=4)
        result = (
            ctx.stream("users")
            .equi_join(ctx.stream("clicks"), "uid", "uid")
            .filter(col("amount").ge(50))
            .group_by("country")
            .agg_count()
            .agg_sum("amount")
            .execute()
        )
        users = {row[0]: row[1] for row in catalog.get("users").rows}
        expected = defaultdict(lambda: [0, 0])
        for uid, amount in catalog.get("clicks").rows:
            if amount >= 50:
                expected[users[uid]][0] += 1
                expected[users[uid]][1] += amount
        assert sorted(result.results) == sorted(
            (k, c, s) for k, (c, s) in expected.items()
        )

    def test_join_without_grouping_returns_rows(self, catalog):
        ctx = QueryContext(catalog, machines=2)
        result = (
            ctx.stream("users")
            .equi_join(ctx.stream("clicks"), "uid", "uid")
            .execute()
        )
        assert len(result.results) == len(catalog.get("clicks").rows)

    def test_theta_join(self, catalog):
        ctx = QueryContext(catalog, machines=2)
        result = (
            ctx.stream("clicks")
            .theta_join(ctx.stream("limits"), "amount", "<", "cap")
            .execute(scheme="random")
        )
        expected = sum(
            1
            for _uid, amount in catalog.get("clicks").rows
            for (cap,) in catalog.get("limits").rows
            if amount < cap
        )
        assert len(result.results) == expected

    def test_band_join(self, catalog):
        ctx = QueryContext(catalog, machines=2)
        result = (
            ctx.stream("clicks")
            .band_join(ctx.stream("limits"), "amount", "cap", width=5)
            .execute(scheme="random")
        )
        expected = sum(
            1
            for _uid, amount in catalog.get("clicks").rows
            for (cap,) in catalog.get("limits").rows
            if abs(amount - cap) <= 5
        )
        assert len(result.results) == expected

    def test_self_join_gets_fresh_alias(self, catalog):
        ctx = QueryContext(catalog, machines=2)
        stream = ctx.stream("users").equi_join(ctx.stream("users"), "uid", "uid")
        aliases = [s.alias for s in stream._scans]
        assert len(set(aliases)) == 2

    def test_grouped_stream_requires_aggregate(self, catalog):
        ctx = QueryContext(catalog)
        grouped = ctx.stream("users").group_by("country")
        with pytest.raises(ValueError, match="aggregate"):
            grouped.logical_plan()

    def test_filter_attribution_across_join(self, catalog):
        ctx = QueryContext(catalog, machines=2)
        joined = ctx.stream("users").equi_join(ctx.stream("clicks"), "uid", "uid")
        filtered = joined.filter(col("country").eq("CH"))
        plan = filtered.logical_plan()
        user_scan = next(s for s in plan.scans if s.table == "users")
        assert len(user_scan.predicates) == 1

    def test_cross_context_join_rejected(self, catalog):
        ctx_a = QueryContext(catalog)
        ctx_b = QueryContext(catalog)
        with pytest.raises(ValueError, match="different contexts"):
            ctx_a.stream("users").equi_join(ctx_b.stream("clicks"), "uid", "uid")

    def test_option_overrides_at_execute(self, catalog):
        ctx = QueryContext(catalog, machines=2)
        result = (
            ctx.stream("users")
            .equi_join(ctx.stream("clicks"), "uid", "uid")
            .execute(machines=4, scheme="random")
        )
        assert "~" in result.partitioner_info["join"]  # random quasi-dims
