"""Tests for the SQL interface: lexer, parser, execution."""

from collections import Counter, defaultdict

import pytest

from repro.core.optimizer import OptimizerOptions
from repro.core.schema import Schema
from repro.datasets import TPCHGenerator
from repro.sql import SqlError, parse_query, tokenize
from repro.sql.catalog import SqlSession
from repro.sql.lexer import LexError


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.kind for t in tokens[:-1]] == ["keyword"] * 3
        assert tokens[0].value == "SELECT"

    def test_identifiers_preserve_case(self):
        tokens = tokenize("LineItem")
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "LineItem"

    def test_numbers(self):
        tokens = tokenize("3 3.25")
        assert tokens[0].value == "3"
        assert tokens[1].value == "3.25"

    def test_strings(self):
        tokens = tokenize("'blogspot.com'")
        assert tokens[0].kind == "string"
        assert tokens[0].value == "blogspot.com"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_two_char_symbols(self):
        tokens = tokenize("<= >= <> !=")
        assert [t.value for t in tokens[:-1]] == ["<=", ">=", "<>", "!="]

    def test_unexpected_char(self):
        with pytest.raises(LexError):
            tokenize("a ; b")

    def test_end_token(self):
        assert tokenize("x")[-1].kind == "end"


SCHEMAS = {
    "R": Schema.of("a", "b"),
    "S": Schema.of("b", "c"),
    "W": Schema.of("FromUrl:str", "ToUrl:str"),
    "O": Schema.of("okey", "odate:date", "price:float"),
}


class TestParser:
    def test_simple_join(self):
        plan = parse_query("SELECT COUNT(*) FROM R, S WHERE R.b = S.b", SCHEMAS)
        assert [s.alias for s in plan.scans] == ["R", "S"]
        assert len(plan.conditions) == 1
        assert plan.conditions[0].is_equi

    def test_aliases_with_and_without_as(self):
        plan = parse_query(
            "SELECT COUNT(*) FROM W AS W1, W W2 WHERE W1.ToUrl = W2.FromUrl",
            SCHEMAS,
        )
        assert [s.alias for s in plan.scans] == ["W1", "W2"]

    def test_three_way_self_join_paper_query(self):
        """The 3-Reachability query from the paper's section 7.2."""
        plan = parse_query(
            """
            SELECT W1.FromUrl, COUNT(*)
            FROM W as W1, W as W2, W as W3
            WHERE W1.ToUrl = W2.FromUrl AND W2.ToUrl = W3.FromUrl
            GROUP BY W1.FromUrl
            """,
            SCHEMAS,
        )
        assert len(plan.scans) == 3
        assert len(plan.conditions) == 2
        assert plan.group_by == ["W1.FromUrl"]
        assert plan.aggregates[0].kind == "count"

    def test_literal_filter_pushed_to_scan(self):
        plan = parse_query(
            "SELECT COUNT(*) FROM R, S WHERE R.b = S.b AND R.a > 5", SCHEMAS
        )
        assert len(plan.scan_of("R").predicates) == 1
        assert len(plan.conditions) == 1

    def test_literal_on_left_side_flipped(self):
        plan = parse_query("SELECT COUNT(*) FROM R WHERE 5 < R.a", SCHEMAS)
        predicate = plan.scan_of("R").predicates[0]
        assert predicate.compile(SCHEMAS["R"])((6, 0))
        assert not predicate.compile(SCHEMAS["R"])((4, 0))

    def test_string_filter(self):
        plan = parse_query(
            "SELECT COUNT(*) FROM W WHERE W.ToUrl = 'blogspot.com'", SCHEMAS
        )
        predicate = plan.scan_of("W").predicates[0]
        assert predicate.compile(SCHEMAS["W"])(("a", "blogspot.com"))

    def test_scaled_theta_condition(self):
        plan = parse_query(
            "SELECT COUNT(*) FROM R, S WHERE 2 * R.a < S.c", SCHEMAS
        )
        cond = plan.conditions[0]
        assert cond.left_scale == 2.0
        assert cond.op == "<"

    def test_between_becomes_filter(self):
        plan = parse_query(
            "SELECT COUNT(*) FROM R WHERE R.a BETWEEN 3 AND 7", SCHEMAS
        )
        predicate = plan.scan_of("R").predicates[0]
        fn = predicate.compile(SCHEMAS["R"])
        assert fn((5, 0)) and not fn((8, 0))

    def test_date_filter_cost_class(self):
        plan = parse_query(
            "SELECT COUNT(*) FROM O WHERE O.odate < '1995-01-01'", SCHEMAS
        )
        assert plan.scan_of("O").cost_class == "date"

    def test_group_by_inferred_from_plain_columns(self):
        plan = parse_query(
            "SELECT R.a, COUNT(*) FROM R, S WHERE R.b = S.b", SCHEMAS
        )
        assert plan.group_by == ["R.a"]

    def test_ungrouped_plain_column_rejected(self):
        with pytest.raises(SqlError, match="GROUP BY"):
            parse_query(
                "SELECT R.a, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b",
                SCHEMAS,
            )

    def test_avg_and_sum(self):
        plan = parse_query(
            "SELECT SUM(O.price), AVG(O.price) FROM O", SCHEMAS
        )
        assert [a.kind for a in plan.aggregates] == ["sum", "avg"]

    def test_unqualified_unique_column_resolved(self):
        plan = parse_query("SELECT COUNT(*) FROM R, S WHERE a = c", SCHEMAS)
        assert plan.conditions[0].left == ("R", "a")
        assert plan.conditions[0].right == ("S", "c")

    def test_ambiguous_column_rejected(self):
        with pytest.raises(KeyError, match="ambiguous"):
            parse_query("SELECT COUNT(*) FROM R, S WHERE b > 1", SCHEMAS)

    def test_unknown_table(self):
        with pytest.raises(SqlError, match="unknown table"):
            parse_query("SELECT COUNT(*) FROM Nope", SCHEMAS)

    def test_duplicate_alias(self):
        with pytest.raises(SqlError, match="duplicate alias"):
            parse_query("SELECT COUNT(*) FROM R, R", SCHEMAS)

    def test_same_relation_condition_rejected(self):
        with pytest.raises(SqlError, match="one relation"):
            parse_query("SELECT COUNT(*) FROM R WHERE R.a = R.b", SCHEMAS)

    def test_trailing_garbage(self):
        with pytest.raises(SqlError, match="trailing"):
            parse_query("SELECT COUNT(*) FROM R LIMIT 5", SCHEMAS)


class TestExecution:
    @pytest.fixture(scope="class")
    def session(self):
        tables = TPCHGenerator(scale=0.3, seed=9).generate()
        session = SqlSession(options=OptimizerOptions(machines=4))
        for relation in tables.values():
            session.register(relation)
        self.tables = tables
        return session

    def test_two_way_join_aggregate(self, session):
        result = session.execute(
            """
            SELECT customer.mktsegment, COUNT(*)
            FROM customer, orders
            WHERE customer.custkey = orders.custkey
            GROUP BY customer.mktsegment
            """
        )
        customer = session.catalog.get("customer")
        orders = session.catalog.get("orders")
        by_key = {row[0]: row for row in customer.rows}
        expected = Counter(by_key[o[1]][3] for o in orders.rows)
        assert sorted(result.results) == sorted(expected.items())

    def test_tpch9_partial_shape(self, session):
        """Lineitem >< PartSupp >< Part on Partkey (TPCH9-Partial)."""
        result = session.execute(
            """
            SELECT part.brand, COUNT(*)
            FROM lineitem, partsupp, part
            WHERE lineitem.partkey = partsupp.partkey
              AND partsupp.partkey = part.partkey
            GROUP BY part.brand
            """
        )
        lineitem = session.catalog.get("lineitem")
        partsupp = session.catalog.get("partsupp")
        part = session.catalog.get("part")
        ps_per_key = Counter(row[0] for row in partsupp.rows)
        brand = {row[0]: row[2] for row in part.rows}
        expected = defaultdict(int)
        for li in lineitem.rows:
            expected[brand[li[1]]] += ps_per_key[li[1]]
        assert sorted(result.results) == sorted(expected.items())

    def test_filters_and_sum(self, session):
        result = session.execute(
            """
            SELECT SUM(orders.totalprice)
            FROM orders
            WHERE orders.totalprice > 200000
            """
        )
        orders = session.catalog.get("orders")
        expected = sum(o[3] for o in orders.rows if o[3] > 200000)
        assert result.results[0][0] == pytest.approx(expected)

    def test_explain_renders(self, session):
        text = session.explain(
            "SELECT COUNT(*) FROM customer, orders "
            "WHERE customer.custkey = orders.custkey"
        )
        assert "LogicalPlan" in text
        assert "scheme=" in text
