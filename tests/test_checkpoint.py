"""The checkpoint subsystem in isolation: store, manifests, change log.

The streaming integration (crash recovery end to end) lives in
``tests/test_streaming_processes.py``; this file pins the storage
semantics those tests rely on -- content addressing, the hash-diff
incremental skip, garbage collection down to the latest manifest, the
directory backend's reopen path, and the change log's replay contract.
"""

import pickle

import pytest

from repro.checkpoint import (
    ChangeLog,
    CheckpointError,
    CheckpointStore,
    hash_blob,
    snapshot_blob,
)


def _commit(store, epoch, tasks, coordinator=b"coord"):
    """Commit `tasks` ({key: object}) the way the coordinator does:
    hash-diff against the store's latest manifest."""
    known = store.known_digests()
    snapshots = {}
    for key, task in tasks.items():
        blob = snapshot_blob(task)
        digest = hash_blob(blob)
        snapshots[key] = (digest, None if known.get(key) == digest else blob)
    return store.commit(epoch, snapshots, coordinator)


class TestSnapshotBlob:
    def test_roundtrip(self):
        state = {"rows": [(1, 2), (3, 4)], "count": 7}
        assert pickle.loads(snapshot_blob(state)) == state

    def test_unpicklable_state_names_the_task_type(self):
        class Windowed:
            def __init__(self):
                self.factory = lambda: 0  # closures never pickle

        with pytest.raises(CheckpointError, match="Windowed"):
            snapshot_blob(Windowed())

    def test_error_advises_fallback_executors(self):
        with pytest.raises(CheckpointError, match="inline"):
            snapshot_blob(lambda: 0)


class TestCheckpointStore:
    def test_first_commit_persists_everything(self):
        store = CheckpointStore()
        result = _commit(store, 0, {("J", 0): [1, 2], ("J", 1): [3]})
        assert result.persisted == 2
        assert result.skipped == 0
        assert result.bytes_persisted > len(b"coord")
        assert store.latest().epoch == 0

    def test_unchanged_partition_ships_zero_bytes(self):
        store = CheckpointStore()
        state = {("J", 0): [1, 2], ("J", 1): [3]}
        _commit(store, 0, state)
        baseline = store.total_bytes()
        result = _commit(store, 1, state)
        assert result.persisted == 0
        assert result.skipped == 2
        # only the coordinator blob moved
        assert result.bytes_persisted == len(b"coord")
        assert store.total_bytes() == baseline

    def test_incremental_commit_persists_only_the_changed_partition(self):
        store = CheckpointStore()
        _commit(store, 0, {("J", 0): [1], ("J", 1): [2], ("A", 0): [3]})
        result = _commit(store, 1, {("J", 0): [1], ("J", 1): [2, 9],
                                    ("A", 0): [3]})
        assert result.persisted == 1
        assert result.persisted_keys == [("J", 1)]
        assert result.skipped == 2

    def test_identical_state_shares_one_blob(self):
        store = CheckpointStore()
        _commit(store, 0, {("J", 0): [7, 7], ("J", 1): [7, 7]})
        assert store.blob_count == 1

    def test_garbage_collection_drops_superseded_blobs(self):
        store = CheckpointStore()
        _commit(store, 0, {("J", 0): [1]})
        _commit(store, 1, {("J", 0): [2]})
        # epoch 0's blob is unreachable: only the latest manifest restores
        assert store.blob_count == 1
        manifest = store.latest()
        assert pickle.loads(store.blob(manifest.digests[("J", 0)])) == [2]

    def test_restore_set_returns_every_partition(self):
        store = CheckpointStore()
        _commit(store, 0, {("J", 0): [1], ("A", 0): [2]})
        blobs = store.restore_set(store.latest())
        assert {key: pickle.loads(blob) for key, blob in blobs.items()} == {
            ("J", 0): [1], ("A", 0): [2]}

    def test_digest_without_blob_and_unknown_is_refused(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError, match="without a blob"):
            store.commit(0, {("J", 0): ("0" * 64, None)}, b"")

    def test_manifest_partitions_sorted(self):
        store = CheckpointStore()
        _commit(store, 0, {("J", 1): [1], ("A", 0): [2], ("J", 0): [3]})
        assert store.latest().partitions() == [("A", 0), ("J", 0), ("J", 1)]

    def test_missing_blob_raises(self):
        with pytest.raises(CheckpointError, match="no blob"):
            CheckpointStore().blob("f" * 64)


class TestDirectoryBackend:
    def test_reopen_restores_latest_manifest(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        store = CheckpointStore(directory=directory)
        _commit(store, 0, {("J", 0): [1]}, coordinator=b"c0")
        _commit(store, 1, {("J", 0): [1, 2]}, coordinator=b"c1")

        reopened = CheckpointStore.open(directory)
        manifest = reopened.latest()
        assert manifest.epoch == 1
        assert manifest.coordinator == b"c1"
        blobs = reopened.restore_set(manifest)
        assert pickle.loads(blobs[("J", 0)]) == [1, 2]

    def test_disk_garbage_collection(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        store = CheckpointStore(directory=directory)
        _commit(store, 0, {("J", 0): [1]})
        _commit(store, 1, {("J", 0): [2]})
        objects = list((tmp_path / "ckpt" / "objects").iterdir())
        assert len(objects) == 1

    def test_open_on_empty_directory(self, tmp_path):
        store = CheckpointStore.open(str(tmp_path / "fresh"))
        assert store.latest() is None


class TestChangeLog:
    def test_replay_preserves_order_and_kinds(self):
        log = ChangeLog()
        log.record_data("R", [("R", (1, 2))])
        log.record_watermark(5.0)
        log.record_data("S", [("S", (3, 4)), ("S", (5, 6))])
        entries = list(log.replay())
        assert entries == [
            ("data", "R", [("R", (1, 2))]),
            ("wm", 5.0),
            ("data", "S", [("S", (3, 4)), ("S", (5, 6))]),
        ]
        assert log.rows == 3

    def test_truncate_empties_the_log(self):
        log = ChangeLog()
        log.record_data("R", [("R", (1,))])
        log.truncate()
        assert not log
        assert log.rows == 0
        assert list(log.replay()) == []

    def test_replay_iterates_a_copy(self):
        log = ChangeLog()
        log.record_data("R", [("R", (1,))])
        replay = log.replay()
        log.truncate()  # a checkpoint committing mid-replay
        assert len(list(replay)) == 1
