"""Tests for repro.core.predicates: conditions, JoinSpec, join-key classes."""

import pytest

from repro.core.predicates import (
    BandCondition,
    EquiCondition,
    JoinSpec,
    RelationInfo,
    ThetaCondition,
    UnionFind,
    equi_join_spec,
)
from repro.core.schema import Schema


def rst_relations():
    return [
        RelationInfo("R", Schema.of("x", "y"), 100),
        RelationInfo("S", Schema.of("y", "z"), 100),
        RelationInfo("T", Schema.of("z", "t"), 100),
    ]


class TestConditions:
    def test_equi_evaluate(self):
        cond = EquiCondition(("R", "y"), ("S", "y"))
        assert cond.evaluate(5, 5)
        assert not cond.evaluate(5, 6)
        assert cond.is_equi

    def test_equi_flip(self):
        cond = EquiCondition(("R", "y"), ("S", "y")).flipped()
        assert cond.left == ("S", "y")
        assert cond.right == ("R", "y")

    def test_theta_scaled(self):
        # 2 * R.B < S.C (the paper's example condition)
        cond = ThetaCondition(("R", "B"), "<", ("S", "C"), left_scale=2.0)
        assert cond.evaluate(3, 7)       # 6 < 7
        assert not cond.evaluate(4, 7)   # 8 < 7 fails

    def test_theta_flip_inverts_operator_and_scales(self):
        cond = ThetaCondition(("R", "a"), "<", ("S", "b"), left_scale=2.0)
        flipped = cond.flipped()
        assert flipped.op == ">"
        assert flipped.left == ("S", "b")
        assert flipped.right_scale == 2.0
        # flipped must be logically equivalent
        assert cond.evaluate(3, 7) == flipped.evaluate(7, 3)

    def test_theta_not_equal(self):
        cond = ThetaCondition(("R", "a"), "!=", ("S", "b"))
        assert cond.evaluate(1, 2)
        assert not cond.evaluate(2, 2)

    def test_theta_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            ThetaCondition(("R", "a"), "~", ("S", "b"))

    def test_band_evaluate(self):
        cond = BandCondition(("R", "a"), ("S", "b"), width=2.0)
        assert cond.evaluate(5, 7)
        assert cond.evaluate(7, 5)
        assert not cond.evaluate(5, 8)

    def test_band_flip_is_symmetric(self):
        cond = BandCondition(("R", "a"), ("S", "b"), width=1.0)
        assert cond.flipped().evaluate(3, 4) == cond.evaluate(4, 3)

    def test_band_rejects_negative_width(self):
        with pytest.raises(ValueError):
            BandCondition(("R", "a"), ("S", "b"), width=-1)

    def test_theta_is_not_equi(self):
        assert not ThetaCondition(("R", "a"), "<", ("S", "b")).is_equi


class TestRelationInfo:
    def test_skewed_validation(self):
        info = RelationInfo("R", Schema.of("a", "b"), 10, skewed={"a"})
        assert info.is_skewed("a")
        assert not info.is_skewed("b")

    def test_skewed_unknown_attr_rejected(self):
        with pytest.raises(KeyError):
            RelationInfo("R", Schema.of("a"), 10, skewed={"nope"})

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RelationInfo("R", Schema.of("a"), -1)

    def test_top_frequency_default(self):
        info = RelationInfo("R", Schema.of("a"), 10, top_freq={"a": 0.5})
        assert info.top_frequency("a") == 0.5
        assert info.top_frequency("missing") == 0.0


class TestJoinSpec:
    def test_chain_structure(self, rst_spec):
        assert rst_spec.relation_names == ["R", "S", "T"]
        assert rst_spec.is_equi_join
        assert rst_spec.is_connected()
        assert rst_spec.is_acyclic()

    def test_unknown_relation_in_condition(self):
        with pytest.raises(ValueError, match="unknown relation"):
            JoinSpec(rst_relations(), [EquiCondition(("R", "y"), ("Q", "y"))])

    def test_unknown_attribute_in_condition(self):
        with pytest.raises(KeyError):
            JoinSpec(rst_relations(), [EquiCondition(("R", "nope"), ("S", "y"))])

    def test_self_condition_rejected(self):
        with pytest.raises(ValueError, match="distinct relations"):
            JoinSpec(rst_relations(), [EquiCondition(("R", "x"), ("R", "y"))])

    def test_duplicate_relation_rejected(self):
        infos = rst_relations() + [RelationInfo("R", Schema.of("x", "y"), 5)]
        with pytest.raises(ValueError, match="duplicate"):
            JoinSpec(infos, [])

    def test_disconnected_detected(self):
        spec = JoinSpec(rst_relations(), [EquiCondition(("R", "y"), ("S", "y"))])
        assert not spec.is_connected()

    def test_cycle_detected(self):
        spec = JoinSpec(
            rst_relations(),
            [
                EquiCondition(("R", "y"), ("S", "y")),
                EquiCondition(("S", "z"), ("T", "z")),
                EquiCondition(("T", "t"), ("R", "x")),
            ],
        )
        assert not spec.is_acyclic()

    def test_conditions_between_orients_left(self, rst_spec):
        conds = rst_spec.conditions_between("S", "R")
        assert len(conds) == 1
        assert conds[0].left == ("S", "y")

    def test_conditions_involving(self, rst_spec):
        assert len(rst_spec.conditions_involving("S")) == 2
        assert len(rst_spec.conditions_involving("R")) == 1

    def test_join_attributes(self, rst_spec):
        assert rst_spec.join_attributes("S") == ["y", "z"]
        assert rst_spec.join_attributes("R") == ["y"]

    def test_equality_classes_chain(self, rst_spec):
        classes = rst_spec.equality_classes()
        assert len(classes) == 2
        as_sets = [set(c) for c in classes]
        assert {("R", "y"), ("S", "y")} in as_sets
        assert {("S", "z"), ("T", "z")} in as_sets

    def test_equality_classes_transitive(self):
        # R.k = S.k and S.k = T.k puts all three attrs in one class
        spec = JoinSpec(
            [
                RelationInfo("R", Schema.of("k"), 1),
                RelationInfo("S", Schema.of("k"), 1),
                RelationInfo("T", Schema.of("k"), 1),
            ],
            [
                EquiCondition(("R", "k"), ("S", "k")),
                EquiCondition(("S", "k"), ("T", "k")),
            ],
        )
        classes = spec.equality_classes()
        assert len(classes) == 1
        assert len(classes[0]) == 3

    def test_theta_attrs_form_singleton_classes(self):
        spec = JoinSpec(
            [
                RelationInfo("S", Schema.of("x"), 1),
                RelationInfo("T", Schema.of("y"), 1),
            ],
            [ThetaCondition(("S", "x"), "<", ("T", "y"))],
        )
        classes = spec.equality_classes()
        assert sorted(len(c) for c in classes) == [1, 1]

    def test_equi_join_spec_helper(self):
        spec = equi_join_spec(
            rst_relations(), [(("R", "y"), ("S", "y")), (("S", "z"), ("T", "z"))]
        )
        assert spec.is_equi_join
        assert len(spec.conditions) == 2


class TestUnionFind:
    def test_union_and_groups(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        uf.union("b", "c")
        uf.find("e")
        groups = {frozenset(g) for g in uf.groups()}
        assert frozenset({"a", "b", "c", "d"}) in groups
        assert frozenset({"e"}) in groups
