"""The unified observability layer, end to end.

Four layers of contract:

1. **Instruments** -- typed counter/gauge/histogram semantics, registry
   dedup, and the Prometheus text round-trip (render -> parse is the
   identity on the registry's samples).
2. **Invisibility** -- ``observe='off'`` means *no observer object at
   all*: results and metrics are byte-identical to an unobserved run.
3. **Tracing** -- the span-tree *shape* (component/task edges) of every
   trace is identical across the inline, threads and processes
   executors, batch and streaming; traces survive worker kill +
   recovery without duplicate spans.
4. **Surfaces** -- ``profile()`` reports per-operator latencies and the
   skew gauge fires on genuinely skewed keys; the serving layer's
   ``/metrics`` endpoint speaks parseable Prometheus text.
"""

import asyncio
import json
import random

import pytest

from repro.core.optimizer import Catalog
from repro.core.options import ExecutionOptions
from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Relation, Schema
from repro.engine import (
    AggComponent,
    JoinComponent,
    PhysicalPlan,
    SourceComponent,
    count,
)
from repro.engine.runner import run_plan
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observer,
    TraceBuffer,
    WorkerObs,
    make_span,
)
from repro.obs.prometheus import parse, render
from repro.serving import DeltaServer
from repro.storm.failures import FaultInjector
from repro.streaming import stream_plan
from tests.batching_plans import (
    plan_online_agg,
    plan_snapshot_agg,
    rst_relations,
    run_result_fingerprint,
)

EXECUTORS = ("inline", "threads", "processes")


def single_source_agg_plan() -> PhysicalPlan:
    """One source feeding an online aggregation: the golden plan for the
    cross-executor trace-shape matrix.  Join plans interleave probe
    batches differently per executor, so their span *counts* differ;
    this plan's routing is a pure function of the tuple (fields
    grouping on the key, global grouping into the sink), which makes
    every trace's shape executor-invariant."""
    R, _s, _t, _spec = rst_relations(seed=70, n=48)
    return PhysicalPlan(
        sources=[SourceComponent("R", R)],
        aggregation=AggComponent("agg", group_positions=[0],
                                 aggregates=[count()], parallelism=2,
                                 online=True),
    )


def skewed_join_plan() -> PhysicalPlan:
    """R >< S >< T with ~80% of both join inputs on one hot key: the
    hash scheme must pile that key's work onto one joiner task."""
    rng = random.Random(7)

    def hot_key():
        return 0 if rng.random() < 0.8 else rng.randrange(1, 6)

    R = Relation("R", Schema.of("x", "y"),
                 [(rng.randrange(30), hot_key()) for _ in range(60)])
    S = Relation("S", Schema.of("y", "z"),
                 [(hot_key(), rng.randrange(5)) for _ in range(30)])
    T = Relation("T", Schema.of("z", "t"),
                 [(rng.randrange(5), rng.randrange(9)) for _ in range(20)])
    spec = JoinSpec(
        [RelationInfo("R", R.schema, len(R)),
         RelationInfo("S", S.schema, len(S)),
         RelationInfo("T", T.schema, len(T))],
        [EquiCondition(("R", "y"), ("S", "y")),
         EquiCondition(("S", "z"), ("T", "z"))],
    )
    return PhysicalPlan(
        sources=[SourceComponent("R", R), SourceComponent("S", S),
                 SourceComponent("T", T)],
        joins=[JoinComponent("J", spec, machines=4, scheme="hash",
                             local_join="traditional")],
    )


# -- instruments --------------------------------------------------------


class TestInstruments:
    def test_counter_is_monotonic(self):
        counter = Counter("rows", {"task": "0"})
        counter.inc()
        counter.inc(4)
        assert counter.read() == 5.0
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.samples() == [("rows", {"task": "0"}, 5.0, "counter")]

    def test_gauge_set_and_high_water(self):
        gauge = Gauge("depth", {})
        gauge.set(3)
        gauge.set_max(7)
        gauge.set_max(2)  # below the mark: ignored
        assert gauge.read() == 7.0
        gauge.set(1)  # plain set always wins
        assert gauge.read() == 1.0

    def test_histogram_percentile_is_conservative_upper_bound(self):
        hist = Histogram("lat", {}, bounds=(0.001, 0.01, 0.1))
        assert hist.percentile(0.5) == 0.0  # empty
        for value in (0.0005, 0.0006, 0.05, 0.05):
            hist.observe(value)
        # the median falls in the first bucket -> its upper bound
        assert hist.percentile(0.5) == 0.001
        assert hist.percentile(0.99) == 0.1
        assert hist.mean() == pytest.approx(sum((0.0005, 0.0006, 0.05, 0.05)) / 4)
        # overflow samples report the last finite bound
        hist.observe(5.0)
        assert hist.percentile(1.0) == 0.1

    def test_histogram_merge_equals_direct_observation(self):
        left = Histogram("lat", {"task": "0"})
        right = Histogram("lat", {"task": "1"})
        direct = Histogram("lat", {})
        for index, value in enumerate((0.0002, 0.003, 0.003, 0.7, 42.0)):
            (left if index % 2 else right).observe(value)
            direct.observe(value)
        merged = Histogram("lat", {})
        merged.merge(*left.snapshot())
        merged.merge(*right.snapshot())
        assert merged.snapshot() == direct.snapshot()
        assert merged.samples() == direct.samples()

    def test_histogram_merge_rejects_foreign_layout(self):
        hist = Histogram("lat", {})
        with pytest.raises(ValueError):
            hist.merge([1, 2, 3], 0.5, 3)

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("lat", {}, bounds=(0.1, 0.1, 0.2))


class TestRegistry:
    def test_dedup_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("rows", component="J", task="0")
        again = registry.counter("rows", task="0", component="J")
        assert first is again
        first.inc(3)
        assert again.read() == 3.0
        # different labels: a different instrument
        assert registry.counter("rows", component="J", task="1") is not first

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("rows", task="0")
        with pytest.raises(TypeError):
            registry.gauge("rows", task="0")

    def test_collectors_are_idempotent_and_sampled_at_export(self):
        registry = MetricsRegistry()
        calls = []

        def collector():
            calls.append(1)
            return [("extra", {}, 1.0, "gauge")]

        registry.register_collector(collector)
        registry.register_collector(collector)  # second add: no-op
        assert calls == []  # registration alone never samples
        samples = registry.samples()
        assert calls == [1]
        assert samples.count(("extra", {}, 1.0, "gauge")) == 1

    def test_merged_histogram_filters_by_labels(self):
        registry = MetricsRegistry()
        registry.histogram("lat", component="J", task="0").observe(0.002)
        registry.histogram("lat", component="J", task="1").observe(0.2)
        registry.histogram("lat", component="agg", task="0").observe(5.0)
        merged = registry.merged_histogram("lat", component="J")
        assert merged.count == 2
        assert merged.percentile(1.0) == 0.25
        assert registry.merged_histogram("lat").count == 3
        assert registry.merged_histogram("lat", component="nope").count == 0

    def test_as_dict_flat_keys(self):
        registry = MetricsRegistry()
        registry.counter("rows", task="0").inc(2)
        registry.gauge("depth").set(4)
        flat = registry.as_dict()
        assert flat['rows{task="0"}'] == 2.0
        assert flat["depth"] == 4.0


class TestPrometheusRoundTrip:
    def test_render_parse_is_the_identity(self):
        registry = MetricsRegistry()
        registry.counter("rows_total", component="J", task="0").inc(5)
        registry.gauge("depth", queue='a"b\\c\nd').set(2.5)
        hist = registry.histogram("lat_seconds", component="J")
        for value in (0.0002, 0.003, 42.0):
            hist.observe(value)
        samples = registry.samples()
        parsed = parse(render(samples))
        expected = {(name, tuple(sorted(labels.items()))): value
                    for name, labels, value, _kind in samples}
        assert parsed == expected

    def test_one_type_line_per_family(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", task="0").observe(0.001)
        registry.histogram("lat_seconds", task="1").observe(0.002)
        text = render(registry.samples())
        assert text.count("# TYPE lat_seconds histogram") == 1
        assert 'lat_seconds_bucket{le="+Inf",task="0"} 1.0' in text
        assert "lat_seconds_count" in text and "lat_seconds_sum" in text

    def test_malformed_lines_raise(self):
        with pytest.raises(ValueError):
            parse("rows_total 1 2 3")
        with pytest.raises(ValueError):
            parse('rows_total{task="0" 1.0')


# -- trace buffer and observer ------------------------------------------


class TestTraceBuffer:
    def test_capacity_evicts_oldest(self):
        buffer = TraceBuffer(capacity=2)
        for index in range(3):
            buffer.add(make_span("t.0.1", f"c.{index}", None, "R", 0, 1, 0.0))
        assert len(buffer) == 2
        assert buffer.dropped == 1
        assert [span["span"] for span in buffer.spans()] == ["c.1", "c.2"]

    def test_edges_and_tree(self):
        buffer = TraceBuffer()
        buffer.add(make_span("t", "c.1", None, "R", 0, 4, 0.0))
        buffer.add(make_span("t", "c.2", "c.1", "J", 1, 4, 0.001))
        buffer.add(make_span("t", "c.3", "c.2", "sink", 0, 2, 0.0))
        assert buffer.edges("t") == [
            (("J", 1), ("sink", 0)), (("R", 0), ("J", 1))]
        forest = buffer.tree("t")
        assert len(forest) == 1
        assert forest[0]["span"]["component"] == "R"
        payload = json.loads(buffer.to_json("t"))
        assert [span["span"] for span in payload["spans"]] == [
            "c.1", "c.2", "c.3"]
        assert payload["dropped"] == 0


class TestObserver:
    def test_off_is_not_an_observer_level(self):
        with pytest.raises(ValueError):
            Observer("off")
        with pytest.raises(ValueError):
            WorkerObs(0, "off")

    def test_metrics_level_records_no_spans(self):
        observer = Observer("metrics")
        assert observer.root("R", 0, 10, 0.0) is None
        assert observer.span(None, "J", 0, 10, 0.0) is None
        observer.on_execute("J", 0, 10, 0.002)
        assert len(observer.traces) == 0
        hist = observer.registry.merged_histogram(
            "operator_batch_seconds", component="J")
        assert hist.count == 1

    def test_trace_ids_are_deterministic_per_source_task(self):
        observer = Observer("trace")
        first = observer.root("R", 0, 4, 0.0)
        second = observer.root("R", 0, 4, 0.0)
        other_task = observer.root("R", 1, 4, 0.0)
        assert first.trace_id == "R.0.1"
        assert second.trace_id == "R.0.2"
        assert other_task.trace_id == "R.1.1"
        # punctuation/flush emissions stay untraced
        assert observer.span(None, "J", 0, 4, 0.0) is None

    def test_worker_obs_payload_merges_in(self):
        observer = Observer("trace")
        worker = WorkerObs(3, "trace")
        root = observer.root("R", 0, 8, 0.0)
        worker.record("J", 1, 8, 0.004)
        child = worker.span(root, "J", 1, 8, 0.004)
        assert child.span_id.startswith("w3.")
        observer.merge_worker_obs(worker.drain())
        assert worker.drain() is None  # drained clean
        assert observer.traces.edges(root.trace_id) == [(("R", 0), ("J", 1))]
        hist = observer.registry.merged_histogram(
            "operator_batch_seconds", component="J")
        assert hist.count == 1

    def test_skew_gauge_skips_balanced_groupings(self):
        observer = Observer("metrics")
        observer.set_groupings({"J": ("the hash partitioner", True),
                                "sink": ("GlobalGrouping", False)})
        for task, rows in enumerate((30, 10)):
            observer.on_execute("J", task, rows, 0.001)
        observer.on_execute("sink", 0, 40, 0.001)
        skews = {labels["component"]: (labels["grouping"], value)
                 for name, labels, value, _kind in observer.registry.samples()
                 if name == "partition_skew"}
        assert "sink" not in skews  # balanced by construction
        grouping, value = skews["J"]
        assert grouping == "the hash partitioner"
        assert value == pytest.approx(30 / 20)


# -- observe='off' is invisible -----------------------------------------


class TestOffIsInvisible:
    def test_off_means_no_observer(self):
        result = run_plan(plan_online_agg())
        assert result.observer is None
        explicit = run_plan(plan_online_agg(),
                            options=ExecutionOptions(observe="off"))
        assert explicit.observer is None
        assert sorted(result.results) == sorted(explicit.results)

    def test_tracing_does_not_perturb_results_or_metrics(self):
        baseline = run_result_fingerprint(run_plan(plan_online_agg()))
        for level in ("metrics", "trace"):
            observed = run_plan(plan_online_agg(),
                                options=ExecutionOptions(observe=level))
            assert run_result_fingerprint(observed) == baseline
            assert observed.observer.level == level

    def test_streaming_off_has_no_observer_but_full_stats(self):
        query = stream_plan(plan_online_agg(),
                            options=ExecutionOptions(batch_size=16)).run()
        assert query.observer is None
        stats = query.stats()
        assert "checkpoints" in stats  # the unified stats surface
        assert stats["checkpoints"]["commits"] == 0


# -- the cross-executor trace matrix ------------------------------------


def trace_shapes(observer):
    """trace id -> sorted (parent, child) (component, task) edges."""
    buffer = observer.traces
    return {trace_id: buffer.edges(trace_id)
            for trace_id in buffer.trace_ids()}


class TestTraceMatrix:
    def test_batch_executors_agree_on_span_tree_shape(self):
        shapes = {}
        results = {}
        for executor in EXECUTORS:
            result = run_plan(
                single_source_agg_plan(),
                options=ExecutionOptions(observe="trace", executor=executor,
                                         batch_size=16))
            shapes[executor] = trace_shapes(result.observer)
            results[executor] = sorted(result.results)
        assert shapes["threads"] == shapes["inline"]
        assert shapes["processes"] == shapes["inline"]
        assert results["threads"] == results["inline"]
        assert results["processes"] == results["inline"]
        # and the shapes are non-trivial: every trace reaches the sink
        assert shapes["inline"]
        for trace_id, edges in shapes["inline"].items():
            assert trace_id.startswith("R.0.")
            children = {child[0] for _parent, child in edges}
            assert "agg" in children and "sink" in children

    def test_streaming_executors_agree_on_span_tree_shape(self):
        shapes = {}
        snapshots = {}
        for executor in EXECUTORS:
            query = stream_plan(
                single_source_agg_plan(),
                options=ExecutionOptions(observe="trace", executor=executor,
                                         batch_size=16)).run()
            shapes[executor] = trace_shapes(query.observer)
            snapshots[executor] = query.snapshot()
        assert shapes["threads"] == shapes["inline"]
        assert shapes["processes"] == shapes["inline"]
        assert snapshots["threads"] == snapshots["inline"]
        assert snapshots["processes"] == snapshots["inline"]
        assert len(shapes["inline"]) == 3  # 48 rows / batch 16
        for edges in shapes["inline"].values():
            assert (("R", 0), ("agg", 0)) in edges or \
                (("R", 0), ("agg", 1)) in edges

    def test_exported_trace_is_followable_spout_to_sink(self):
        query = stream_plan(
            single_source_agg_plan(),
            options=ExecutionOptions(observe="trace", batch_size=16)).run()
        buffer = query.observer.traces
        trace_id = buffer.trace_ids()[0]
        forest = buffer.tree(trace_id)
        assert len(forest) == 1  # exactly one root: the source hop
        root = forest[0]
        assert root["span"]["component"] == "R"
        assert root["span"]["parent"] is None

        def depth(node):
            if not node["children"]:
                return 1
            return 1 + max(depth(child) for child in node["children"])

        assert depth(root) >= 3  # spout -> agg -> sink at minimum
        payload = json.loads(buffer.to_json(trace_id))
        assert {span["trace"] for span in payload["spans"]} == {trace_id}
        assert all("duration_ms" in span for span in payload["spans"])


class TestTraceSurvivesRecovery:
    @pytest.mark.parametrize("role", [("J", 0), ("agg", 1)])
    def test_recovery_replay_records_no_duplicate_spans(self, role):
        component, task_index = role
        expected = sorted(run_plan(plan_snapshot_agg()).results)
        injector = FaultInjector()
        injector.kill_worker_of(component, task_index, after_batches=3)
        query = stream_plan(
            plan_snapshot_agg(),
            options=ExecutionOptions(executor="processes", batch_size=16,
                                     checkpoint_interval=2, observe="trace"),
            fault_injector=injector).run()
        assert query.snapshot() == expected
        assert query.stats()["checkpoints"]["recoveries"] >= 1
        spans = query.observer.traces.spans()
        assert spans
        keys = [(span["trace"], span["span"]) for span in spans]
        assert len(keys) == len(set(keys)), "replay re-recorded spans"
        # replay is invisible to tracing: every trace still has at most
        # one root hop per source batch
        roots = [span for span in spans if span["parent"] is None]
        assert len(roots) == len({span["trace"] for span in roots})


# -- the acceptance surface: profile + skew on a real skewed join -------


class TestProfileAndSkew:
    def test_skewed_streaming_join_under_processes(self):
        query = stream_plan(
            skewed_join_plan(),
            options=ExecutionOptions(executor="processes", batch_size=16,
                                     checkpoint_interval=2,
                                     observe="metrics")).run()
        samples = query.observer.registry.samples()

        # per-task routed-row counters for the joiner, multiple tasks
        routed = {labels["task"]: value
                  for name, labels, value, _kind in samples
                  if name == "routed_rows_total"
                  and labels.get("component") == "J"}
        assert len(routed) > 1
        assert sum(routed.values()) > 0

        # the hot key shows up as a nonzero skew gauge on the joiner
        skews = {labels["component"]: (labels["grouping"], value)
                 for name, labels, value, _kind in samples
                 if name == "partition_skew"}
        grouping, skew = skews["J"]
        assert "partitioner" in grouping
        assert skew > 1.0

        # per-operator batch latency histograms back the profile
        hist = query.observer.registry.merged_histogram(
            "operator_batch_seconds", component="J")
        assert hist.count > 0
        assert hist.percentile(0.95) >= hist.percentile(0.5) > 0.0

        report = query.profile()
        for column in ("operator", "p50 ms", "p95 ms", "p99 ms", "skew"):
            assert column in report
        for component in ("R", "S", "T", "J", "sink"):
            assert component in report

    def test_batch_run_profile_without_observer_still_renders(self):
        result = run_plan(plan_snapshot_agg())
        report = result.profile()
        assert "operator" in report and "agg" in report
        # latency columns exist but are unfilled at observe='off'
        assert "p50 ms" in report


# -- the /metrics endpoint ----------------------------------------------


SQL = "SELECT k, COUNT(*) FROM t GROUP BY k"


def serving_catalog():
    catalog = Catalog()
    catalog.register(Relation(
        "t", Schema.of("k", "v"), [(i % 4, i) for i in range(200)]))
    return catalog


async def http_get(server, path):
    reader, writer = await asyncio.open_connection(server.host, server.port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _sep, body = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        key, _sep2, value = line.partition(": ")
        headers[key.lower()] = value
    return status, headers, body.decode()


async def run_query(server, request):
    """One full delta exchange against the server (warms the serving
    counters the scrape endpoints report)."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    writer.write((json.dumps(request) + "\n").encode())
    await writer.drain()
    await reader.read()
    writer.close()
    await writer.wait_closed()


class TestMetricsEndpoint:
    def test_prometheus_scrape_round_trips(self):
        async def scenario():
            async with DeltaServer(serving_catalog()) as server:
                await run_query(server, {"sql": SQL})
                return await http_get(server, "/metrics")

        status, headers, body = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        assert int(headers["content-length"]) == len(body.encode())
        parsed = parse(body)  # the strict parser accepts the scrape
        admitted = {key: value for key, value in parsed.items()
                    if key[0] == "serving_admitted_total"}
        assert admitted == {
            ("serving_admitted_total", (("tenant", "default"),)): 1.0}
        assert ("serving_shed_total" in {name for name, _labels in parsed})

    def test_json_export_matches_prometheus(self):
        async def scenario():
            async with DeltaServer(serving_catalog()) as server:
                await run_query(server, {"sql": SQL})
                return (await http_get(server, "/metrics"),
                        await http_get(server, "/metrics.json"))

        (_s1, _h1, text_body), (status, headers, json_body) = \
            asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        flat = json.loads(json_body)
        assert flat['serving_admitted_total{tenant="default"}'] == 1.0
        # both exports agree sample for sample
        parsed = parse(text_body)
        assert len(flat) == len(parsed)
        for (name, labels), value in parsed.items():
            if labels:
                rendered = ",".join(f'{k}="{v}"' for k, v in labels)
                key = f"{name}{{{rendered}}}"
            else:
                key = name
            assert flat[key] == value

    def test_unknown_path_is_404_and_protocol_still_works(self):
        async def scenario():
            async with DeltaServer(serving_catalog()) as server:
                status, _headers, _body = await http_get(server, "/nope")
                await run_query(server, {"sql": SQL})
                scrape_status, _h, body = await http_get(server, "/metrics")
                return status, scrape_status, body

        status, scrape_status, body = asyncio.run(scenario())
        assert status == 404
        assert scrape_status == 200
        assert "serving_admitted_total" in body
