"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Schema


@pytest.fixture
def rst_spec():
    """The paper's running example: R(x,y) >< S(y,z) >< T(z,t)."""
    return JoinSpec(
        [
            RelationInfo("R", Schema.of("x", "y"), 1000),
            RelationInfo("S", Schema.of("y", "z"), 1000),
            RelationInfo("T", Schema.of("z", "t"), 1000),
        ],
        [
            EquiCondition(("R", "y"), ("S", "y")),
            EquiCondition(("S", "z"), ("T", "z")),
        ],
    )


def make_rst_data(seed=0, n=40, y_domain=6, z_domain=5, x_domain=20, t_domain=9):
    """Random data for the R-S-T chain join, sized to keep references fast."""
    rng = random.Random(seed)
    return {
        "R": [(rng.randrange(x_domain), rng.randrange(y_domain)) for _ in range(n)],
        "S": [(rng.randrange(y_domain), rng.randrange(z_domain)) for _ in range(n)],
        "T": [(rng.randrange(z_domain), rng.randrange(t_domain)) for _ in range(n)],
    }


def interleaved_stream(data, seed=0):
    """A shuffled (relation, row) stream from a data dict."""
    rng = random.Random(seed)
    stream = [(name, row) for name, rows in data.items() for row in rows]
    rng.shuffle(stream)
    return stream
