"""Integration tests: non-hypercube schemes and paper queries end to end.

The engine accepts any :class:`~repro.partitioning.base.Partitioner`
instance as a join component's scheme -- these tests run the 2-way
schemes (1-Bucket, EWH, Adaptive 1-Bucket) through the full topology and
re-run the paper's demo queries as library calls.
"""

import random
from collections import Counter

import pytest

from repro.core.optimizer import OptimizerOptions
from repro.core.predicates import BandCondition, EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Relation, Schema
from repro.datasets import GoogleClusterGenerator
from repro.engine import JoinComponent, PhysicalPlan, SourceComponent, run_plan
from repro.joins import reference_join
from repro.partitioning import EWHScheme, OneBucket
from repro.partitioning.adaptive import AdaptiveOneBucket
from repro.sql.catalog import SqlSession


def two_relations(seed=0, n=60):
    rng = random.Random(seed)
    left = Relation("L", Schema.of("k", "v"),
                    [(rng.randrange(20), i) for i in range(n)])
    right = Relation("R", Schema.of("k", "w"),
                     [(rng.randrange(20), i) for i in range(n)])
    spec = JoinSpec(
        [RelationInfo("L", left.schema, n), RelationInfo("R", right.schema, n)],
        [EquiCondition(("L", "k"), ("R", "k"))],
    )
    return left, right, spec


class TestTwoWaySchemesThroughEngine:
    def test_one_bucket_scheme_in_plan(self):
        left, right, spec = two_relations(seed=91)
        scheme = OneBucket("L", "R", 8, len(left), len(right), seed=1)
        plan = PhysicalPlan(
            sources=[SourceComponent("L", left), SourceComponent("R", right)],
            joins=[JoinComponent("J", spec, machines=scheme.n_machines,
                                 scheme=scheme)],
        )
        result = run_plan(plan)
        expected = reference_join(spec, {"L": left.rows, "R": right.rows})
        assert Counter(result.results) == Counter(expected)
        # 1-Bucket replicates: the join receives more than it was sent
        assert result.replication_factor("J") > 1.5

    def test_adaptive_one_bucket_in_plan(self):
        left, right, spec = two_relations(seed=92, n=100)
        scheme = AdaptiveOneBucket("L", "R", 8, seed=2, check_interval=32)
        plan = PhysicalPlan(
            sources=[SourceComponent("L", left), SourceComponent("R", right)],
            joins=[JoinComponent("J", spec, machines=8, scheme=scheme)],
        )
        result = run_plan(plan)
        expected = reference_join(spec, {"L": left.rows, "R": right.rows})
        assert Counter(result.results) == Counter(expected)

    def test_ewh_scheme_band_join_in_plan(self):
        rng = random.Random(93)
        left = Relation("L", Schema.of("k"),
                        [(rng.randrange(200),) for _ in range(80)])
        right = Relation("R", Schema.of("k"),
                         [(rng.randrange(200),) for _ in range(80)])
        cond = BandCondition(("L", "k"), ("R", "k"), width=3)
        spec = JoinSpec(
            [RelationInfo("L", left.schema, 80), RelationInfo("R", right.schema, 80)],
            [cond],
        )
        scheme = EWHScheme("L", 0, "R", 0, 6,
                           [row[0] for row in left.rows],
                           [row[0] for row in right.rows], cond)
        plan = PhysicalPlan(
            sources=[SourceComponent("L", left), SourceComponent("R", right)],
            joins=[JoinComponent("J", spec, machines=scheme.n_machines,
                                 scheme=scheme)],
        )
        result = run_plan(plan)
        expected = reference_join(spec, {"L": left.rows, "R": right.rows})
        assert Counter(result.results) == Counter(expected)


class TestPaperDemoQueries:
    @pytest.fixture(scope="class")
    def session(self):
        data = GoogleClusterGenerator(n_machines=15, n_jobs=25,
                                      n_task_events=400, seed=94).generate()
        session = SqlSession(options=OptimizerOptions(machines=4))
        for relation in data.values():
            session.register(relation)
        self.data = data
        return session

    def test_production_readiness_query(self, session):
        """Section 6: machines that often fail production-job tasks."""
        result = session.execute("""
            SELECT task_events.machineID, COUNT(*)
            FROM job_events, task_events, machine_events
            WHERE task_events.eventType = 'FAIL'
              AND job_events.production = 1
              AND job_events.jobID = task_events.jobID
              AND machine_events.machineID = task_events.machineID
            GROUP BY task_events.machineID
        """)
        jobs = session.catalog.get("job_events")
        tasks = session.catalog.get("task_events")
        production_jobs = {row[0] for row in jobs.rows if row[4] == 1}
        expected = Counter(
            row[2] for row in tasks.rows
            if row[3] == "FAIL" and row[0] in production_jobs
        )
        assert sorted(result.results) == sorted(expected.items())

    def test_taskcount_query_all_schemes_agree(self, session):
        sql = """
            SELECT machine_events.platform, COUNT(*)
            FROM job_events, task_events, machine_events
            WHERE task_events.eventType = 'FAIL'
              AND job_events.jobID = task_events.jobID
              AND machine_events.machineID = task_events.machineID
            GROUP BY machine_events.platform
        """
        outcomes = []
        for scheme in ("hash", "random", "hybrid"):
            session.options.scheme = scheme
            outcomes.append(sorted(session.execute(sql).results))
        assert outcomes[0] == outcomes[1] == outcomes[2]
