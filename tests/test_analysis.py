"""squall-lint: the analyzer analyzed.

Three layers: the fixture corpus (each rule catches a seeded
reconstruction of its historical bug, and the suppressed/clean variant
stays clean), the framework mechanics (suppressions, holds=, markers,
CLI contract), and the self-check -- the repo's own ``src/`` tree must
be clean, which is what the CI ``analysis`` job enforces.
"""

import json
import os
import subprocess
import sys

from repro.analysis import analyze_paths, analyze_source, default_checkers

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "analysis")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def findings_for(name: str):
    return analyze_paths([fixture(name)]).findings


def rules_of(findings):
    return sorted({finding.rule for finding in findings})


# -- the four seeded historical bug classes -----------------------------


class TestSeededBugs:
    def test_subscribe_race_is_caught(self):
        """The PR 7 class: guarded fields touched outside the sink lock."""
        findings = findings_for("lock_discipline_bad.py")
        assert rules_of(findings) == ["lock-discipline"]
        flagged = {(f.line, f.message.split("'")[1]) for f in findings}
        # the catch-up read and the attach append, both in subscribe()
        assert {attr for _line, attr in flagged} == {
            "RacySink._counts", "RacySink._subscriptions"}
        assert all("subscribe()" in f.message for f in findings)

    def test_fixed_subscribe_is_clean(self):
        assert findings_for("lock_discipline_clean.py") == []

    def test_registry_dedup_race_is_caught(self):
        """The obs class: instrument dedup done outside the registry lock."""
        findings = findings_for("registry_bad.py")
        assert rules_of(findings) == ["lock-discipline"]
        flagged = {f.message.split("'")[1] for f in findings}
        assert flagged == {"RacyRegistry._instruments",
                           "RacyRegistry._collectors"}
        methods = " ".join(f.message for f in findings)
        assert "counter()" in methods and "register_collector()" in methods

    def test_locked_registry_is_clean(self):
        assert findings_for("registry_clean.py") == []

    def test_ab_ba_deadlock_cycle_is_caught(self):
        findings = findings_for("lock_order_bad.py")
        assert rules_of(findings) == ["lock-order"]
        cycles = [f for f in findings if "potential deadlock" in f.message]
        assert len(cycles) == 1
        assert "Registry._lock" in cycles[0].message
        assert "Sink._lock" in cycles[0].message
        self_deadlocks = [f for f in findings
                          if "self-deadlock" in f.message]
        assert len(self_deadlocks) == 1
        assert "non-reentrant" in self_deadlocks[0].message

    def test_unpicklable_bolt_state_is_caught(self):
        """The PR 8 class: closures/locks on a pipe-shipped bolt."""
        findings = findings_for("pickle_bad.py")
        assert rules_of(findings) == ["pickle-safety"]
        whats = " ".join(f.message for f in findings)
        assert "a lambda" in whats
        assert "threading.Lock" in whats
        assert "closure" in whats
        assert "generator expression" in whats
        assert len(findings) == 4

    def test_pickle_fixes_are_clean(self):
        assert findings_for("pickle_clean.py") == []

    def test_uncheckpointed_routing_field_is_caught(self):
        findings = findings_for("checkpoint_bad.py")
        assert rules_of(findings) == ["checkpoint-completeness"]
        messages = " ".join(f.message for f in findings)
        # missing protocol entirely
        assert "ForgetfulShuffle" in messages
        # protocol present but one field uncaptured
        assert "PartialShuffle._routed" in messages
        # __getstate__ drops a key __setstate__ never restores
        assert "LossyOperator" in messages and "_cache" in messages
        assert len(findings) == 3

    def test_checkpointed_routing_is_clean(self):
        assert findings_for("checkpoint_clean.py") == []

    def test_unordered_iteration_nondeterminism_is_caught(self):
        findings = findings_for("determinism_bad.py")
        assert rules_of(findings) == ["determinism"]
        messages = " ".join(f.message for f in findings)
        assert "unordered set" in messages
        assert "wall clock" in messages
        assert "random.randrange" in messages
        assert "id()" in messages
        assert len(findings) == 5

    def test_deterministic_kernels_are_clean(self):
        """sorted(set), time.monotonic, seeded Random, suppressed id()."""
        assert findings_for("determinism_clean.py") == []


# -- framework mechanics ------------------------------------------------


SNIPPET = """
import threading

class Box:
    GUARDED_BY = {"items": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def peek(self):
        return len(self.items)__COMMENT__
"""


class TestSuppressions:
    def test_unsuppressed_snippet_fires(self):
        findings = analyze_source(SNIPPET.replace("__COMMENT__", ""))
        assert [f.rule for f in findings] == ["lock-discipline"]

    def test_same_line_suppression(self):
        comment = "  # squall-lint: disable=lock-discipline"
        assert analyze_source(SNIPPET.replace("__COMMENT__", comment)) == []

    def test_line_above_suppression(self):
        source = SNIPPET.replace("__COMMENT__", "").replace(
            "        return len(self.items)",
            "        # squall-lint: disable=lock-discipline\n"
            "        return len(self.items)")
        assert analyze_source(source) == []

    def test_file_level_suppression(self):
        source = ("# squall-lint: disable-file=lock-discipline\n"
                  + SNIPPET.replace("__COMMENT__", ""))
        assert analyze_source(source) == []

    def test_suppressing_one_rule_keeps_others(self):
        comment = "  # squall-lint: disable=determinism"
        findings = analyze_source(SNIPPET.replace("__COMMENT__", comment))
        assert [f.rule for f in findings] == ["lock-discipline"]

    def test_holds_annotation(self):
        source = SNIPPET.replace("__COMMENT__", "").replace(
            "    def peek(self):",
            "    def peek(self):  # squall-lint: holds=_lock")
        assert analyze_source(source) == []

    def test_rules_filter(self):
        findings = analyze_source(SNIPPET.replace("__COMMENT__", ""),
                                  rules=["determinism"])
        assert findings == []


class TestParseErrors:
    def test_unparsable_file_is_a_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        report = analyze_paths([str(path)])
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert not report.clean


# -- CLI contract -------------------------------------------------------


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=env,
        cwd=os.path.join(os.path.dirname(__file__), os.pardir))


class TestCli:
    def test_findings_exit_1_and_render_locations(self):
        proc = run_cli(fixture("pickle_bad.py"))
        assert proc.returncode == 1
        assert "pickle_bad.py:22:" in proc.stdout
        assert "[pickle-safety]" in proc.stdout

    def test_clean_exit_0(self):
        proc = run_cli(fixture("pickle_clean.py"))
        assert proc.returncode == 0
        assert "clean" in proc.stdout

    def test_json_format(self):
        proc = run_cli(fixture("determinism_bad.py"), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["files_checked"] == 1
        assert len(payload["findings"]) == 5
        assert all(f["rule"] == "determinism" for f in payload["findings"])
        assert "determinism=5" in payload["summary"]

    def test_unknown_rule_exit_2(self):
        proc = run_cli("--rules", "no-such-rule", fixture("pickle_bad.py"))
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for checker in default_checkers():
            assert checker.rule in proc.stdout


# -- the self-check: this repo must satisfy its own analyzer ------------


class TestRepoIsClean:
    def test_src_tree_is_clean(self):
        report = analyze_paths([SRC])
        assert report.findings == [], "\n".join(
            finding.render() for finding in report.findings)
        assert report.files_checked > 50

    def test_cli_on_src_exits_0(self):
        """Exactly what the CI analysis job runs."""
        proc = run_cli("src", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []


# -- regression tests for the true positives the analyzer surfaced ------


class TestSurfacedBugs:
    def test_stream_metrics_snapshot_reads_under_lock(self):
        """StreamMetrics.snapshot() used to read total_events/watermark
        unlocked (torn against a concurrent record_events)."""
        import ast
        import inspect

        from repro.storm.metrics import StreamMetrics

        tree = ast.parse(inspect.getsource(StreamMetrics.snapshot).lstrip())
        func = tree.body[0]
        returns_in_with = [
            node for with_node in ast.walk(func)
            if isinstance(with_node, ast.With)
            for node in ast.walk(with_node)
            if isinstance(node, ast.Return)
        ]
        assert returns_in_with, "snapshot() must read counters under _lock"

        metrics = StreamMetrics()
        metrics.record_events(3, event_time=7.0)
        metrics.record_watermark(5.0)
        snap = metrics.snapshot()
        assert snap["events"] == 3
        assert snap["watermark"] == 5.0
        assert snap["event_time_lag"] == 2.0

    def test_adaptive_partitioner_routing_state_round_trip(self):
        """AdaptiveOneBucket had no routing_state: a recovered worker
        would restart from the initial matrix shape and re-route
        replayed tuples differently than the original delivery."""
        from repro.partitioning.adaptive import AdaptiveOneBucket

        original = AdaptiveOneBucket("R", "S", machines=8, seed=42,
                                     check_interval=16)
        for i in range(200):
            original.route("R", (i,))
        for i in range(180):
            original.route("S", (i,))
        assert original.reshapes, "scenario must actually reshape"

        restored = AdaptiveOneBucket("R", "S", machines=8, seed=0,
                                     check_interval=16)
        restored.restore_routing_state(original.routing_state())
        assert (restored.rows, restored.cols) == (original.rows,
                                                  original.cols)
        assert restored.machines_for("R", 0) == original.machines_for("R", 0)
        # identical post-restore routing, including RNG-driven choices
        for i in range(50):
            row = (1000 + i,)
            assert restored.route("R", row) == original.route("R", row)
            assert restored.route("S", row) == original.route("S", row)

    def test_worker_error_is_lock_guarded(self):
        """StreamingCluster._worker_error is appended from worker threads
        and read by the pump; both sides must hold the cluster lock."""
        import ast
        import inspect

        from repro.streaming.cluster import StreamingCluster

        source = inspect.getsource(StreamingCluster)
        tree = ast.parse(source.lstrip())
        cls = tree.body[0]
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            for node in ast.walk(method):
                if (isinstance(node, ast.Attribute)
                        and node.attr == "_worker_error"
                        and method.name not in ("__init__",)):
                    # every runtime touch sits inside a `with self._lock`
                    withs = [w for w in ast.walk(method)
                             if isinstance(w, ast.With)
                             and any(node is inner
                                     for inner in ast.walk(w))]
                    assert withs, (
                        f"{method.name} touches _worker_error "
                        f"outside the lock")
        assert "_worker_error" in StreamingCluster.GUARDED_BY

    def test_delta_sink_is_marked_coordinator_owned(self):
        from repro.streaming.deltas import DeltaSink

        assert DeltaSink.PIPE_PICKLED is False
