"""Tests for the Storm substrate: topology, groupings, cluster, metrics."""

from collections import Counter

import pytest

from repro.storm import (
    AllGrouping,
    Bolt,
    CustomGrouping,
    FieldsGrouping,
    GlobalGrouping,
    KeyMappedGrouping,
    ListSpout,
    LocalCluster,
    ShuffleGrouping,
    TopologyBuilder,
    TopologyError,
)
from repro.util import round_robin_assignment


class CollectBolt(Bolt):
    """Stores everything it receives; emits nothing."""

    instances = []

    def __init__(self):
        self.rows = []
        CollectBolt.instances.append(self)

    def execute(self, source, stream, values):
        self.rows.append(values)
        return []


class EchoBolt(Bolt):
    """Re-emits each tuple on its own stream."""

    def __init__(self, stream="echo"):
        self.stream = stream

    def execute(self, source, stream, values):
        return [(self.stream, values)]


class CountBolt(Bolt):
    """Counts per key; emits totals at finish."""

    def __init__(self):
        self.counts = Counter()

    def execute(self, source, stream, values):
        self.counts[values[0]] += 1
        return []

    def finish(self):
        return [("counts", (key, n)) for key, n in sorted(self.counts.items())]


def fresh_collectors():
    CollectBolt.instances = []
    return lambda i, p: CollectBolt()


class TestGroupings:
    def test_shuffle_round_robins(self):
        grouping = ShuffleGrouping()
        targets = [grouping.targets("s", (i,), 4)[0] for i in range(8)]
        assert targets == [0, 1, 2, 3, 0, 1, 2, 3]
        assert not grouping.is_content_sensitive()

    def test_fields_grouping_consistent(self):
        grouping = FieldsGrouping([0])
        assert grouping.targets("s", (42, "x"), 8) == grouping.targets("s", (42, "y"), 8)
        assert grouping.is_content_sensitive()

    def test_fields_grouping_requires_positions(self):
        with pytest.raises(ValueError):
            FieldsGrouping([])

    def test_all_grouping_broadcasts(self):
        assert AllGrouping().targets("s", (1,), 3) == [0, 1, 2]

    def test_global_grouping(self):
        assert GlobalGrouping().targets("s", (1,), 5) == [0]

    def test_custom_grouping(self):
        grouping = CustomGrouping(lambda stream, values, n: [values[0] % n])
        assert grouping.targets("s", (7,), 4) == [3]

    def test_key_mapped_grouping_balances_small_domain(self):
        keys = [f"prio{i}" for i in range(8)]
        mapping = round_robin_assignment(keys, 4)
        grouping = KeyMappedGrouping(0, mapping)
        loads = Counter()
        for key in keys:
            loads[grouping.targets("s", (key,), 4)[0]] += 1
        assert sorted(loads.values()) == [2, 2, 2, 2]

    def test_key_mapped_grouping_falls_back_to_hash(self):
        grouping = KeyMappedGrouping(0, {"known": 1})
        target = grouping.targets("s", ("unknown",), 4)
        assert len(target) == 1 and 0 <= target[0] < 4


class TestTopologyBuilder:
    def test_duplicate_name_rejected(self):
        builder = TopologyBuilder()
        builder.set_spout("a", lambda i, p: ListSpout([]))
        with pytest.raises(TopologyError, match="duplicate"):
            builder.set_bolt("a", lambda i, p: EchoBolt())

    def test_unknown_source_rejected(self):
        builder = TopologyBuilder()
        builder.set_bolt("b", lambda i, p: EchoBolt()).shuffle_grouping("ghost")
        with pytest.raises(TopologyError, match="unknown source"):
            builder.build()

    def test_spout_cannot_receive(self):
        builder = TopologyBuilder()
        builder.set_spout("a", lambda i, p: ListSpout([]))
        builder.set_spout("c", lambda i, p: ListSpout([]))
        builder.set_bolt("b", lambda i, p: EchoBolt())
        # wire an edge into a spout manually
        from repro.storm.topology import EdgeSpec
        builder._edges.append(EdgeSpec("b", "c", ShuffleGrouping()))
        with pytest.raises(TopologyError, match="cannot receive"):
            builder.build()

    def test_cycle_detected(self):
        from repro.storm.topology import EdgeSpec
        builder = TopologyBuilder()
        builder.set_bolt("x", lambda i, p: EchoBolt())
        builder.set_bolt("y", lambda i, p: EchoBolt())
        builder._edges.append(EdgeSpec("x", "y", ShuffleGrouping()))
        builder._edges.append(EdgeSpec("y", "x", ShuffleGrouping()))
        with pytest.raises(TopologyError, match="cycle"):
            builder.build()

    def test_nonpositive_parallelism_rejected(self):
        builder = TopologyBuilder()
        with pytest.raises(TopologyError):
            builder.set_spout("a", lambda i, p: ListSpout([]), parallelism=0)

    def test_topological_order(self):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda i, p: ListSpout([]))
        builder.set_bolt("mid", lambda i, p: EchoBolt()).shuffle_grouping("src")
        builder.set_bolt("end", lambda i, p: EchoBolt()).shuffle_grouping("mid")
        order = builder.build().topological_order()
        assert order.index("src") < order.index("mid") < order.index("end")


class TestListSpout:
    def test_stripes_rows_across_tasks(self):
        rows = [(i,) for i in range(10)]
        spout0 = ListSpout(rows, "s")
        spout0.open(0, 2)
        spout1 = ListSpout(rows, "s")
        spout1.open(1, 2)
        seen = []
        for spout in (spout0, spout1):
            while True:
                emission = spout.next_tuple()
                if emission is None:
                    break
                seen.append(emission[1])
        assert sorted(seen) == rows


class TestLocalCluster:
    def test_simple_pipeline_delivers_everything(self):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda i, p: ListSpout([(i,) for i in range(20)], "src"))
        factory = fresh_collectors()
        builder.set_bolt("sink", factory).shuffle_grouping("src")
        cluster = LocalCluster(builder.build())
        metrics = cluster.run()
        rows = [row for bolt in CollectBolt.instances for row in bolt.rows]
        assert sorted(rows) == [(i,) for i in range(20)]
        assert metrics.component_input("sink") == 20
        assert metrics.component_output("src") == 20

    def test_interleaves_multiple_spouts(self):
        builder = TopologyBuilder()
        builder.set_spout("a", lambda i, p: ListSpout([("a", i) for i in range(5)], "a"))
        builder.set_spout("b", lambda i, p: ListSpout([("b", i) for i in range(5)], "b"))
        order = []

        class OrderBolt(Bolt):
            def execute(self, source, stream, values):
                order.append(values[0])
                return []

        builder.set_bolt("sink", lambda i, p: OrderBolt()).shuffle_grouping(
            "a").shuffle_grouping("b")
        LocalCluster(builder.build()).run()
        # round-robin pulling interleaves sources (online, not batch)
        assert order[:4] == ["a", "b", "a", "b"]

    def test_finish_flush_propagates_downstream(self):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda i, p: ListSpout(
            [("x",), ("x",), ("y",)], "src"))
        builder.set_bolt("count", lambda i, p: CountBolt()).shuffle_grouping("src")
        factory = fresh_collectors()
        builder.set_bolt("sink", factory).shuffle_grouping("count")
        LocalCluster(builder.build()).run()
        rows = [row for bolt in CollectBolt.instances for row in bolt.rows]
        assert sorted(rows) == [("x", 2), ("y", 1)]

    def test_stream_subscription_filters(self):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda i, p: ListSpout([(1,), (2,)], "only"))
        factory = fresh_collectors()
        builder.set_bolt("sink", factory).shuffle_grouping("src", streams=["other"])
        LocalCluster(builder.build()).run()
        assert all(not bolt.rows for bolt in CollectBolt.instances)

    def test_max_tuples_stops_early(self):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda i, p: ListSpout([(i,) for i in range(100)], "src"))
        factory = fresh_collectors()
        builder.set_bolt("sink", factory).shuffle_grouping("src")
        cluster = LocalCluster(builder.build())
        cluster.run(max_tuples=10)
        rows = [row for bolt in CollectBolt.instances for row in bolt.rows]
        assert len(rows) == 10

    def test_bad_grouping_target_caught(self):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda i, p: ListSpout([(1,)], "src"))
        builder.set_bolt("sink", lambda i, p: EchoBolt()).custom_grouping(
            "src", CustomGrouping(lambda s, v, n: [99]))
        with pytest.raises(TopologyError, match="outside"):
            LocalCluster(builder.build()).run()

    def test_factory_type_validated(self):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda i, p: object())
        with pytest.raises(TopologyError, match="did not return a Spout"):
            LocalCluster(builder.build())


class TestMetrics:
    def run_fanout(self):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda i, p: ListSpout([(i,) for i in range(12)], "src"))
        builder.set_bolt("work", lambda i, p: EchoBolt("out"), parallelism=3) \
            .custom_grouping("src", AllGrouping())
        factory = fresh_collectors()
        builder.set_bolt("sink", factory).shuffle_grouping("work")
        cluster = LocalCluster(builder.build())
        return cluster.run()

    def test_replication_factor(self):
        metrics = self.run_fanout()
        # broadcast to 3 tasks: replication factor 3
        assert metrics.replication_factor("work", ["src"]) == pytest.approx(3.0)

    def test_skew_degree_balanced_broadcast(self):
        metrics = self.run_fanout()
        assert metrics.skew_degree("work") == pytest.approx(1.0)

    def test_edge_transfers(self):
        metrics = self.run_fanout()
        assert metrics.edge_transfers[("src", "work")] == 36
        assert metrics.edge_transfers[("work", "sink")] == 36

    def test_intermediate_network_factor(self):
        metrics = self.run_fanout()
        factor = metrics.intermediate_network_factor(12, 36)
        assert factor > 1.0

    def test_summary_renders(self):
        metrics = self.run_fanout()
        assert "network tuples" in metrics.summary()
