"""Backend equivalence: inline vs threads vs processes.

Every backend must produce the identical result multiset and identical
per-component tuple totals on the golden batching plans (pinned against
``tests/golden/batching_equivalence.json``, the seed per-tuple engine's
output) and on the retraction topologies of :mod:`tests.test_retractions`.
Only the tuple interleaving may differ between backends -- the same
contract ``batch_size`` has inside the inline loop.
"""

import json
import os
from collections import Counter

import pytest

from repro.engine import run_plan
from repro.storm import LocalCluster
from tests.batching_plans import GOLDEN_PLANS
from tests.conftest import interleaved_stream, make_rst_data
from tests.test_retractions import (
    LOCAL_JOINS,
    build_rst_topology,
    faulty_script,
    rst_spec,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "batching_equivalence.json")

BACKENDS = ["inline", "threads", "processes"]
PARALLEL = ["threads", "processes"]


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def run_backend(name, executor, batch_size=16):
    kwargs = {} if executor == "inline" else {"parallelism": 4}
    return run_plan(GOLDEN_PLANS[name](), batch_size=batch_size,
                    executor=executor, **kwargs)


@pytest.mark.parametrize("executor", BACKENDS)
@pytest.mark.parametrize("name", sorted(set(GOLDEN_PLANS) - {"online_agg"}))
def test_backends_preserve_result_multiset(name, executor, golden):
    result = run_backend(name, executor)
    expected = Counter(tuple(row) for row in golden[name]["results"])
    assert Counter(result.results) == expected


@pytest.mark.parametrize("executor", BACKENDS)
def test_backends_reach_same_online_aggregation_finals(executor, golden):
    """Online aggregation emits running updates whose order depends on
    the interleaving; the final per-group values must agree."""
    result = run_backend("online_agg", executor)
    finals = {}
    for key, value in result.results:
        finals[key] = value
    expected = {}
    for key, value in (tuple(row) for row in golden["online_agg"]["results"]):
        expected[key] = value
    assert finals == expected


@pytest.mark.parametrize("executor", PARALLEL)
@pytest.mark.parametrize("name", sorted(GOLDEN_PLANS))
def test_backends_preserve_component_totals(name, executor, golden):
    """Per-component received/emitted totals, edge transfers, reads and
    selection stats are backend-invariant (only the per-task split of
    content-insensitive routing may move with worker interleaving)."""
    result = run_backend(name, executor)
    expected = golden[name]
    assert {k: sum(v) for k, v in result.metrics.received.items()} == \
           {k: sum(v) for k, v in expected["received"].items()}
    assert {k: sum(v) for k, v in result.metrics.emitted.items()} == \
           {k: sum(v) for k, v in expected["emitted"].items()}
    transfers = {f"{s}->{d}": n
                 for (s, d), n in result.metrics.edge_transfers.items()}
    assert transfers == expected["edge_transfers"]
    assert result.reads == expected["reads"]
    assert {k: list(v) for k, v in result.selections.items()} == \
           expected["selections"]


@pytest.mark.parametrize("executor", PARALLEL)
@pytest.mark.parametrize("name,joiner", [("selection_traditional", "J"),
                                         ("two_joins", "J1"),
                                         ("two_joins", "J2")])
def test_hash_routing_per_task_loads_are_backend_invariant(name, joiner,
                                                           executor, golden):
    """Hash-hypercube routing is a pure function of tuple content, so even
    the per-task received counts match across backends."""
    result = run_backend(name, executor)
    assert result.metrics.received[joiner] == golden[name]["received"][joiner]


@pytest.mark.parametrize("executor", PARALLEL)
def test_join_state_totals_match_inline(executor):
    """The joiner's state lives inside the owning worker; after the run
    the shipped-back tasks must carry the same total state and work."""
    inline = run_backend("join_only", "inline")
    parallel = run_backend("join_only", executor)
    assert sum(parallel.join_state["J"]) == sum(inline.join_state["J"])
    assert sorted(parallel.join_state["J"]) == sorted(inline.join_state["J"])
    # join *work* is an order-dependent cost counter (probes see whatever
    # state arrived first), so totals differ with the interleaving -- it
    # must still be positive and per-task, proving state lived in workers
    assert len(parallel.join_work["J"]) == len(inline.join_work["J"])
    assert all(work > 0 for work in parallel.join_work["J"])


# ---------------------------------------------------------------------------
# Retraction plans: compensation must stay exact under every backend
# ---------------------------------------------------------------------------


def run_retraction_topology(script, local_join, executor, aggregate,
                            batch_size=8):
    spec = rst_spec()
    topology, _results = build_rst_topology(spec, script, local_join,
                                            aggregate=aggregate)
    cluster = LocalCluster(topology)
    kwargs = {} if executor == "inline" else {"parallelism": 3}
    cluster.run(batch_size=batch_size, executor=executor, **kwargs)
    # read the post-run sink store from the cluster (the closure-captured
    # list is never mutated in the parent under the processes backend)
    return list(cluster.task("sink", 0).store)


@pytest.mark.parametrize("executor", BACKENDS)
@pytest.mark.parametrize("local_join", sorted(LOCAL_JOINS))
@pytest.mark.parametrize("aggregate", [False, True])
def test_compensated_failure_matches_clean_run(executor, local_join,
                                               aggregate):
    data = make_rst_data(seed=33, n=24)
    clean = run_retraction_topology(
        list(interleaved_stream(data, seed=33)), local_join, executor,
        aggregate)
    faulty = run_retraction_topology(
        faulty_script(data, seed=33), local_join, executor, aggregate)
    assert Counter(faulty) == Counter(clean)
    assert clean  # the comparison is not vacuous


@pytest.mark.parametrize("executor", PARALLEL)
@pytest.mark.parametrize("aggregate", [False, True])
def test_retraction_results_match_inline_across_backends(executor, aggregate):
    data = make_rst_data(seed=47, n=24)
    script = faulty_script(data, seed=47)
    inline = run_retraction_topology(script, "dbtoaster", "inline", aggregate)
    parallel = run_retraction_topology(script, "dbtoaster", executor, aggregate)
    assert Counter(parallel) == Counter(inline)
    assert inline
