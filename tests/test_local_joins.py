"""Tests for the local join algorithms: traditional vs DBToaster."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.predicates import (
    BandCondition,
    EquiCondition,
    JoinSpec,
    RelationInfo,
    ThetaCondition,
)
from repro.core.schema import Schema
from repro.joins import DBToasterJoin, TraditionalJoin, reference_join
from repro.joins.base import JoinSchema
from repro.joins.dbtoaster import connected_subsets

from tests.conftest import interleaved_stream, make_rst_data


def run_stream(join, stream):
    out = []
    for rel, row in stream:
        out.extend(join.insert(rel, row))
    return out


class TestJoinSchema:
    def test_positions_and_flatten(self, rst_spec):
        js = JoinSchema.from_spec(rst_spec)
        assert js.arity == 6
        assert js.position("S", "z") == 3
        flat = js.flatten({"R": (1, 2), "S": (2, 3), "T": (3, 4)})
        assert flat == (1, 2, 2, 3, 3, 4)

    def test_slice_of(self, rst_spec):
        js = JoinSchema.from_spec(rst_spec)
        assert js.slice_of((1, 2, 2, 3, 3, 4), "S") == (2, 3)

    def test_output_schema_qualifies_names(self, rst_spec):
        names = JoinSchema.from_spec(rst_spec).output_schema().names
        assert names == ("R.x", "R.y", "S.y", "S.z", "T.z", "T.t")


@pytest.mark.parametrize("join_cls", [TraditionalJoin, DBToasterJoin])
class TestAgainstReference:
    def test_chain_equi_join(self, join_cls, rst_spec):
        data = make_rst_data(seed=21)
        out = run_stream(join_cls(rst_spec), interleaved_stream(data, seed=1))
        assert Counter(out) == Counter(reference_join(rst_spec, data))

    def test_every_arrival_order_gives_same_result(self, join_cls, rst_spec):
        data = make_rst_data(seed=22, n=15)
        expected = Counter(reference_join(rst_spec, data))
        for seed in range(4):
            out = run_stream(join_cls(rst_spec), interleaved_stream(data, seed=seed))
            assert Counter(out) == expected

    def test_duplicates_respected(self, join_cls):
        spec = JoinSpec(
            [RelationInfo("A", Schema.of("k"), 4), RelationInfo("B", Schema.of("k"), 4)],
            [EquiCondition(("A", "k"), ("B", "k"))],
        )
        data = {"A": [(1,), (1,)], "B": [(1,), (1,), (1,)]}
        out = run_stream(join_cls(spec), interleaved_stream(data))
        assert len(out) == 6

    def test_theta_join(self, join_cls):
        spec = JoinSpec(
            [RelationInfo("A", Schema.of("a"), 30), RelationInfo("B", Schema.of("b"), 30)],
            [ThetaCondition(("A", "a"), "<", ("B", "b"), left_scale=2.0)],
        )
        rng = random.Random(4)
        data = {"A": [(rng.randrange(20),) for _ in range(30)],
                "B": [(rng.randrange(40),) for _ in range(30)]}
        out = run_stream(join_cls(spec), interleaved_stream(data))
        assert Counter(out) == Counter(reference_join(spec, data))

    def test_band_join(self, join_cls):
        spec = JoinSpec(
            [RelationInfo("A", Schema.of("a"), 30), RelationInfo("B", Schema.of("b"), 30)],
            [BandCondition(("A", "a"), ("B", "b"), width=2)],
        )
        rng = random.Random(5)
        data = {"A": [(rng.randrange(30),) for _ in range(30)],
                "B": [(rng.randrange(30),) for _ in range(30)]}
        out = run_stream(join_cls(spec), interleaved_stream(data))
        assert Counter(out) == Counter(reference_join(spec, data))

    def test_mixed_equi_and_theta(self, join_cls):
        """R.A = S.A AND 2*R.B < S.C -- the paper's section 3.3 example."""
        spec = JoinSpec(
            [
                RelationInfo("R", Schema.of("A", "B"), 30),
                RelationInfo("S", Schema.of("A", "C"), 30),
            ],
            [
                EquiCondition(("R", "A"), ("S", "A")),
                ThetaCondition(("R", "B"), "<", ("S", "C"), left_scale=2.0),
            ],
        )
        rng = random.Random(6)
        data = {"R": [(rng.randrange(5), rng.randrange(10)) for _ in range(30)],
                "S": [(rng.randrange(5), rng.randrange(25)) for _ in range(30)]}
        out = run_stream(join_cls(spec), interleaved_stream(data))
        assert Counter(out) == Counter(reference_join(spec, data))

    def test_star_join(self, join_cls):
        spec = JoinSpec(
            [
                RelationInfo("F", Schema.of("d1", "d2"), 30),
                RelationInfo("D1", Schema.of("d1", "v"), 10),
                RelationInfo("D2", Schema.of("d2", "w"), 10),
            ],
            [
                EquiCondition(("F", "d1"), ("D1", "d1")),
                EquiCondition(("F", "d2"), ("D2", "d2")),
            ],
        )
        rng = random.Random(7)
        data = {
            "F": [(rng.randrange(4), rng.randrange(4)) for _ in range(30)],
            "D1": [(i % 4, i) for i in range(10)],
            "D2": [(i % 4, i) for i in range(10)],
        }
        out = run_stream(join_cls(spec), interleaved_stream(data))
        assert Counter(out) == Counter(reference_join(spec, data))

    def test_four_way_chain(self, join_cls):
        spec = JoinSpec(
            [
                RelationInfo("A", Schema.of("a", "b"), 15),
                RelationInfo("B", Schema.of("b", "c"), 15),
                RelationInfo("C", Schema.of("c", "d"), 15),
                RelationInfo("D", Schema.of("d", "e"), 15),
            ],
            [
                EquiCondition(("A", "b"), ("B", "b")),
                EquiCondition(("B", "c"), ("C", "c")),
                EquiCondition(("C", "d"), ("D", "d")),
            ],
        )
        rng = random.Random(8)
        data = {
            name: [(rng.randrange(4), rng.randrange(4)) for _ in range(15)]
            for name in "ABCD"
        }
        out = run_stream(join_cls(spec), interleaved_stream(data))
        assert Counter(out) == Counter(reference_join(spec, data))

    def test_deletion_delta(self, join_cls, rst_spec):
        data = make_rst_data(seed=23, n=25)
        join = join_cls(rst_spec)
        run_stream(join, interleaved_stream(data))
        victim = data["S"][0]
        retracted = Counter(join.delete("S", victim))
        without = dict(data)
        without["S"] = data["S"][1:]
        expected = (Counter(reference_join(rst_spec, data))
                    - Counter(reference_join(rst_spec, without)))
        assert retracted == expected

    def test_insert_after_delete(self, join_cls, rst_spec):
        data = make_rst_data(seed=24, n=20)
        join = join_cls(rst_spec)
        run_stream(join, interleaved_stream(data))
        victim = data["R"][0]
        join.delete("R", victim)
        re_added = join.insert("R", victim)
        assert Counter(re_added) == Counter(join.delete("R", victim))

    def test_state_size_counts_base_tuples(self, join_cls, rst_spec):
        data = make_rst_data(seed=25, n=10)
        join = join_cls(rst_spec)
        run_stream(join, interleaved_stream(data))
        assert join.state_size() >= 30  # at least the base tuples

    def test_reset_clears_everything(self, join_cls, rst_spec):
        data = make_rst_data(seed=26, n=10)
        join = join_cls(rst_spec)
        run_stream(join, interleaved_stream(data))
        join.reset()
        assert join.state_size() == 0
        # after reset the join behaves like a fresh instance
        out = run_stream(join, interleaved_stream(data))
        assert Counter(out) == Counter(reference_join(rst_spec, data))

    def test_disconnected_cartesian(self, join_cls):
        spec = JoinSpec(
            [RelationInfo("A", Schema.of("a"), 5), RelationInfo("B", Schema.of("b"), 5)],
            [],
        )
        data = {"A": [(1,), (2,)], "B": [(10,), (20,), (30,)]}
        out = run_stream(join_cls(spec), interleaved_stream(data))
        assert len(out) == 6


class TestDBToasterSpecifics:
    def test_views_match_true_intermediate_joins(self, rst_spec):
        data = make_rst_data(seed=30)
        join = DBToasterJoin(rst_spec)
        run_stream(join, interleaved_stream(data))
        rs_spec = JoinSpec(
            [rst_spec.by_name["R"], rst_spec.by_name["S"]], [rst_spec.conditions[0]]
        )
        st_spec = JoinSpec(
            [rst_spec.by_name["S"], rst_spec.by_name["T"]], [rst_spec.conditions[1]]
        )
        assert join.view_size("R", "S") == len(reference_join(rs_spec, data))
        assert join.view_size("S", "T") == len(reference_join(st_spec, data))

    def test_no_view_for_disconnected_pair(self, rst_spec):
        join = DBToasterJoin(rst_spec)
        with pytest.raises(KeyError):
            join.view_size("R", "T")  # no condition links R and T directly

    def test_connected_subsets_of_chain(self, rst_spec):
        subsets = connected_subsets(rst_spec.relation_names, rst_spec.adjacency())
        as_sets = {frozenset(s) for s in subsets}
        assert frozenset({"R", "S"}) in as_sets
        assert frozenset({"S", "T"}) in as_sets
        assert frozenset({"R", "T"}) not in as_sets
        assert frozenset({"R", "S", "T"}) in as_sets

    def test_store_result_keeps_full_view(self, rst_spec):
        data = make_rst_data(seed=31, n=15)
        join = DBToasterJoin(rst_spec, store_result=True)
        run_stream(join, interleaved_stream(data))
        assert join.view_size("R", "S", "T") == len(reference_join(rst_spec, data))

    def test_probing_view_beats_recomputation_when_final_join_selective(self):
        """Chain join where R >< S is big but almost nothing survives the
        join with T: the traditional cascade constructs (and throws away)
        the R >< S partials for every new R tuple, while DBToaster probes
        the materialised S >< T view and touches only survivors."""
        spec = JoinSpec(
            [
                RelationInfo("R", Schema.of("y", "v"), 150),
                RelationInfo("S", Schema.of("y", "z"), 150),
                RelationInfo("T", Schema.of("z", "u"), 5),
            ],
            [
                EquiCondition(("R", "y"), ("S", "y")),
                EquiCondition(("S", "z"), ("T", "z")),
            ],
        )
        rng = random.Random(9)
        data = {
            # few y values -> R >< S is large
            "R": [(rng.randrange(3), i) for i in range(150)],
            # z spread over 100 values, T hits only 5 of them
            "S": [(rng.randrange(3), rng.randrange(100)) for _ in range(150)],
            "T": [(i, i) for i in range(5)],
        }
        stream = list(interleaved_stream(data, seed=2))
        toaster = DBToasterJoin(spec)
        traditional = TraditionalJoin(spec)
        out_a = run_stream(toaster, stream)
        out_b = run_stream(traditional, stream)
        assert Counter(out_a) == Counter(out_b)
        # the delta computation alone (excluding view bookkeeping) must be
        # far cheaper for DBToaster: compare probing work on R arrivals
        fresh_stream = [("R", row) for row in data["R"]]
        toaster2 = DBToasterJoin(spec)
        traditional2 = TraditionalJoin(spec)
        for rel, row in stream:
            if rel != "R":
                toaster2.insert(rel, row)
                traditional2.insert(rel, row)
        work_before = (toaster2.work, traditional2.work)
        for rel, row in fresh_stream:
            toaster2.insert(rel, row)
            traditional2.insert(rel, row)
        toaster_delta_work = toaster2.work - work_before[0]
        traditional_delta_work = traditional2.work - work_before[1]
        assert toaster_delta_work < traditional_delta_work / 2

    def test_negative_multiplicity_rejected(self, rst_spec):
        join = DBToasterJoin(rst_spec)
        join.insert("R", (1, 1))
        with pytest.raises(ValueError):
            join.delete("R", (9, 9))  # never inserted


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    y_domain=st.integers(min_value=1, max_value=5),
    z_domain=st.integers(min_value=1, max_value=5),
)
def test_property_dbtoaster_equals_traditional(seed, y_domain, z_domain):
    """Both local joins compute the same multiset on random chain data."""
    spec = JoinSpec(
        [
            RelationInfo("R", Schema.of("x", "y"), 20),
            RelationInfo("S", Schema.of("y", "z"), 20),
            RelationInfo("T", Schema.of("z", "t"), 20),
        ],
        [
            EquiCondition(("R", "y"), ("S", "y")),
            EquiCondition(("S", "z"), ("T", "z")),
        ],
    )
    data = make_rst_data(seed=seed, n=12, y_domain=y_domain, z_domain=z_domain)
    stream = interleaved_stream(data, seed=seed)
    out_toaster = run_stream(DBToasterJoin(spec), list(stream))
    out_traditional = run_stream(TraditionalJoin(spec), list(stream))
    assert Counter(out_toaster) == Counter(out_traditional)
    assert Counter(out_toaster) == Counter(reference_join(spec, data))
