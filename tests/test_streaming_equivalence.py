"""Streaming/batch equivalence: the continuous engine never changes the
answer.

Every golden plan (the exact plans pinned against the seed per-tuple
engine in ``tests/golden/``) is replayed through the
:class:`StreamingCluster` across batch sizes, replay rates and both
streaming executors; the final delta-sink snapshot must equal the batch
``run_plan`` result multiset byte for byte.  The retraction plan (tuples
delivered twice and compensated via ``:retract`` streams) runs through a
push-source topology the same way.
"""

import random
from collections import Counter

import pytest

from repro.engine.runner import run_plan
from repro.streaming import (
    CallbackSource,
    DeltaSink,
    StreamingCluster,
    stream_plan,
)
from tests.batching_plans import GOLDEN_PLANS


def batch_snapshot(plan, batch_size=1):
    return sorted(run_plan(plan, batch_size=batch_size).results)


class TestGoldenPlanEquivalence:
    @pytest.mark.parametrize("plan_name", sorted(GOLDEN_PLANS))
    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_inline_snapshot_equals_run_plan(self, plan_name, batch_size):
        builder = GOLDEN_PLANS[plan_name]
        expected = batch_snapshot(builder())
        query = stream_plan(builder(), batch_size=batch_size).run()
        assert query.snapshot() == expected

    @pytest.mark.parametrize("plan_name", sorted(GOLDEN_PLANS))
    @pytest.mark.parametrize("batch_size", [8, 64])
    def test_threads_snapshot_equals_run_plan(self, plan_name, batch_size):
        builder = GOLDEN_PLANS[plan_name]
        expected = batch_snapshot(builder())
        query = stream_plan(builder(), batch_size=batch_size,
                            executor="threads").run()
        assert query.snapshot() == expected

    @pytest.mark.parametrize("plan_name", sorted(GOLDEN_PLANS))
    @pytest.mark.parametrize("rate", [2_000, 50_000])
    def test_rate_limited_replay_equals_run_plan(self, plan_name, rate):
        """Throttled sources change *when* tuples arrive, never the
        answer.  (Datasets are 40 rows/relation, so even 2k rows/sec
        completes quickly.)"""
        builder = GOLDEN_PLANS[plan_name]
        expected = batch_snapshot(builder())
        query = stream_plan(builder(), batch_size=16, rate=rate).run()
        assert query.snapshot() == expected

    def test_batch_size_one_matches_per_tuple_engine_exactly(self):
        """At batch_size=1 the inline pump reproduces the finite
        engine's per-tuple routing (coalescing off), so even the
        order-sensitive online aggregation history matches."""
        builder = GOLDEN_PLANS["online_agg"]
        expected = Counter(run_plan(builder(), batch_size=1).results)
        query = stream_plan(builder(), batch_size=1).run()
        assert Counter(query.snapshot()) == expected


class TestRetractionPlanEquivalence:
    """The compensation path: a stream replaying tuples twice and then
    retracting the duplicates must converge to the clean run's results --
    now through push sources and delta subscriptions."""

    def build_streaming_topology(self, spec, local_join, machines=4,
                                 aggregate=False):
        from repro.engine.component import AggComponent, JoinComponent
        from repro.engine.operators import count, total
        from repro.engine.runner import RETRACT_SUFFIX, AggBolt, JoinBolt
        from repro.joins.dbtoaster import DBToasterJoin
        from repro.joins.traditional import TraditionalJoin
        from repro.partitioning.hash_hypercube import HashHypercube
        from repro.storm import TopologyBuilder
        from repro.storm.groupings import HypercubeGrouping
        from repro.streaming.runner import _IdleSpout

        local = {"dbtoaster": DBToasterJoin,
                 "traditional": TraditionalJoin}[local_join]
        builder = TopologyBuilder()
        partitioner = HashHypercube.build(spec, machines, seed=3)
        builder.set_spout("feed", lambda i, p: _IdleSpout())
        join = JoinComponent("J", spec, machines=machines)
        declarer = builder.set_bolt(
            "J", lambda i, p: JoinBolt(join, lambda: local(spec)),
            parallelism=machines)
        for rel_name in spec.relation_names:
            declarer.custom_grouping(
                "feed", HypercubeGrouping(partitioner, rel_name),
                streams=[rel_name, rel_name + RETRACT_SUFFIX])
        last = "J"
        if aggregate:
            agg = AggComponent("agg", group_positions=[1],
                               aggregates=[count(), total(5)])
            builder.set_bolt("agg", lambda i, p: AggBolt(agg)).global_grouping(
                "J", streams=["J", "J" + RETRACT_SUFFIX])
            last = "agg"
        builder.set_bolt("sink", lambda i, p: DeltaSink()).global_grouping(
            last, streams=[last, last + RETRACT_SUFFIX])
        return builder.build()

    @pytest.mark.parametrize("local_join", ["dbtoaster", "traditional"])
    @pytest.mark.parametrize("executor", ["inline", "threads"])
    @pytest.mark.parametrize("aggregate", [False, True])
    def test_compensated_stream_matches_clean_batch(self, local_join,
                                                    executor, aggregate):
        from tests.conftest import interleaved_stream, make_rst_data
        from tests.test_retractions import (
            build_rst_topology,
            faulty_script,
            rst_spec,
        )
        from repro.storm import LocalCluster

        spec = rst_spec()
        data = make_rst_data(seed=33, n=24)
        clean_script = list(interleaved_stream(data, seed=33))
        clean_topology, clean_results = build_rst_topology(
            spec, clean_script, local_join, aggregate=aggregate)
        LocalCluster(clean_topology).run(batch_size=8)

        topology = self.build_streaming_topology(
            spec, local_join, aggregate=aggregate)
        source = CallbackSource(iter(faulty_script(data, seed=33)))
        cluster = StreamingCluster(topology, {"feed": source},
                                   batch_size=8, executor=executor)
        subscription = cluster.subscribe()
        cluster.run()
        assert cluster.snapshot() == sorted(clean_results)
        assert clean_results  # not vacuous
        # the subscription's changelog replays to the same state
        state = Counter()
        for delta in subscription:
            state[delta.row] += delta.sign
        rows = sorted(row for row, n in state.items() for _ in range(n))
        assert rows == cluster.snapshot()


class TestSlidingWindowEquivalence:
    """Sliding-window aggregation: batch and streaming snapshots agree
    for event-time-ordered inputs, at several rates and batch sizes and
    under watermark-driven expiry."""

    def make_plan(self, n=240, parallelism=2):
        from repro.core.schema import Relation, Schema
        from repro.engine.component import (
            AggComponent,
            PhysicalPlan,
            SourceComponent,
        )
        from repro.engine.operators import count, total
        from repro.engine.windows import WindowSpec

        rng = random.Random(17)
        rows = [(ts, rng.randrange(5), rng.randrange(20))
                for ts in range(n)]
        events = Relation("events", Schema.of("ts", "key", "value"), rows)
        return PhysicalPlan(
            sources=[SourceComponent("events", events)],
            joins=[],
            aggregation=AggComponent(
                "agg", group_positions=[1], aggregates=[count(), total(2)],
                parallelism=parallelism,
                window=WindowSpec.sliding(40, ts_positions={"": 0}),
            ),
        )

    @pytest.mark.parametrize("executor", ["inline", "threads"])
    @pytest.mark.parametrize("batch_size", [1, 16, 128])
    def test_snapshot_equals_batch(self, executor, batch_size):
        expected = batch_snapshot(self.make_plan(), batch_size=batch_size)
        query = stream_plan(self.make_plan(), batch_size=batch_size,
                            executor=executor).run()
        assert query.snapshot() == expected

    @pytest.mark.parametrize("rate", [5_000, 200_000])
    def test_rate_limited_snapshot_equals_batch(self, rate):
        expected = batch_snapshot(self.make_plan())
        query = stream_plan(self.make_plan(), batch_size=16, rate=rate).run()
        assert query.snapshot() == expected
        assert query.stats()["watermark"] is not None

    def test_tumbling_window_closes_via_watermark(self):
        """Tumbling windows close incrementally under watermarks and the
        closed-window rows match the batch engine's."""
        from repro.engine.windows import WindowSpec

        def tumbling_plan():
            plan = self.make_plan()
            plan.aggregation.window = WindowSpec.tumbling(
                60, ts_positions={"": 0})
            return plan

        expected = sorted(run_plan(tumbling_plan()).results)
        query = stream_plan(tumbling_plan(), batch_size=16)
        deltas = list(query)
        assert query.snapshot() == expected
        # every tumbling delta is an insertion of a closed window row
        assert all(d.sign == 1 for d in deltas)


class TestReplaySourceStriping:
    def test_multiple_sources_interleave_like_parallel_spouts(self):
        """Several replayed relations pump round-robin, mirroring the
        finite engine's concurrent spout draining."""
        builder = GOLDEN_PLANS["two_joins"]
        expected = batch_snapshot(builder())
        query = stream_plan(builder(), batch_size=4).run()
        assert query.snapshot() == expected
        metrics = query.cluster.metrics
        # every source pumped through its task-0 counter
        for name in ("R", "S", "T"):
            assert metrics.emitted[name][0] == 40
