"""Tests for the EWH (equi-weight histogram) scheme."""

import random
from collections import Counter

import pytest

from repro.core.predicates import BandCondition, EquiCondition, ThetaCondition
from repro.partitioning.ewh import (
    EWHScheme,
    cell_can_join,
    equi_depth_boundaries,
    tile_matrix,
)
from repro.partitioning.two_way import MBucket


class TestEquiDepthBoundaries:
    def test_uniform_split(self):
        boundaries = equi_depth_boundaries(list(range(100)), 4)
        assert len(boundaries) == 3
        assert boundaries == [25, 50, 75]

    def test_skewed_sample_gets_fine_buckets_at_hotspot(self):
        sample = [5] * 90 + list(range(10))
        boundaries = equi_depth_boundaries(sample, 4)
        assert boundaries.count(5) >= 2  # most boundaries collapse at the hot key

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            equi_depth_boundaries([], 4)


class TestCellCanJoin:
    def test_band(self):
        cond = BandCondition(("R", "k"), ("S", "k"), width=2)
        assert cell_can_join(cond, (0, 10), (11, 20))   # 10 vs 11 within 2
        assert not cell_can_join(cond, (0, 10), (13, 20))

    def test_less_than(self):
        cond = ThetaCondition(("R", "k"), "<", ("S", "k"))
        assert cell_can_join(cond, (0, 10), (5, 20))
        assert not cell_can_join(cond, (10, 20), (0, 10))  # l_lo=10 !< r_hi=10

    def test_less_equal_boundary(self):
        cond = ThetaCondition(("R", "k"), "<=", ("S", "k"))
        assert cell_can_join(cond, (10, 20), (0, 10))  # 10 <= 10

    def test_equi(self):
        cond = EquiCondition(("R", "k"), ("S", "k"))
        assert cell_can_join(cond, (0, 10), (10, 20))
        assert not cell_can_join(cond, (0, 9), (10, 20))

    def test_not_equal_always_possible(self):
        cond = ThetaCondition(("R", "k"), "!=", ("S", "k"))
        assert cell_can_join(cond, (5, 5), (5, 5))


class TestTileMatrix:
    def test_covers_matrix_exactly_once(self):
        rng = random.Random(0)
        weights = [[rng.random() for _ in range(8)] for _ in range(8)]
        regions = tile_matrix(weights, 7)
        coverage = Counter()
        for region in regions:
            for i in range(region.row_lo, region.row_hi + 1):
                for j in range(region.col_lo, region.col_hi + 1):
                    coverage[(i, j)] += 1
        assert all(count == 1 for count in coverage.values())
        assert len(coverage) == 64

    def test_region_count_bounded(self):
        weights = [[1.0] * 6 for _ in range(6)]
        regions = tile_matrix(weights, 4)
        assert len(regions) <= 4

    def test_balances_weight(self):
        weights = [[1.0] * 8 for _ in range(8)]
        regions = tile_matrix(weights, 4)
        region_weights = sorted(r.weight for r in regions)
        assert region_weights[-1] <= 2 * region_weights[0]

    def test_heavy_cell_isolated(self):
        weights = [[0.0] * 4 for _ in range(4)]
        weights[2][2] = 100.0
        weights[0][0] = 1.0
        regions = tile_matrix(weights, 4)
        heavy = [r for r in regions if r.contains_cell(2, 2)]
        assert len(heavy) == 1
        # the heavy region should be small (the tiler zooms in on it)
        assert heavy[0].cells <= 4

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            tile_matrix([], 4)


class TestEWHScheme:
    def make(self, machines=8, width=5.0, left_skew=False, seed=0):
        rng = random.Random(seed)
        left = [rng.randrange(1000) for _ in range(600)]
        if left_skew:
            left = [500] * 400 + [rng.randrange(1000) for _ in range(200)]
        right = [rng.randrange(1000) for _ in range(600)]
        cond = BandCondition(("R", "k"), ("S", "k"), width=width)
        scheme = EWHScheme("R", 0, "S", 0, machines, left, right, cond)
        return scheme, cond, left, right

    def test_band_pairs_meet_at_least_once(self):
        scheme, cond, left, right = self.make()
        for l_val in left[:80]:
            l_dest = set(scheme.destinations("R", (l_val,)))
            for r_val in right[:80]:
                if cond.evaluate(l_val, r_val):
                    r_dest = set(scheme.destinations("S", (r_val,)))
                    assert l_dest & r_dest, (l_val, r_val)

    def test_pairs_meet_exactly_once(self):
        """Regions tile the matrix, so a joinable pair shares exactly one
        region -- no duplicate results."""
        scheme, cond, left, right = self.make(machines=6)
        for l_val in left[:60]:
            l_dest = set(scheme.destinations("R", (l_val,)))
            for r_val in right[:60]:
                if cond.evaluate(l_val, r_val):
                    shared = l_dest & set(scheme.destinations("S", (r_val,)))
                    assert len(shared) == 1

    def test_prunes_non_joinable_destinations(self):
        """A tuple is not sent to regions whose opposite value range cannot
        join it (the range-pruning that beats 1-Bucket for band joins)."""
        scheme, _cond, _left, _right = self.make(machines=8, width=2.0)
        destinations = scheme.destinations("R", (100,))
        assert len(destinations) < scheme.n_machines

    def test_output_balance_beats_mbucket_under_product_skew(self):
        """EWH balances estimated *output*; M-Bucket only input.  With the
        right side clustered at one value, M-Bucket pins the output to the
        stripes covering it, while EWH splits that hotspot across more
        machines."""
        rng = random.Random(7)
        left = [rng.randrange(1000) for _ in range(600)]
        right = [500 + rng.randrange(3) for _ in range(600)]
        cond = BandCondition(("R", "k"), ("S", "k"), width=3.0)
        ewh = EWHScheme("R", 0, "S", 0, 8, left, right, cond)
        mbucket = MBucket("R", 0, "S", 0, 8, left, cond)

        def output_loads(scheme):
            loads = Counter()
            for l_val in left:
                l_dest = set(scheme.destinations("R", (l_val,)))
                for r_val in (499, 500, 501, 502, 503):
                    if cond.evaluate(l_val, r_val):
                        for machine in l_dest & set(scheme.destinations("S", (r_val,))):
                            loads[machine] += 1
            return loads

        ewh_loads = output_loads(ewh)
        mb_loads = output_loads(mbucket)
        assert len(ewh_loads) > len(mb_loads)

    def test_expected_replication_reported(self):
        scheme, _c, _l, _r = self.make()
        assert scheme.expected_replication("R") >= 1
        assert scheme.expected_replication("S") >= 1

    def test_describe(self):
        scheme, _c, _l, _r = self.make()
        assert "EWH" in scheme.describe()
