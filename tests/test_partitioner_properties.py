"""Property-based tests for the core partitioning invariant.

For every hypercube scheme, every *joinable* combination of input tuples
must co-locate on exactly ONE machine (so each output tuple is produced
exactly once), regardless of relation sizes, skew markings, machine
budget, or data distribution.  Hypothesis drives all of those.
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo, ThetaCondition
from repro.core.schema import Schema
from repro.joins.base import JoinSchema, satisfies_all
from repro.partitioning import HashHypercube, HybridHypercube, RandomHypercube


def chain_spec(sizes, skew_s, skew_t):
    return JoinSpec(
        [
            RelationInfo("R", Schema.of("x", "y"), sizes[0]),
            RelationInfo("S", Schema.of("y", "z"), sizes[1],
                         skewed=frozenset({"z"}) if skew_s else frozenset()),
            RelationInfo("T", Schema.of("z", "t"), sizes[2],
                         skewed=frozenset({"z"}) if skew_t else frozenset()),
        ],
        [EquiCondition(("R", "y"), ("S", "y")),
         EquiCondition(("S", "z"), ("T", "z"))],
    )


def make_data(seed, n, y_dom, z_dom):
    rng = random.Random(seed)
    return {
        "R": [(rng.randrange(10), rng.randrange(y_dom)) for _ in range(n)],
        "S": [(rng.randrange(y_dom), rng.randrange(z_dom)) for _ in range(n)],
        "T": [(rng.randrange(z_dom), rng.randrange(10)) for _ in range(n)],
    }


def assert_exactly_once(spec, partitioner, data):
    placements = {
        name: [(row, set(partitioner.destinations(name, row))) for row in rows]
        for name, rows in data.items()
    }
    join_schema = JoinSchema.from_spec(spec)
    names = spec.relation_names
    for combo in itertools.product(*(placements[name] for name in names)):
        rows_by_relation = dict(zip(names, (c[0] for c in combo)))
        if not satisfies_all(spec, join_schema, rows_by_relation):
            continue
        shared = set.intersection(*(c[1] for c in combo))
        assert len(shared) == 1, (
            f"{type(partitioner).__name__}: joinable combination met on "
            f"{len(shared)} machines"
        )


@settings(max_examples=25, deadline=None)
@given(
    machines=st.integers(min_value=1, max_value=30),
    sizes=st.tuples(*[st.integers(min_value=1, max_value=5000)] * 3),
    skew_s=st.booleans(),
    skew_t=st.booleans(),
    seed=st.integers(min_value=0, max_value=10_000),
    y_dom=st.integers(min_value=1, max_value=6),
    z_dom=st.integers(min_value=1, max_value=6),
)
def test_hybrid_exactly_once(machines, sizes, skew_s, skew_t, seed, y_dom, z_dom):
    spec = chain_spec(sizes, skew_s, skew_t)
    data = make_data(seed, 8, y_dom, z_dom)
    partitioner = HybridHypercube.build(spec, machines, seed=seed)
    assert_exactly_once(spec, partitioner, data)


@settings(max_examples=15, deadline=None)
@given(
    machines=st.integers(min_value=1, max_value=30),
    sizes=st.tuples(*[st.integers(min_value=1, max_value=5000)] * 3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_hash_and_random_exactly_once(machines, sizes, seed):
    spec = chain_spec(sizes, False, False)
    data = make_data(seed, 8, 4, 4)
    for builder in (HashHypercube, RandomHypercube):
        partitioner = builder.build(spec, machines, seed=seed)
        assert_exactly_once(spec, partitioner, data)


@settings(max_examples=20, deadline=None)
@given(
    machines=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=10_000),
    skew_t=st.booleans(),
)
def test_theta_join_exactly_once(machines, seed, skew_t):
    """Non-equi joins route correctly through the Hybrid-Hypercube."""
    spec = JoinSpec(
        [
            RelationInfo("R", Schema.of("x"), 100),
            RelationInfo("S", Schema.of("x"), 100),
            RelationInfo("T", Schema.of("y"), 100,
                         skewed=frozenset({"y"}) if skew_t else frozenset()),
        ],
        [EquiCondition(("R", "x"), ("S", "x")),
         ThetaCondition(("S", "x"), "<", ("T", "y"))],
    )
    rng = random.Random(seed)
    data = {
        "R": [(rng.randrange(8),) for _ in range(8)],
        "S": [(rng.randrange(8),) for _ in range(8)],
        "T": [(rng.randrange(8),) for _ in range(8)],
    }
    partitioner = HybridHypercube.build(spec, machines, seed=seed)
    assert_exactly_once(spec, partitioner, data)


@settings(max_examples=25, deadline=None)
@given(
    machines=st.integers(min_value=1, max_value=64),
    sizes=st.tuples(*[st.integers(min_value=1, max_value=10_000)] * 3),
    skew_s=st.booleans(),
    skew_t=st.booleans(),
)
def test_replication_consistency(machines, sizes, skew_s, skew_t):
    """expected_replication must match the actual fan-out of destinations."""
    spec = chain_spec(sizes, skew_s, skew_t)
    for builder in (RandomHypercube, HybridHypercube):
        partitioner = builder.build(spec, machines, seed=1)
        for rel, row in (("R", (1, 2)), ("S", (2, 3)), ("T", (3, 4))):
            fanout = len(partitioner.destinations(rel, row))
            assert fanout == partitioner.expected_replication(rel)
