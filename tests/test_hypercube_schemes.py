"""Tests for Hash-, Random- and Hybrid-Hypercube scheme builders."""

from collections import Counter

import pytest

from repro.core.predicates import (
    EquiCondition,
    JoinSpec,
    RelationInfo,
    ThetaCondition,
)
from repro.core.schema import Schema
from repro.core.statistics import AttributeStats
from repro.joins.base import reference_join
from repro.partitioning import (
    HashHypercube,
    HybridHypercube,
    RandomHypercube,
    UnsupportedJoinError,
)
from repro.partitioning.hybrid_hypercube import decide_skew_marking, hybrid_dimensions
from repro.partitioning.hypercube import HASH, RANDOM

from tests.conftest import make_rst_data


def rst_spec_skewed(top=0.5):
    skewed = {"z"} if top > 0 else frozenset()
    return JoinSpec(
        [
            RelationInfo("R", Schema.of("x", "y"), 1000),
            RelationInfo("S", Schema.of("y", "z"), 1000, skewed=skewed,
                         top_freq={"z": top}),
            RelationInfo("T", Schema.of("z", "t"), 1000, skewed=skewed,
                         top_freq={"z": top}),
        ],
        [
            EquiCondition(("R", "y"), ("S", "y")),
            EquiCondition(("S", "z"), ("T", "z")),
        ],
    )


def theta_spec(skew_on=None):
    """R.x = S.x AND S.x < T.y (paper section 4's non-equi example)."""
    skew_on = skew_on or {}
    return JoinSpec(
        [
            RelationInfo("R", Schema.of("x"), 100,
                         skewed=skew_on.get("R", frozenset())),
            RelationInfo("S", Schema.of("x"), 100,
                         skewed=skew_on.get("S", frozenset())),
            RelationInfo("T", Schema.of("y"), 100,
                         skewed=skew_on.get("T", frozenset())),
        ],
        [
            EquiCondition(("R", "x"), ("S", "x")),
            ThetaCondition(("S", "x"), "<", ("T", "y")),
        ],
    )


class TestHashHypercube:
    def test_uniform_example_dims(self, rst_spec):
        config = HashHypercube.plan(rst_spec, 64)
        assert config.sizes == (8, 8)
        assert all(d.kind == HASH for d in config.dims)

    def test_rejects_theta_joins(self):
        with pytest.raises(UnsupportedJoinError):
            HashHypercube.plan(theta_spec(), 16)

    def test_skew_degrades_load(self):
        """The skew-adjusted estimate (analysis mode) shows the overload the
        scheme's own uniform-data optimiser cannot see."""
        uniform = HashHypercube.plan(rst_spec_skewed(0.0), 64, skew_aware=True)
        skewed = HashHypercube.plan(rst_spec_skewed(0.5), 64, skew_aware=True)
        assert skewed.max_load > 2 * uniform.max_load
        # the blind (paper-faithful) planner keeps its uniform estimate
        blind = HashHypercube.plan(rst_spec_skewed(0.5), 64)
        assert blind.max_load == uniform.max_load

    def test_same_key_join_is_one_dimensional(self):
        """Multiple relations joining on the same key (TPCH9-Partial):
        the Hash-Hypercube yields one dimension and no replication."""
        spec = JoinSpec(
            [
                RelationInfo("L", Schema.of("pk"), 600),
                RelationInfo("PS", Schema.of("pk"), 80),
                RelationInfo("P", Schema.of("pk"), 20),
            ],
            [
                EquiCondition(("L", "pk"), ("PS", "pk")),
                EquiCondition(("PS", "pk"), ("P", "pk")),
            ],
        )
        config = HashHypercube.plan(spec, 8)
        assert len(config.dims) == 1
        assert config.sizes == (8,)
        partitioner = HashHypercube.build(spec, 8)
        for rel in ("L", "PS", "P"):
            assert partitioner.expected_replication(rel) == 1

    def test_star_schema_partitions_fact_replicates_dims(self):
        """Star schema special case (paper 3.2): with one dominant join key
        the scheme yields p x 1 partitioning -- the fact table is
        partitioned on it and the tiny dimension table is broadcast."""
        spec = JoinSpec(
            [
                RelationInfo("fact", Schema.of("d1", "d2"), 10_000),
                RelationInfo("dim1", Schema.of("d1"), 40),
                RelationInfo("dim2", Schema.of("d2"), 1),
            ],
            [
                EquiCondition(("fact", "d1"), ("dim1", "d1")),
                EquiCondition(("fact", "d2"), ("dim2", "d2")),
            ],
        )
        config = HashHypercube.plan(spec, 16)
        assert sorted(config.sizes) == [1, 16]  # p x 1 partitioning
        partitioner = HashHypercube.build(spec, 16)
        assert partitioner.expected_replication("fact") == 1
        assert partitioner.expected_replication("dim2") == 16  # broadcast

    def test_routing_correctness(self, rst_spec):
        data = make_rst_data(seed=11)
        partitioner = HashHypercube.build(rst_spec, 16, seed=1)
        _assert_exactly_once(rst_spec, partitioner, data)

    def test_content_sensitive(self, rst_spec):
        assert HashHypercube.build(rst_spec, 16).is_content_sensitive()


class TestRandomHypercube:
    def test_one_dim_per_relation(self, rst_spec):
        config = RandomHypercube.plan(rst_spec, 64)
        assert len(config.dims) == 3
        assert all(d.kind == RANDOM for d in config.dims)
        assert config.sizes == (4, 4, 4)
        assert config.max_load == pytest.approx(750)

    def test_supports_theta(self):
        config = RandomHypercube.plan(theta_spec(), 27)
        assert len(config.dims) == 3

    def test_skew_does_not_change_plan(self):
        plain = RandomHypercube.plan(rst_spec_skewed(0.0), 64)
        skewed = RandomHypercube.plan(rst_spec_skewed(0.9), 64)
        assert plain.sizes == skewed.sizes
        assert plain.max_load == skewed.max_load

    def test_routing_correctness(self, rst_spec):
        data = make_rst_data(seed=12)
        partitioner = RandomHypercube.build(rst_spec, 8, seed=2)
        _assert_exactly_once(rst_spec, partitioner, data)

    def test_content_insensitive(self, rst_spec):
        assert not RandomHypercube.build(rst_spec, 8).is_content_sensitive()


class TestHybridHypercube:
    def test_renaming_splits_skewed_attrs(self):
        dims = hybrid_dimensions(rst_spec_skewed())
        kinds = Counter(d.kind for d in dims)
        assert kinds[RANDOM] == 2  # z' and z''
        assert kinds[HASH] == 1  # y
        random_names = sorted(d.name for d in dims if d.kind == RANDOM)
        assert random_names == ["z'", "z''"]

    def test_paper_configuration_9x7(self):
        """Paper 3.1: Hybrid picks y=9 x z''=7 (63 machines), load ~0.36H,
        total communication 23H."""
        config = HybridHypercube.plan(rst_spec_skewed(), 64)
        assert config.size_of("y") == 9
        assert config.size_of("z''") == 7
        assert config.size_of("z'") == 1
        assert config.max_load == pytest.approx(0.3651 * 1000, rel=0.001)
        assert config.total_communication == pytest.approx(23_000)

    def test_subsumes_hash_when_no_skew(self, rst_spec):
        hybrid = HybridHypercube.plan(rst_spec, 64)
        hashed = HashHypercube.plan(rst_spec, 64)
        assert hybrid.max_load == hashed.max_load
        assert sorted(hybrid.sizes) == sorted(hashed.sizes)

    def test_subsumes_random_when_all_skewed(self):
        spec = JoinSpec(
            [
                RelationInfo("R", Schema.of("y"), 1000, skewed={"y"}),
                RelationInfo("S", Schema.of("y"), 1000, skewed={"y"}),
            ],
            [EquiCondition(("R", "y"), ("S", "y"))],
        )
        hybrid = HybridHypercube.plan(spec, 16)
        random_plan = RandomHypercube.plan(spec, 16)
        assert hybrid.max_load == random_plan.max_load
        assert all(d.kind == RANDOM for d in hybrid.dims)

    def test_beats_both_on_mixed_skew(self):
        spec = rst_spec_skewed()
        hybrid = HybridHypercube.plan(spec, 64).max_load
        # skew_aware=True: the *actual* load the blind hash grid suffers
        hashed = HashHypercube.plan(spec, 64, skew_aware=True).max_load
        randomised = RandomHypercube.plan(spec, 64).max_load
        assert hybrid < hashed
        assert hybrid < randomised
        # paper: ~2.08x better than Random, ~1.9x better than Hash
        assert randomised / hybrid == pytest.approx(2.05, rel=0.05)

    def test_dimension_saving_four_relations(self):
        """Paper section 4: R(x,y)><S(y,z)><T(z,t)><U(t) with skew only on z
        -> 2 dimensions (y and t) instead of Random's 4."""
        spec = JoinSpec(
            [
                RelationInfo("R", Schema.of("x", "y"), 100),
                RelationInfo("S", Schema.of("y", "z"), 100, skewed={"z"}),
                RelationInfo("T", Schema.of("z", "t"), 100, skewed={"z"}),
                RelationInfo("U", Schema.of("t"), 100),
            ],
            [
                EquiCondition(("R", "y"), ("S", "y")),
                EquiCondition(("S", "z"), ("T", "z")),
                EquiCondition(("T", "t"), ("U", "t")),
            ],
        )
        config = HybridHypercube.plan(spec, 64)
        effective = [d for d, size in zip(config.dims, config.sizes) if size > 1]
        assert {d.name for d in effective} <= {"y", "t", "z'", "z''"}
        hash_dims = [d for d in effective if d.kind == HASH]
        assert {d.name for d in hash_dims} == {"y", "t"}
        # replicated hash joins R><S and T><U plus 1-Bucket in the middle:
        # both renamed z dims should collapse to size 1
        assert config.size_of("z'") == 1
        assert config.size_of("z''") == 1

    def test_nonequi_dims_are_hash_when_skew_free(self):
        """R.x = S.x AND S.x < T.y with no skew: dims (x, y), both hash."""
        config = HybridHypercube.plan(theta_spec(), 16)
        assert {d.name for d in config.dims} == {"x", "y"}
        assert all(d.kind == HASH for d in config.dims)

    def test_nonequi_skewed_side_goes_random(self):
        config = HybridHypercube.plan(theta_spec({"T": frozenset({"y"})}), 16)
        kinds = {d.name: d.kind for d in config.dims}
        assert kinds["x"] == HASH
        assert kinds["y'"] == RANDOM

    def test_nonequi_skew_on_shared_attr_renames(self):
        """Skew on S.x: rename it so R.x and S.x get separate dimensions."""
        config = HybridHypercube.plan(theta_spec({"S": frozenset({"x"})}), 16)
        names = {d.name for d in config.dims}
        assert names == {"x", "x'", "y"}

    def test_routing_correctness_mixed(self):
        spec = rst_spec_skewed()
        data = make_rst_data(seed=13)
        partitioner = HybridHypercube.build(spec, 12, seed=3)
        _assert_exactly_once(spec, partitioner, data)

    def test_routing_correctness_theta(self):
        spec = theta_spec({"T": frozenset({"y"})})
        import random
        rng = random.Random(5)
        data = {
            "R": [(rng.randrange(10),) for _ in range(30)],
            "S": [(rng.randrange(10),) for _ in range(30)],
            "T": [(rng.randrange(10),) for _ in range(30)],
        }
        partitioner = HybridHypercube.build(spec, 8, seed=5)
        _assert_exactly_once(spec, partitioner, data)


class TestDecideSkewMarking:
    def test_marks_heavy_attribute(self):
        spec = rst_spec_skewed(0.0)
        # strip the skew marking; give the chooser measured stats instead
        plain = JoinSpec(
            [RelationInfo(i.name, i.schema, i.size) for i in spec.relations],
            spec.conditions,
        )
        stats = {
            ("S", "z"): AttributeStats(1000, 100, "hot", 0.5),
            ("T", "z"): AttributeStats(1000, 100, "hot", 0.5),
        }
        marked = decide_skew_marking(plain, 64, stats)
        # at least one side of the hot key must go random; the final plan
        # must reach the Hybrid's 0.365H load, far below Hash's ~0.7H
        assert (marked.by_name["S"].is_skewed("z")
                or marked.by_name["T"].is_skewed("z"))
        load = HybridHypercube.plan(marked, 64).max_load
        assert load == pytest.approx(0.3651 * 1000, rel=0.001)

    def test_keeps_uniform_attribute_hash(self):
        spec = rst_spec_skewed(0.0)
        plain = JoinSpec(
            [RelationInfo(i.name, i.schema, i.size) for i in spec.relations],
            spec.conditions,
        )
        stats = {
            ("R", "y"): AttributeStats(1000, 500, "k", 0.002),
            ("S", "y"): AttributeStats(1000, 500, "k", 0.002),
        }
        marked = decide_skew_marking(plain, 64, stats)
        assert not marked.by_name["R"].is_skewed("y")
        assert not marked.by_name["S"].is_skewed("y")


def _assert_exactly_once(spec, partitioner, data):
    """Every reference-join output must be produced at exactly one machine."""
    placements = {name: [] for name in data}
    for name, rows in data.items():
        for row in rows:
            placements[name].append((row, set(partitioner.destinations(name, row))))
    expected = Counter(reference_join(spec, data))
    produced = Counter()
    # count, for each joinable combination, on how many machines all parts meet
    names = list(spec.relation_names)
    from repro.joins.base import JoinSchema, satisfies_all
    join_schema = JoinSchema.from_spec(spec)
    import itertools
    pools = [placements[name] for name in names]
    for combo in itertools.product(*pools):
        rows_by_relation = dict(zip(names, (c[0] for c in combo)))
        if not satisfies_all(spec, join_schema, rows_by_relation):
            continue
        shared = set.intersection(*(c[1] for c in combo))
        assert len(shared) == 1, (
            f"joinable combination met on {len(shared)} machines: {rows_by_relation}"
        )
        produced[join_schema.flatten(rows_by_relation)] += 1
    assert produced == expected
