"""Test suite for the Squall reproduction."""
