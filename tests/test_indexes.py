"""Tests for on-the-fly join indexes: HashIndex, SortedIndex, Treap."""

import random

from hypothesis import given, settings, strategies as st

from repro.joins.indexes import HashIndex, SortedIndex, Treap


class TestHashIndex:
    def test_insert_lookup(self):
        index = HashIndex()
        index.insert(5, ("a",))
        index.insert(5, ("b",))
        assert sorted(dict(index.lookup(5))) == [("a",), ("b",)]

    def test_multiplicity(self):
        index = HashIndex()
        index.insert(1, ("x",))
        index.insert(1, ("x",))
        assert dict(index.lookup(1)) == {("x",): 2}
        assert len(index) == 2

    def test_delete_one_occurrence(self):
        index = HashIndex()
        index.insert(1, ("x",))
        index.insert(1, ("x",))
        assert index.delete(1, ("x",))
        assert dict(index.lookup(1)) == {("x",): 1}

    def test_delete_missing_returns_false(self):
        index = HashIndex()
        assert not index.delete(9, ("nope",))

    def test_delete_cleans_empty_buckets(self):
        index = HashIndex()
        index.insert(1, ("x",))
        index.delete(1, ("x",))
        assert list(index.lookup(1)) == []
        assert list(index.keys()) == []


class TestSortedIndex:
    def test_range_inclusive(self):
        index = SortedIndex()
        for key in (1, 3, 5, 7):
            index.insert(key, (key,))
        assert list(index.range(3, 5)) == [(3,), (5,)]

    def test_range_exclusive_bounds(self):
        index = SortedIndex()
        for key in (1, 3, 5, 7):
            index.insert(key, (key,))
        assert list(index.range(3, 7, include_low=False, include_high=False)) == [(5,)]

    def test_open_ranges(self):
        index = SortedIndex()
        for key in (1, 3, 5):
            index.insert(key, (key,))
        assert list(index.range(None, 3)) == [(1,), (3,)]
        assert list(index.range(3, None)) == [(3,), (5,)]
        assert len(list(index.range(None, None))) == 3

    def test_duplicate_keys(self):
        index = SortedIndex()
        index.insert(2, ("a",))
        index.insert(2, ("b",))
        assert len(list(index.range(2, 2))) == 2

    def test_delete(self):
        index = SortedIndex()
        index.insert(2, ("a",))
        index.insert(2, ("b",))
        assert index.delete(2, ("a",))
        assert list(index.range(2, 2)) == [("b",)]
        assert not index.delete(2, ("zzz",))


class TestTreap:
    def test_matches_sorted_index_on_random_ops(self):
        rng = random.Random(42)
        treap = Treap(seed=1)
        sorted_index = SortedIndex()
        live = []
        for _ in range(600):
            action = rng.random()
            if action < 0.7 or not live:
                key = rng.randrange(60)
                row = (key, rng.randrange(5))
                treap.insert(key, row)
                sorted_index.insert(key, row)
                live.append((key, row))
            else:
                key, row = live.pop(rng.randrange(len(live)))
                assert treap.delete(key, row) == sorted_index.delete(key, row)
        for low, high in [(5, 20), (None, 30), (25, None), (None, None), (10, 10)]:
            assert sorted(treap.range(low, high)) == sorted(sorted_index.range(low, high))

    def test_balanced_depth(self):
        treap = Treap(seed=0)
        for i in range(2048):  # sorted insertion: worst case for plain BSTs
            treap.insert(i, (i,))

        def depth(node):
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        assert depth(treap._root) < 60  # ~4x log2(2048), very safe bound

    def test_delete_missing(self):
        treap = Treap()
        treap.insert(1, ("a",))
        assert not treap.delete(1, ("b",))
        assert not treap.delete(9, ("a",))

    def test_multiplicity(self):
        treap = Treap()
        treap.insert(1, ("a",))
        treap.insert(1, ("a",))
        assert list(treap.range(1, 1)) == [("a",), ("a",)]
        treap.delete(1, ("a",))
        assert list(treap.range(1, 1)) == [("a",)]

    @settings(max_examples=50, deadline=None)
    @given(
        keys=st.lists(st.integers(min_value=-50, max_value=50), max_size=80),
        low=st.integers(min_value=-60, max_value=60),
        span=st.integers(min_value=0, max_value=40),
    )
    def test_range_property(self, keys, low, span):
        high = low + span
        treap = Treap(seed=3)
        for key in keys:
            treap.insert(key, (key,))
        expected = sorted((k,) for k in keys if low <= k <= high)
        assert sorted(treap.range(low, high)) == expected
