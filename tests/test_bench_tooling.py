"""The bench tooling: regression gate script and repro.bench helpers."""

import json

import pytest

from benchmarks.check_regression import main as check_main
from repro.bench import multiway_join_plan, speedup_table


def write_bench_json(path, minima):
    payload = {
        "benchmarks": [
            {"fullname": name, "stats": {"min": value}}
            for name, value in minima.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


class TestCheckRegression:
    def test_identical_runs_pass(self, tmp_path, capsys):
        base = write_bench_json(tmp_path / "base.json", {"a": 1.0, "b": 0.5})
        assert check_main([base, base]) == 0
        assert "OK" in capsys.readouterr().out

    def test_small_slowdown_within_threshold_passes(self, tmp_path):
        base = write_bench_json(tmp_path / "base.json", {"a": 1.0})
        cur = write_bench_json(tmp_path / "cur.json", {"a": 1.15})
        assert check_main([base, cur, "--threshold", "0.20"]) == 0

    def test_large_slowdown_fails(self, tmp_path, capsys):
        base = write_bench_json(tmp_path / "base.json", {"a": 1.0, "b": 1.0})
        cur = write_bench_json(tmp_path / "cur.json", {"a": 1.5, "b": 1.0})
        assert check_main([base, cur, "--threshold", "0.20"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_new_and_retired_benchmarks_never_fail(self, tmp_path):
        base = write_bench_json(tmp_path / "base.json", {"old": 1.0})
        cur = write_bench_json(tmp_path / "cur.json", {"new": 9.9})
        assert check_main([base, cur]) == 0

    def test_committed_baseline_matches_current_bench_names(self):
        """The seeded baseline must gate the benchmarks that exist."""
        with open("benchmarks/BENCH_baseline.json") as handle:
            names = {b["fullname"] for b in json.load(handle)["benchmarks"]}
        assert any("test_throughput_multiway_join[inline]" in n for n in names)
        assert any("test_throughput_multiway_join[processes]" in n
                   for n in names)


class TestBenchHelpers:
    def test_multiway_join_plan_is_deterministic(self):
        a = multiway_join_plan(n_rows=50)
        b = multiway_join_plan(n_rows=50)
        assert a.sources[0].relation.rows == b.sources[0].relation.rows
        assert a.joins[0].machines == b.joins[0].machines

    def test_speedup_table_reports_relative_throughput(self):
        table = speedup_table([("inline", 2.0), ("processes x4", 0.5)],
                              n_rows=100, machines=8)
        assert "inline" in table and "processes x4" in table
        assert "4.00x" in table  # 2.0s / 0.5s

    def test_plan_runs_under_every_backend(self):
        from collections import Counter

        from repro.engine import run_plan

        plan = multiway_join_plan(n_rows=120)
        expected = None
        for executor in ("inline", "threads", "processes"):
            result = run_plan(plan, batch_size=32, executor=executor,
                              parallelism=2)
            counted = Counter(result.results)
            if expected is None:
                expected = counted
            assert counted == expected
        assert expected


@pytest.mark.parametrize("args", [["--help"]])
def test_bench_cli_help_exits_cleanly(args, capsys):
    from repro.bench import main

    with pytest.raises(SystemExit) as exc:
        main(args)
    assert exc.value.code == 0
    assert "speedup" in capsys.readouterr().out
