"""ColumnBatch unit + property tests: adapters, hashing, pickling.

The columnar representation is only allowed into the dataplane because
it is *indistinguishable* from the row representation at the edges:
``from_rows``/``to_rows`` round-trip losslessly over arbitrary schemas
(property-tested here, including empty batches and sign=-1 retraction
batches), the vectorized hashes are bit-for-bit ``stable_hash``, and a
batch survives the processes executor's pickle pipes without its
derived row cache.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.columnar import (
    COLUMNAR_MIN_BATCH,
    ColumnBatch,
    ColumnEmissions,
    bucket_by_task,
    hash_column,
    hash_key_columns,
    make_column,
)
from repro.util import stable_hash


class TestMakeColumn:
    def test_all_int_becomes_int64_vector(self):
        col = make_column([1, -2, 3])
        assert isinstance(col, np.ndarray) and col.dtype == np.int64

    def test_all_float_becomes_float64_vector(self):
        col = make_column([1.5, -2.0])
        assert isinstance(col, np.ndarray) and col.dtype == np.float64

    def test_mixed_int_float_stays_list(self):
        # coercing 1 -> 1.0 would change the value's type on round-trip
        assert make_column([1, 2.0]) == [1, 2.0]

    def test_strings_none_and_bools_stay_lists(self):
        assert make_column(["a", "b"]) == ["a", "b"]
        assert make_column([1, None]) == [1, None]
        assert make_column([True, False]) == [True, False]

    def test_int_beyond_64_bits_stays_list(self):
        values = [2**70, 1]
        assert make_column(values) == values


# column generators: uniformly-typed and deliberately mixed
_INTS = st.integers(min_value=-(2**62), max_value=2**62)
_FLOATS = st.floats(allow_nan=False, allow_infinity=False, width=64)
_STRINGS = st.text(max_size=8)
_VALUES = st.one_of(_INTS, _FLOATS, _STRINGS, st.none())


@st.composite
def row_batches(draw):
    arity = draw(st.integers(min_value=0, max_value=4))
    n = draw(st.integers(min_value=0, max_value=12))
    columns = []
    for _ in range(arity):
        kind = draw(st.sampled_from(["int", "float", "str", "mixed"]))
        strategy = {"int": _INTS, "float": _FLOATS, "str": _STRINGS,
                    "mixed": _VALUES}[kind]
        columns.append([draw(strategy) for _ in range(n)])
    rows = [tuple(col[i] for col in columns) for i in range(n)]
    sign = draw(st.sampled_from([1, -1]))
    return rows, sign


class TestColumnBatchRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(row_batches())
    def test_from_rows_to_rows_round_trip(self, batch):
        rows, sign = batch
        built = ColumnBatch.from_rows(list(rows), sign)
        assert built.to_rows() == rows
        assert [type(v) for row in built.to_rows() for v in row] == \
            [type(v) for row in rows for v in row]
        rebuilt = ColumnBatch.from_rows(built.to_rows(), sign)
        assert rebuilt == built
        assert rebuilt.sign == sign and len(rebuilt) == len(rows)

    def test_empty_batch(self):
        empty = ColumnBatch.from_rows([])
        assert len(empty) == 0 and not empty
        assert empty.to_rows() == []
        assert ColumnBatch.from_rows(empty.to_rows()) == empty

    def test_retraction_batch_keeps_sign(self):
        batch = ColumnBatch.from_rows([(1, "a")], sign=-1)
        assert batch.sign == -1
        assert ColumnBatch.from_rows(batch.to_rows(), sign=-1) == batch

    def test_sequence_compatibility(self):
        rows = [(1, "x"), (2, "y")]
        batch = ColumnBatch.from_rows(rows)
        assert list(batch) == rows
        assert batch[0] == (1, "x")
        assert len(batch) == 2 and bool(batch)

    def test_take_and_take_columns(self):
        batch = ColumnBatch.from_rows([(1, "a", 1.0), (2, "b", 2.0),
                                       (3, "c", 3.0)])
        assert batch.take([2, 0]).to_rows() == [(3, "c", 3.0), (1, "a", 1.0)]
        assert batch.take_columns([1]).to_rows() == [("a",), ("b",), ("c",)]


class TestColumnBatchPickle:
    @settings(max_examples=50, deadline=None)
    @given(row_batches())
    def test_pickle_round_trip(self, batch):
        rows, sign = batch
        built = ColumnBatch.from_rows(list(rows), sign)
        built.to_rows()  # populate the derived cache
        clone = pickle.loads(pickle.dumps(built))
        assert clone == built
        assert clone.to_rows() == rows

    def test_pickle_drops_row_cache(self):
        batch = ColumnBatch.from_rows([(1, 2), (3, 4)])
        batch.to_rows()
        assert batch.__getstate__() == (batch.columns, 2, 1)
        clone = pickle.loads(pickle.dumps(batch))
        assert clone._rows is None  # rebuilt on demand, not shipped


class TestHashParity:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(_INTS, max_size=20))
    def test_int64_column_matches_stable_hash(self, values):
        batch = ColumnBatch.from_rows([(v,) for v in values])
        hashes = hash_column(batch.columns[0]) if values else []
        assert [int(h) for h in hashes] == [stable_hash(v) for v in values]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_VALUES, min_size=1, max_size=20))
    def test_fallback_column_matches_stable_hash(self, values):
        hashes = hash_column(list(values))
        assert [int(h) for h in hashes] == [stable_hash(v) for v in values]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(_INTS, _STRINGS, _FLOATS), min_size=1,
                    max_size=15))
    def test_key_columns_match_tuple_stable_hash(self, rows):
        batch = ColumnBatch.from_rows(list(rows))
        for positions in ([0], [1, 2], [0, 1, 2]):
            hashes = hash_key_columns(batch, positions)
            expected = [stable_hash(tuple(row[p] for p in positions))
                        for row in rows]
            assert [int(h) for h in hashes] == expected


class TestColumnEmissions:
    def test_duck_types_emission_list(self):
        batch = ColumnBatch.from_rows([(1,), (2,)])
        emissions = ColumnEmissions("S", batch)
        assert len(emissions) == 2 and bool(emissions)
        assert list(emissions) == [("S", (1,)), ("S", (2,))]
        assert not ColumnEmissions("S", ColumnBatch.from_rows([]))


class TestBucketByTask:
    def test_single_task_returns_shared_batch(self):
        batch = ColumnBatch.from_rows([(1,), (2,)])
        buckets = bucket_by_task(batch, np.array([3, 3]))
        assert buckets == [(3, batch)]
        assert buckets[0][1] is batch

    def test_buckets_in_first_assignment_order(self):
        batch = ColumnBatch.from_rows([(10,), (11,), (12,), (13,)])
        buckets = bucket_by_task(batch, np.array([2, 0, 2, 1]))
        assert [(task, b.to_rows()) for task, b in buckets] == [
            (2, [(10,), (12,)]), (0, [(11,)]), (1, [(13,)])]


def test_default_threshold_is_pinned():
    # groupings/tests/docs all quote 64; changing it is a docs change too
    assert COLUMNAR_MIN_BATCH == 64
