"""The fault-tolerant streaming ``processes`` executor, end to end.

Three contracts, in increasing order of hostility:

1. **Equivalence** -- with no faults, every golden plan converges to the
   batch engine's snapshot across batch sizes.
2. **Incrementality** -- the hash-diff checkpoint persists only changed
   partitions: unchanged operator state costs zero checkpoint bytes,
   asserted through the coordinator's checkpoint-bytes metrics.
3. **Exactly-once recovery** -- SIGKILLing resident workers mid-stream
   (every worker role, multiple kill points, batch sizes 1 and 64,
   driven deterministically by :class:`repro.storm.failures.\
FaultInjector`) still converges to a snapshot byte-identical to batch.
"""

import os
import pickle
import signal

import pytest

from repro.checkpoint import CheckpointStore
from repro.core.options import ExecutionOptions
from repro.engine.runner import run_plan
from repro.storm.executor import ExecutorError
from repro.storm.failures import FaultInjector, WorkerKill
from repro.streaming import DeltaSink, stream_plan
from tests.batching_plans import (
    GOLDEN_PLANS,
    plan_join_only,
    plan_snapshot_agg,
    plan_two_joins,
)


def batch_snapshot(plan):
    return sorted(run_plan(plan).results)


def processes_options(**overrides):
    defaults = dict(executor="processes", batch_size=16,
                    checkpoint_interval=2)
    defaults.update(overrides)
    return ExecutionOptions(**defaults)


class TestEquivalence:
    @pytest.mark.parametrize("plan_name", sorted(GOLDEN_PLANS))
    @pytest.mark.parametrize("batch_size", [1, 64])
    def test_snapshot_equals_run_plan(self, plan_name, batch_size):
        builder = GOLDEN_PLANS[plan_name]
        expected = batch_snapshot(builder())
        query = stream_plan(
            builder(), options=processes_options(batch_size=batch_size)
        ).run()
        assert query.snapshot() == expected

    def test_parallelism_caps_worker_count(self):
        query = stream_plan(plan_join_only(),
                            options=processes_options(parallelism=2)).run()
        assert query.snapshot() == batch_snapshot(plan_join_only())

    def test_parallelism_rejected_for_other_executors(self):
        with pytest.raises(ExecutorError, match="parallelism"):
            stream_plan(plan_join_only(),
                        options=ExecutionOptions(executor="threads",
                                                 parallelism=2))

    def test_epoch_zero_plus_preflush_always_commit(self):
        query = stream_plan(plan_join_only(),
                            options=processes_options(
                                checkpoint_interval=10_000)).run()
        stats = query.checkpoint_stats()
        # even with an unreachable interval: the startup restore point
        # and the pre-flush barrier
        assert stats["commits"] == 2
        assert stats["recoveries"] == 0


class TestIncrementalCheckpointing:
    def test_unchanged_partitions_ship_zero_bytes(self):
        # hash-scheme routing (plan_two_joins) leaves partitions idle in
        # most rounds; committing every round, the hash-diff must prove
        # them unchanged (zero new bytes) instead of re-persisting all
        query = stream_plan(plan_two_joins(),
                            options=processes_options(
                                batch_size=1, checkpoint_interval=1)).run()
        stats = query.checkpoint_stats()
        assert stats["commits"] > 5
        # on average at least one partition per commit skips entirely
        assert stats["partitions_skipped"] >= stats["commits"]
        # and total checkpoint traffic undercuts "persist everything
        # every epoch" (commits x final-snapshot-size, the naive floor)
        full_snapshot = query.cluster._store.total_bytes()
        assert stats["bytes_persisted"] < \
            0.85 * stats["commits"] * full_snapshot

    def test_hash_diff_ships_fewer_partitions_than_full_snapshots(
            self, monkeypatch):
        def run():
            query = stream_plan(plan_two_joins(),
                                options=processes_options(
                                    batch_size=1,
                                    checkpoint_interval=1)).run()
            return query.checkpoint_stats()

        incremental = run()
        # blind the diff: every partition now ships on every commit
        monkeypatch.setattr(CheckpointStore, "known_digests",
                            lambda self: {})
        full = run()
        assert incremental["commits"] == full["commits"]
        assert full["partitions_skipped"] == 0
        assert incremental["partitions_persisted"] < \
            0.7 * full["partitions_persisted"]

    def test_checkpoint_dir_persists_restorable_manifest(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        stream_plan(plan_join_only(),
                    options=processes_options(),
                    checkpoint_dir=directory).run()
        store = CheckpointStore.open(directory)
        manifest = store.latest()
        assert manifest is not None
        blobs = store.restore_set(manifest)
        assert blobs  # every worker partition has a restorable blob
        coordinator = pickle.loads(manifest.coordinator)
        assert "sinks" in coordinator and "router" in coordinator


#: worker roles of the golden agg plan: the join owner and the agg owner
KILL_ROLES = [("J", 0), ("J", 3), ("agg", 0), ("agg", 2)]


class TestKillRecovery:
    """The acceptance matrix: SIGKILL workers mid-stream, snapshot must
    stay byte-identical to batch -- per role, kill point and batch size."""

    @pytest.mark.parametrize("component,task_index", KILL_ROLES)
    @pytest.mark.parametrize("batch_size", [1, 64])
    @pytest.mark.parametrize("after_batches", [1, 5])
    def test_killed_worker_recovers_to_batch_snapshot(
            self, component, task_index, batch_size, after_batches):
        expected = batch_snapshot(plan_snapshot_agg())
        injector = FaultInjector().kill_worker_of(
            component, task_index, after_batches=after_batches)
        query = stream_plan(
            plan_snapshot_agg(),
            options=processes_options(batch_size=batch_size),
            fault_injector=injector,
        ).run()
        stats = query.checkpoint_stats()
        assert stats["recoveries"] >= 1
        assert query.snapshot() == expected

    def test_two_workers_killed_in_one_run(self):
        expected = batch_snapshot(plan_snapshot_agg())
        injector = FaultInjector([
            WorkerKill("J", 0, after_batches=2),
            WorkerKill("agg", 0, after_batches=4),
        ])
        query = stream_plan(plan_snapshot_agg(),
                            options=processes_options(batch_size=8),
                            fault_injector=injector).run()
        assert query.checkpoint_stats()["workers_respawned"] >= 2
        assert query.snapshot() == expected

    def test_kill_near_end_of_stream_recovers_through_flush(self):
        # 120 source rows at batch_size=64 -> the armed worker dies deep
        # into the run, close to (or inside) the final flush waves
        expected = batch_snapshot(plan_snapshot_agg())
        injector = FaultInjector().kill_worker_of("agg", 1, after_batches=6)
        query = stream_plan(plan_snapshot_agg(),
                            options=processes_options(batch_size=64),
                            fault_injector=injector).run()
        assert query.checkpoint_stats()["recoveries"] >= 1
        assert query.snapshot() == expected

    def test_external_sigkill_mid_iteration(self):
        """The demo scenario: a worker killed from outside (no armed
        fault), detected by the liveness sweep / a dead pipe."""
        expected = batch_snapshot(plan_join_only())
        query = stream_plan(plan_join_only(),
                            options=processes_options(batch_size=4))
        killed = False
        deltas = 0
        for _delta in query:
            deltas += 1
            if not killed and deltas >= 5:
                pids = query.worker_pids()
                os.kill(pids[0], signal.SIGKILL)
                killed = True
        assert killed
        assert query.checkpoint_stats()["recoveries"] >= 1
        assert query.snapshot() == expected

    def test_subscription_converges_through_recovery(self):
        """A subscriber folding the delta stream (compensations included)
        lands on the same multiset as the snapshot."""
        from collections import Counter

        expected = batch_snapshot(plan_snapshot_agg())
        injector = FaultInjector().kill_worker_of("J", 0, after_batches=3)
        query = stream_plan(plan_snapshot_agg(),
                            options=processes_options(batch_size=8),
                            fault_injector=injector)
        folded: Counter = Counter()
        for delta in query:
            folded[delta.row] += delta.sign
        rows = sorted(row for row, count in folded.items()
                      for _ in range(count))
        assert rows == expected
        assert query.snapshot() == expected

    def test_gives_up_after_max_recoveries(self):
        injector = FaultInjector([
            WorkerKill("J", 0, after_batches=n) for n in range(1, 9)
        ])
        with pytest.raises(ExecutorError, match="giving up"):
            stream_plan(plan_join_only(),
                        options=processes_options(batch_size=1,
                                                  checkpoint_interval=1),
                        fault_injector=injector).run()


class TestWindowedStreams:
    """Sliding-window operator state pickles like any other task state,
    so windowed plans checkpoint, crash and recover on ``processes``."""

    def test_windowed_snapshot_equals_batch(self):
        from tests.test_streaming import make_events, sliding_agg_plan

        expected = batch_snapshot(sliding_agg_plan(make_events(120)))
        query = stream_plan(sliding_agg_plan(make_events(120)),
                            options=processes_options(batch_size=16)).run()
        assert query.snapshot() == expected

    def test_windowed_worker_recovers_to_batch_snapshot(self):
        from tests.test_streaming import make_events, sliding_agg_plan

        expected = batch_snapshot(sliding_agg_plan(make_events(120)))
        injector = FaultInjector().kill_worker_of("agg", 0,
                                                  after_batches=3)
        query = stream_plan(sliding_agg_plan(make_events(120)),
                            options=processes_options(batch_size=8),
                            fault_injector=injector).run()
        assert query.checkpoint_stats()["recoveries"] >= 1
        assert query.snapshot() == expected


class TestRefusals:
    def test_unpicklable_operator_state_is_refused_with_advice(self):
        """A bolt whose state cannot pickle has no checkpointable
        snapshot; the epoch-0 commit fails fast, naming the task type
        and the executors that can still run the plan."""
        from repro.storm import TopologyBuilder
        from repro.storm.topology import Bolt
        from repro.streaming import CallbackSource, StreamingCluster
        from repro.streaming.runner import _IdleSpout

        class ClosureBolt(Bolt):
            def __init__(self):
                self.transform = lambda row: row  # closures never pickle

            def execute_batch(self, source, stream, rows):
                return [("out", self.transform(row)) for row in rows]

        builder = TopologyBuilder()
        builder.set_spout("feed", lambda i, p: _IdleSpout())
        builder.set_bolt("op", lambda i, p: ClosureBolt()).global_grouping(
            "feed", streams=["R"])
        builder.set_bolt("sink", lambda i, p: DeltaSink()).global_grouping(
            "op", streams=["out"])
        source = CallbackSource(iter([("R", (1,)), ("R", (2,))]))
        cluster = StreamingCluster(builder.build(), {"feed": source},
                                   batch_size=4, executor="processes")
        with pytest.raises(ExecutorError, match="ClosureBolt") as err:
            cluster.run()
        assert "inline" in str(err.value)  # the advice names a fallback

    def test_kill_spec_on_coordinator_owned_task_is_rejected(self):
        injector = FaultInjector().kill_worker_of("sink", 0)
        with pytest.raises(ValueError, match="coordinator"):
            stream_plan(plan_join_only(), options=processes_options(),
                        fault_injector=injector).run()


class TestDeltaSinkRollback:
    def test_rollback_restores_counts_and_compensates_subscribers(self):
        sink = DeltaSink()
        sink.execute_batch("J", "J", [(1,), (1,), (2,)])
        checkpoint = sink.counts_snapshot()
        subscription = sink.subscribe()
        sink.execute_batch("J", "J", [(3,)])
        sink.execute_batch("J", "J" + ":retract", [(2,)])

        published = sink.rollback(checkpoint)
        assert published == 2  # -（3,) and +(2,)
        assert sink.counts_snapshot() == checkpoint

        from collections import Counter
        folded: Counter = Counter()
        while (delta := subscription.pop()) is not None:
            folded[delta.row] += delta.sign
        assert {row: c for row, c in folded.items() if c} == checkpoint

    def test_rollback_to_empty_state(self):
        sink = DeltaSink()
        sink.execute_batch("J", "J", [(1,), (2,)])
        sink.rollback({})
        assert sink.snapshot() == []
