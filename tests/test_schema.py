"""Tests for repro.core.schema."""

import pytest

from repro.core.schema import (
    Field,
    Relation,
    Schema,
    qualified,
    split_qualified,
)


class TestField:
    def test_default_type_is_int(self):
        assert Field("a").type == "int"

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            Field("a", "blob")


class TestSchema:
    def test_of_parses_typed_specs(self):
        schema = Schema.of("a", "b:str", "c:float", "d:date")
        assert schema.names == ("a", "b", "c", "d")
        assert schema.field("b").type == "str"
        assert schema.field("d").type == "date"

    def test_index_of(self):
        schema = Schema.of("x", "y")
        assert schema.index_of("y") == 1

    def test_index_of_unknown_raises_keyerror_with_context(self):
        schema = Schema.of("x")
        with pytest.raises(KeyError, match="'y'"):
            schema.index_of("y")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema.of("a", "a")

    def test_project_preserves_order_and_type(self):
        schema = Schema.of("a", "b:str", "c")
        projected = schema.project(["c", "b"])
        assert projected.names == ("c", "b")
        assert projected.field("b").type == "str"

    def test_concat_with_prefixes(self):
        left = Schema.of("a")
        right = Schema.of("a")
        combined = left.concat(right, "L.", "R.")
        assert combined.names == ("L.a", "R.a")

    def test_concat_without_prefix_conflicts(self):
        with pytest.raises(ValueError):
            Schema.of("a").concat(Schema.of("a"))

    def test_row_getter(self):
        schema = Schema.of("a", "b")
        get_b = schema.row_getter("b")
        assert get_b((10, 20)) == 20

    def test_equality_and_hash(self):
        assert Schema.of("a", "b") == Schema.of("a", "b")
        assert hash(Schema.of("a")) == hash(Schema.of("a"))
        assert Schema.of("a") != Schema.of("a:str")

    def test_iteration_and_len(self):
        schema = Schema.of("a", "b")
        assert len(schema) == 2
        assert [f.name for f in schema] == ["a", "b"]

    def test_has_field(self):
        schema = Schema.of("a")
        assert schema.has_field("a")
        assert not schema.has_field("z")


class TestRelation:
    def test_append_validates_arity(self):
        rel = Relation("R", Schema.of("a", "b"))
        rel.append((1, 2))
        with pytest.raises(ValueError):
            rel.append((1, 2, 3))

    def test_append_normalises_to_tuple(self):
        rel = Relation("R", Schema.of("a"))
        rel.append([5])
        assert rel.rows == [(5,)]

    def test_extend_and_size(self):
        rel = Relation("R", Schema.of("a"))
        rel.extend([(1,), (2,)])
        assert rel.size == 2
        assert len(rel) == 2

    def test_column(self):
        rel = Relation("R", Schema.of("a", "b"), [(1, 10), (2, 20)])
        assert rel.column("b") == [10, 20]

    def test_head(self):
        rel = Relation("R", Schema.of("a"), [(i,) for i in range(10)])
        assert rel.head(3) == [(0,), (1,), (2,)]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Relation("", Schema.of("a"))


class TestQualifiedNames:
    def test_qualified(self):
        assert qualified("R", "y") == "R.y"

    def test_split_qualified(self):
        assert split_qualified("R.y") == ("R", "y")
        assert split_qualified("y") == (None, "y")
