"""Tests for window semantics on top of the full-history engine."""

from collections import Counter

import pytest

from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Schema
from repro.engine.operators import Aggregation, count, total
from repro.engine.windows import (
    WindowedAggregation,
    WindowedJoinState,
    WindowSpec,
)
from repro.joins import DBToasterJoin, TraditionalJoin


def two_way_spec():
    return JoinSpec(
        [
            RelationInfo("A", Schema.of("ts", "k"), 100),
            RelationInfo("B", Schema.of("ts", "k"), 100),
        ],
        [EquiCondition(("A", "k"), ("B", "k"))],
    )


def windowed_reference(stream, window, spec):
    """Naive windowed join: pair (a, b) joins iff both are within the
    window at the time the later one arrives."""
    out = Counter()
    arrivals = 0
    current_window = None
    stored = []
    for rel, row in stream:
        ts = window.timestamp(rel, row, arrivals)
        arrivals += 1
        if window.kind == "tumbling":
            wid = ts // window.size
            if current_window is None:
                current_window = wid
            elif wid != current_window:
                stored = []
                current_window = wid
        else:
            horizon = ts - window.size
            stored = [(t, r, w) for (t, r, w) in stored if t > horizon]
        for _t, other_rel, other_row in stored:
            if other_rel != rel:
                a_row = row if rel == "A" else other_row
                b_row = other_row if rel == "A" else row
                if a_row[1] == b_row[1]:
                    out[a_row + b_row] += 1
        stored.append((ts, rel, row))
    return out


def make_stream(n=60, k_domain=4, seed=0):
    import random
    rng = random.Random(seed)
    stream = []
    for ts in range(n):
        rel = "A" if rng.random() < 0.5 else "B"
        stream.append((rel, (ts, rng.randrange(k_domain))))
    return stream


class TestWindowSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSpec("hopping", 10)
        with pytest.raises(ValueError):
            WindowSpec.tumbling(0)

    def test_timestamp_arrival_order(self):
        window = WindowSpec.sliding(5)
        assert window.timestamp("A", ("x",), 17) == 17

    def test_timestamp_explicit_column(self):
        window = WindowSpec.sliding(5, ts_positions={"A": 0})
        assert window.timestamp("A", (99, "x"), 17) == 99


@pytest.mark.parametrize("join_cls", [DBToasterJoin, TraditionalJoin])
class TestWindowedJoin:
    def test_tumbling_only_joins_within_window(self, join_cls):
        spec = two_way_spec()
        window = WindowSpec.tumbling(10, ts_positions={"A": 0, "B": 0})
        state = WindowedJoinState(join_cls(spec), window)
        stream = make_stream(seed=1)
        produced = Counter()
        for rel, row in stream:
            for out in state.insert(rel, row):
                produced[out] += 1
        assert produced == windowed_reference(stream, window, spec)
        assert state.expired_tuples > 0

    def test_sliding_retracts_old_tuples(self, join_cls):
        spec = two_way_spec()
        window = WindowSpec.sliding(8, ts_positions={"A": 0, "B": 0})
        state = WindowedJoinState(join_cls(spec), window)
        stream = make_stream(seed=2)
        produced = Counter()
        for rel, row in stream:
            for out in state.insert(rel, row):
                produced[out] += 1
        assert produced == windowed_reference(stream, window, spec)

    def test_sliding_state_stays_bounded(self, join_cls):
        spec = two_way_spec()
        window = WindowSpec.sliding(5, ts_positions={"A": 0, "B": 0})
        state = WindowedJoinState(join_cls(spec), window)
        for rel, row in make_stream(n=200, seed=3):
            state.insert(rel, row)
        # at most window-size base tuples retained (plus views over them)
        assert len(state._stored) <= 6

    def test_arrival_order_windows(self, join_cls):
        """Without ts columns the global arrival index is the clock."""
        spec = two_way_spec()
        window = WindowSpec.sliding(4)
        state = WindowedJoinState(join_cls(spec), window)
        stream = make_stream(seed=4, n=40)
        produced = Counter()
        for rel, row in stream:
            for out in state.insert(rel, row):
                produced[out] += 1
        assert produced == windowed_reference(stream, window, spec)


class TestWindowedAggregation:
    def make(self, size=10):
        window = WindowSpec.tumbling(size, ts_positions={"": 0})
        def factory():
            return Aggregation([1], [count(), total(2)])

        return WindowedAggregation(factory, window)

    def test_emits_on_window_close(self):
        wagg = self.make(size=10)
        assert wagg.consume((1, "a", 5)) is None
        assert wagg.consume((5, "a", 5)) is None
        closed = wagg.consume((12, "b", 1))
        assert closed is not None
        window_id, rows = closed
        assert window_id == 0
        assert rows == [("a", 2, 10)]

    def test_flush_closes_final_window(self):
        wagg = self.make(size=10)
        wagg.consume((1, "a", 5))
        window_id, rows = wagg.flush()
        assert window_id == 0
        assert rows == [("a", 1, 5)]
        assert wagg.flush() is None

    def test_sliding_rejected(self):
        window = WindowSpec.sliding(10)
        with pytest.raises(ValueError):
            WindowedAggregation(lambda: Aggregation([0], [count()]), window)

    def test_closed_windows_recorded(self):
        wagg = self.make(size=5)
        for ts in range(0, 20):
            wagg.consume((ts, "k", 1))
        wagg.flush()
        assert len(wagg.closed_windows) == 4
