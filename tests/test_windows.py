"""Tests for window semantics on top of the full-history engine."""

from collections import Counter

import pytest

from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Schema
from repro.engine.operators import Aggregation, count, total
from repro.engine.windows import (
    SlidingWindowedAggregation,
    WindowedAggregation,
    WindowedJoinState,
    WindowSpec,
)
from repro.joins import DBToasterJoin, TraditionalJoin


def two_way_spec():
    return JoinSpec(
        [
            RelationInfo("A", Schema.of("ts", "k"), 100),
            RelationInfo("B", Schema.of("ts", "k"), 100),
        ],
        [EquiCondition(("A", "k"), ("B", "k"))],
    )


def windowed_reference(stream, window, spec):
    """Naive windowed join: pair (a, b) joins iff both are within the
    window at the time the later one arrives."""
    out = Counter()
    arrivals = 0
    current_window = None
    stored = []
    for rel, row in stream:
        ts = window.timestamp(rel, row, arrivals)
        arrivals += 1
        if window.kind == "tumbling":
            wid = ts // window.size
            if current_window is None:
                current_window = wid
            elif wid != current_window:
                stored = []
                current_window = wid
        else:
            horizon = ts - window.size
            stored = [(t, r, w) for (t, r, w) in stored if t > horizon]
        for _t, other_rel, other_row in stored:
            if other_rel != rel:
                a_row = row if rel == "A" else other_row
                b_row = other_row if rel == "A" else row
                if a_row[1] == b_row[1]:
                    out[a_row + b_row] += 1
        stored.append((ts, rel, row))
    return out


def make_stream(n=60, k_domain=4, seed=0):
    import random
    rng = random.Random(seed)
    stream = []
    for ts in range(n):
        rel = "A" if rng.random() < 0.5 else "B"
        stream.append((rel, (ts, rng.randrange(k_domain))))
    return stream


class TestWindowSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSpec("hopping", 10)
        with pytest.raises(ValueError):
            WindowSpec.tumbling(0)

    def test_timestamp_arrival_order(self):
        window = WindowSpec.sliding(5)
        assert window.timestamp("A", ("x",), 17) == 17

    def test_timestamp_explicit_column(self):
        window = WindowSpec.sliding(5, ts_positions={"A": 0})
        assert window.timestamp("A", (99, "x"), 17) == 99


@pytest.mark.parametrize("join_cls", [DBToasterJoin, TraditionalJoin])
class TestWindowedJoin:
    def test_tumbling_only_joins_within_window(self, join_cls):
        spec = two_way_spec()
        window = WindowSpec.tumbling(10, ts_positions={"A": 0, "B": 0})
        state = WindowedJoinState(join_cls(spec), window)
        stream = make_stream(seed=1)
        produced = Counter()
        for rel, row in stream:
            for out in state.insert(rel, row):
                produced[out] += 1
        assert produced == windowed_reference(stream, window, spec)
        assert state.expired_tuples > 0

    def test_sliding_retracts_old_tuples(self, join_cls):
        spec = two_way_spec()
        window = WindowSpec.sliding(8, ts_positions={"A": 0, "B": 0})
        state = WindowedJoinState(join_cls(spec), window)
        stream = make_stream(seed=2)
        produced = Counter()
        for rel, row in stream:
            for out in state.insert(rel, row):
                produced[out] += 1
        assert produced == windowed_reference(stream, window, spec)

    def test_sliding_state_stays_bounded(self, join_cls):
        spec = two_way_spec()
        window = WindowSpec.sliding(5, ts_positions={"A": 0, "B": 0})
        state = WindowedJoinState(join_cls(spec), window)
        for rel, row in make_stream(n=200, seed=3):
            state.insert(rel, row)
        # at most window-size base tuples retained (plus views over them)
        assert len(state._stored) <= 6

    def test_arrival_order_windows(self, join_cls):
        """Without ts columns the global arrival index is the clock."""
        spec = two_way_spec()
        window = WindowSpec.sliding(4)
        state = WindowedJoinState(join_cls(spec), window)
        stream = make_stream(seed=4, n=40)
        produced = Counter()
        for rel, row in stream:
            for out in state.insert(rel, row):
                produced[out] += 1
        assert produced == windowed_reference(stream, window, spec)


class TestWindowedAggregation:
    def make(self, size=10):
        window = WindowSpec.tumbling(size, ts_positions={"": 0})
        def factory():
            return Aggregation([1], [count(), total(2)])

        return WindowedAggregation(factory, window)

    def test_emits_on_window_close(self):
        wagg = self.make(size=10)
        assert wagg.consume((1, "a", 5)) is None
        assert wagg.consume((5, "a", 5)) is None
        closed = wagg.consume((12, "b", 1))
        assert closed is not None
        window_id, rows = closed
        assert window_id == 0
        assert rows == [("a", 2, 10)]

    def test_flush_closes_final_window(self):
        wagg = self.make(size=10)
        wagg.consume((1, "a", 5))
        window_id, rows = wagg.flush()
        assert window_id == 0
        assert rows == [("a", 1, 5)]
        assert wagg.flush() is None

    def test_sliding_rejected(self):
        window = WindowSpec.sliding(10)
        with pytest.raises(ValueError):
            WindowedAggregation(lambda: Aggregation([0], [count()]), window)

    def test_closed_windows_recorded(self):
        wagg = self.make(size=5)
        for ts in range(0, 20):
            wagg.consume((ts, "k", 1))
        wagg.flush()
        assert len(wagg.closed_windows) == 4

    def test_watermark_closes_window_early(self):
        wagg = self.make(size=10)
        wagg.consume((3, "a", 5))
        assert wagg.advance_watermark(8) is None  # window [0, 10) still live
        window_id, rows = wagg.advance_watermark(10)
        assert window_id == 0
        assert rows == [("a", 1, 5)]
        # idempotent: nothing left to close until new rows arrive
        assert wagg.advance_watermark(25) is None
        assert wagg.flush() is None

    def test_watermark_close_matches_arrival_close(self):
        """A watermark-closed window has exactly the rows an arrival-driven
        close would have emitted."""
        by_arrival, by_watermark = self.make(size=10), self.make(size=10)
        rows = [(1, "a", 5), (4, "b", 2), (9, "a", 1)]
        for row in rows:
            by_arrival.consume(row)
            by_watermark.consume(row)
        closed_arrival = by_arrival.consume((12, "c", 7))
        closed_watermark = by_watermark.advance_watermark(10)
        assert closed_arrival == closed_watermark


class TestWindowedJoinAdvanceTime:
    def test_sliding_watermark_expires_like_next_arrival(self):
        spec = two_way_spec()
        window = WindowSpec.sliding(8, ts_positions={"A": 0, "B": 0})
        by_arrival = WindowedJoinState(DBToasterJoin(spec), window)
        by_watermark = WindowedJoinState(DBToasterJoin(spec), window)
        stream = make_stream(seed=7, n=30)
        for rel, row in stream[:20]:
            by_arrival.insert(rel, row)
            by_watermark.insert(rel, row)
        # the watermark advance does the expiration work up front ...
        by_watermark.advance_time(stream[20][1][0])
        assert by_watermark.expired_tuples >= by_arrival.expired_tuples
        # ... so after the next arrivals both states agree exactly
        produced_arrival, produced_watermark = Counter(), Counter()
        for rel, row in stream[20:]:
            produced_arrival.update(by_arrival.insert(rel, row))
            produced_watermark.update(by_watermark.insert(rel, row))
        assert produced_arrival == produced_watermark
        assert by_arrival.state_size() == by_watermark.state_size()

    def test_tumbling_watermark_resets_state(self):
        spec = two_way_spec()
        window = WindowSpec.tumbling(10, ts_positions={"A": 0, "B": 0})
        state = WindowedJoinState(DBToasterJoin(spec), window)
        state.insert("A", (1, 0))
        state.insert("B", (2, 0))
        state.advance_time(15)  # crosses the window boundary
        assert state.state_size() == 0
        assert state.expired_tuples == 2


class TestSlidingWindowedAggregation:
    def make(self, size=10):
        window = WindowSpec.sliding(size, ts_positions={"": 0})
        return SlidingWindowedAggregation(
            lambda: Aggregation([1], [count(), total(2)]), window)

    def test_rejects_tumbling(self):
        with pytest.raises(ValueError):
            SlidingWindowedAggregation(
                lambda: Aggregation([0], [count()]), WindowSpec.tumbling(5))

    def test_changes_report_old_and_new_rows(self):
        sagg = self.make()
        assert sagg.consume((1, "a", 5)) == [(None, ("a", 1, 5))]
        assert sagg.consume((2, "a", 3)) == [(("a", 1, 5), ("a", 2, 8))]

    def test_expiry_retracts_old_rows(self):
        sagg = self.make(size=10)
        sagg.consume((1, "a", 5))
        changes = sagg.consume((12, "b", 2))
        # row at ts=1 slid out (1 <= 12 - 10): group 'a' dies, 'b' is born
        assert (("a", 1, 5), None) in changes
        assert (None, ("b", 1, 2)) in changes
        assert sagg.snapshot() == [("b", 1, 2)]
        assert sagg.expired_rows == 1

    def test_snapshot_matches_naive_window(self):
        import random
        rng = random.Random(5)
        rows = [(ts, rng.randrange(3), rng.randrange(10)) for ts in range(50)]
        sagg = self.make(size=7)
        for row in rows:
            sagg.consume(row)
        horizon = rows[-1][0] - 7
        live = [row for row in rows if row[0] > horizon]
        expected = Aggregation([1], [count(), total(2)])
        for row in live:
            expected.consume(row)
        assert sagg.snapshot() == expected.snapshot()

    def test_advance_time_equals_arrival_expiry(self):
        a, b = self.make(size=5), self.make(size=5)
        for ts in range(8):
            a.consume((ts, ts % 2, 1))
            b.consume((ts, ts % 2, 1))
        b.advance_time(12 - 0)  # watermark does the expiration early
        a_changes = a.consume((12, 0, 1))
        b_changes = b.consume((12, 0, 1))
        assert a.snapshot() == b.snapshot()
        # a's arrival change-list includes the expirations b already did
        assert a_changes[-1] == b_changes[-1]

    def test_retraction_removes_stored_instance(self):
        sagg = self.make(size=100)
        sagg.consume((1, "a", 5))
        sagg.consume((2, "a", 3))
        changes = sagg.consume((2, "a", 3), sign=-1)
        assert changes == [(("a", 2, 8), ("a", 1, 5))]
        assert sagg.state_size() == 1
        # a later arrival expires the surviving row exactly once
        final = sagg.consume((300, "b", 1))
        assert (("a", 1, 5), None) in final
        assert sagg.snapshot() == [("b", 1, 1)]

    def test_late_retraction_after_expiry_is_ignored(self):
        """Regression: a compensating retraction for a row that already
        slid out of the window must be a no-op -- applying it anyway
        double-subtracts and leaves phantom negative groups."""
        sagg = self.make(size=5)
        sagg.consume((1, "a", 5))
        sagg.consume((10, "b", 1))  # expires the ts=1 row
        changes = sagg.consume((1, "a", 5), sign=-1)
        assert changes == []
        assert sagg.snapshot() == [("b", 1, 1)]

    def test_watermark_expiry_capped_at_own_arrivals(self):
        """A watermark past this partition's newest arrival must not
        expire beyond what the next arrival would (batch parity for the
        trailing window)."""
        sagg = self.make(size=5)
        sagg.consume((1, "a", 5))
        assert sagg.advance_time(1000) == []  # capped at max_ts=1
        assert sagg.snapshot() == [("a", 1, 5)]
        # once an arrival moves event time forward, expiry follows
        changes = sagg.consume((10, "b", 1))
        assert (("a", 1, 5), None) in changes
