"""Tests for the spill-to-disk store (BerkeleyDB connectivity stand-in)."""

import pytest

from repro.joins.indexes import HashIndex
from repro.storage import DiskLog, SpillingHashIndex


@pytest.fixture
def index(tmp_path):
    log = DiskLog(str(tmp_path / "spill.log"))
    idx = SpillingHashIndex(memory_budget=20, log=log)
    yield idx


class TestDiskLog:
    def test_append_and_scan(self, tmp_path):
        log = DiskLog(str(tmp_path / "x.log"))
        log.append("k1", (1,))
        log.append("k2", (2,))
        assert list(log.scan()) == [("k1", (1,)), ("k2", (2,))]
        assert log.records == 2

    def test_scan_missing_file_is_empty(self, tmp_path):
        log = DiskLog(str(tmp_path / "nothing.log"))
        assert list(log.scan()) == []

    def test_temp_file_cleanup(self):
        import os
        log = DiskLog()
        log.append("k", (1,))
        path = log.path
        log.close()
        assert not os.path.exists(path)


class TestSpillingHashIndex:
    def test_behaves_like_hash_index_under_budget(self, index):
        reference = HashIndex()
        for i in range(15):
            index.insert(i % 5, (i,))
            reference.insert(i % 5, (i,))
        for key in range(5):
            assert sorted(dict(index.lookup(key))) == \
                sorted(dict(reference.lookup(key)))
        assert index.disk_writes == 0

    def test_spills_when_budget_exceeded(self, index):
        for i in range(60):
            index.insert(i % 3, (i,))
        assert index.disk_writes > 0
        assert index.in_memory <= index.memory_budget
        assert index.spilled_fraction > 0

    def test_spilled_lookup_correct_but_reads_disk(self, index):
        inserted = {}
        for i in range(60):
            key = i % 3
            index.insert(key, (i,))
            inserted.setdefault(key, []).append((i,))
        for key, rows in inserted.items():
            found = sorted(row for row, count in index.lookup(key)
                           for _n in range(count))
            assert found == sorted(rows)
        assert index.disk_reads > 0, "spilled lookups must pay disk reads"

    def test_disk_reads_dwarf_memory_ops(self, index):
        """The paper: orders of magnitude better when memory-only."""
        for i in range(200):
            index.insert(0, (i,))  # one huge bucket -> spilled
        index.insert(1, (0,))  # stays in memory
        reads_before = index.disk_reads
        list(index.lookup(1))
        assert index.disk_reads == reads_before  # memory lookup: no disk
        list(index.lookup(0))
        assert index.disk_reads - reads_before >= 200  # full log scan

    def test_insert_into_spilled_key_goes_to_disk(self, index):
        for i in range(40):
            index.insert(0, (i,))
        writes = index.disk_writes
        index.insert(0, (999,))
        assert index.disk_writes == writes + 1
        assert (999,) in dict(index.lookup(0))

    def test_delete_in_memory(self, index):
        index.insert(5, ("a",))
        assert index.delete(5, ("a",))
        assert list(index.lookup(5)) == []
        assert not index.delete(5, ("a",))

    def test_delete_spilled_uses_tombstones(self, index):
        for i in range(40):
            index.insert(0, (i,))
        assert index.delete(0, (7,))
        remaining = dict(index.lookup(0))
        assert (7,) not in remaining
        assert len(index) == 39

    def test_delete_missing_spilled_row(self, index):
        for i in range(40):
            index.insert(0, (i,))
        assert not index.delete(0, (12345,))

    def test_size_tracking(self, index):
        for i in range(30):
            index.insert(i % 2, (i,))
        assert len(index) == 30

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            SpillingHashIndex(memory_budget=0)
