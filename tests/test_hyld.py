"""Tests for the HyLD parallel join operator."""

import random
from collections import Counter

import pytest

from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Schema
from repro.joins import HyLDOperator, reference_join
from repro.joins.hyld import MemoryBudgetExceeded

from tests.conftest import interleaved_stream, make_rst_data


@pytest.mark.parametrize("scheme", ["hash", "random", "hybrid"])
@pytest.mark.parametrize("local_join", ["dbtoaster", "traditional"])
class TestCorrectness:
    def test_matches_reference(self, scheme, local_join, rst_spec):
        data = make_rst_data(seed=40)
        op = HyLDOperator(rst_spec, 9, scheme=scheme, local_join=local_join)
        for rel, row in interleaved_stream(data, seed=1):
            op.insert(rel, row)
        assert Counter(op.outputs) == Counter(reference_join(rst_spec, data))


class TestStats:
    def test_replication_factor_hash_is_bounded_by_dims(self, rst_spec):
        op = HyLDOperator(rst_spec, 16, scheme="hash")
        data = make_rst_data(seed=41)
        op.run(interleaved_stream(data))
        stats = op.stats()
        # 4x4 hypercube: R and T replicated 4x, S 1x -> factor (4+1+4)/3 = 3
        assert stats.replication_factor == pytest.approx(3.0)

    def test_random_scheme_has_higher_replication(self, rst_spec):
        data = make_rst_data(seed=42)
        hash_op = HyLDOperator(rst_spec, 16, scheme="hash")
        hash_op.run(interleaved_stream(data))
        random_op = HyLDOperator(rst_spec, 16, scheme="random")
        random_op.run(interleaved_stream(data))
        assert (random_op.stats().replication_factor
                > hash_op.stats().replication_factor)

    def test_skew_degree_random_is_balanced(self, rst_spec):
        data = make_rst_data(seed=43, n=400)
        op = HyLDOperator(rst_spec, 8, scheme="random", collect_outputs=False)
        op.run(interleaved_stream(data))
        assert op.stats().skew_degree < 1.3

    def test_source_counts(self, rst_spec):
        data = make_rst_data(seed=44, n=10)
        op = HyLDOperator(rst_spec, 4)
        op.run(interleaved_stream(data))
        assert op.stats().source_counts == {"R": 10, "S": 10, "T": 10}

    def test_collect_outputs_flag(self, rst_spec):
        data = make_rst_data(seed=45, n=10)
        op = HyLDOperator(rst_spec, 4, collect_outputs=False)
        op.run(interleaved_stream(data))
        assert op.outputs == []
        assert op.output_count == len(reference_join(rst_spec, data))


class TestMemoryBudget:
    def test_overflow_raised_and_recorded(self, rst_spec):
        data = make_rst_data(seed=46, n=200)
        op = HyLDOperator(rst_spec, 2, memory_budget=20)
        with pytest.raises(MemoryBudgetExceeded):
            for rel, row in interleaved_stream(data):
                op.insert(rel, row)
        assert op.memory_overflow
        assert op.overflow_after is not None

    def test_run_swallows_overflow_and_reports(self, rst_spec):
        data = make_rst_data(seed=46, n=200)
        op = HyLDOperator(rst_spec, 2, memory_budget=20)
        stats = op.run(interleaved_stream(data))
        assert stats.memory_overflow
        assert stats.overflow_after < 600

    def test_skew_resilient_scheme_survives_budget_hash_cannot(self):
        """Mirrors Figure 7's 80G case: under heavy skew the Hash-Hypercube
        overflows one machine's memory while Hybrid completes."""
        rng = random.Random(47)
        spec = JoinSpec(
            [
                RelationInfo("L", Schema.of("k", "v"), 300, top_freq={"k": 0.7}),
                RelationInfo("P", Schema.of("k", "w"), 30),
            ],
            [EquiCondition(("L", "k"), ("P", "k"))],
        )
        data = {
            "L": [(0 if rng.random() < 0.7 else rng.randrange(30), i)
                  for i in range(300)],
            "P": [(i, i) for i in range(30)],
        }
        budget = 120
        hash_op = HyLDOperator(spec, 8, scheme="hash", memory_budget=budget,
                               collect_outputs=False)
        hash_stats = hash_op.run(interleaved_stream(data, seed=1))
        skewed_spec = JoinSpec(
            [
                RelationInfo("L", Schema.of("k", "v"), 300, skewed={"k"},
                             top_freq={"k": 0.7}),
                RelationInfo("P", Schema.of("k", "w"), 30),
            ],
            spec.conditions,
        )
        hybrid_op = HyLDOperator(skewed_spec, 8, scheme="hybrid",
                                 memory_budget=budget, collect_outputs=False)
        hybrid_stats = hybrid_op.run(interleaved_stream(data, seed=1))
        assert hash_stats.memory_overflow
        assert not hybrid_stats.memory_overflow


class TestConfiguration:
    def test_unknown_scheme_rejected(self, rst_spec):
        with pytest.raises(ValueError, match="unknown scheme"):
            HyLDOperator(rst_spec, 4, scheme="mystery")

    def test_unknown_local_join_rejected(self, rst_spec):
        with pytest.raises(ValueError, match="unknown local join"):
            HyLDOperator(rst_spec, 4, local_join="mystery")

    def test_partitioner_instance_accepted(self, rst_spec):
        from repro.partitioning import HashHypercube
        partitioner = HashHypercube.build(rst_spec, 4)
        op = HyLDOperator(rst_spec, 4, scheme=partitioner)
        assert op.partitioner is partitioner

    def test_custom_local_join_factory(self, rst_spec):
        from repro.joins import TraditionalJoin
        op = HyLDOperator(rst_spec, 4, local_join=lambda spec: TraditionalJoin(spec))
        assert type(op.locals[0]).__name__ == "TraditionalJoin"

    def test_describe(self, rst_spec):
        op = HyLDOperator(rst_spec, 4)
        assert "HyLD" in op.describe()
        assert "DBToasterJoin" in op.describe()

    def test_deletes_flow_through(self, rst_spec):
        data = make_rst_data(seed=48, n=20)
        op = HyLDOperator(rst_spec, 6)
        for rel, row in interleaved_stream(data):
            op.insert(rel, row)
        retracted = op.delete("S", data["S"][0])
        without = dict(data)
        without["S"] = data["S"][1:]
        expected = (Counter(reference_join(rst_spec, data))
                    - Counter(reference_join(rst_spec, without)))
        assert Counter(retracted) == expected
