"""Tests for the workload generators."""

from collections import Counter

import pytest

from repro.datasets import (
    GoogleClusterGenerator,
    TPCHGenerator,
    ZipfGenerator,
    generate_crawlcontent,
    generate_webgraph,
    zipf_frequencies,
)
from repro.datasets.crawlcontent import urls_of_webgraph
from repro.datasets.webgraph import sample_arcs


class TestZipf:
    def test_frequencies_sum_to_one(self):
        assert sum(zipf_frequencies(100, 2.0)) == pytest.approx(1.0)

    def test_frequencies_monotone(self):
        freqs = zipf_frequencies(50, 1.0)
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))

    def test_s0_is_uniform(self):
        freqs = zipf_frequencies(10, 0.0)
        assert all(f == pytest.approx(0.1) for f in freqs)

    def test_s2_top_share_matches_theory(self):
        """zipf(2) over many keys: top key takes ~ 1/zeta(2) ~ 0.6."""
        gen = ZipfGenerator(10_000, 2.0, seed=1)
        draws = gen.draws(20_000)
        top_share = Counter(draws)[0] / len(draws)
        assert top_share == pytest.approx(gen.top_frequency, abs=0.02)
        assert 0.55 < top_share < 0.65

    def test_reproducible(self):
        assert ZipfGenerator(100, 1.5, seed=7).draws(50) == \
            ZipfGenerator(100, 1.5, seed=7).draws(50)

    def test_draws_in_range(self):
        gen = ZipfGenerator(10, 1.0, seed=2)
        assert all(0 <= d < 10 for d in gen.draws(500))

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_frequencies(0, 1.0)
        with pytest.raises(ValueError):
            zipf_frequencies(10, -1.0)


class TestTPCH:
    @pytest.fixture(scope="class")
    def tables(self):
        return TPCHGenerator(scale=0.5, seed=3).generate()

    def test_official_ratios_preserved(self, tables):
        assert len(tables["orders"]) == 10 * len(tables["customer"])
        assert len(tables["lineitem"]) == 4 * len(tables["orders"])
        assert len(tables["partsupp"]) == 4 * len(tables["part"])
        assert len(tables["nation"]) == 25
        assert len(tables["region"]) == 5

    def test_foreign_keys_valid(self, tables):
        n_cust = len(tables["customer"])
        n_part = len(tables["part"])
        n_supp = len(tables["supplier"])
        n_orders = len(tables["orders"])
        assert all(0 <= o[1] < n_cust for o in tables["orders"].rows)
        assert all(0 <= li[0] < n_orders for li in tables["lineitem"].rows)
        assert all(0 <= li[1] < n_part for li in tables["lineitem"].rows)
        assert all(0 <= ps[1] < n_supp for ps in tables["partsupp"].rows)

    def test_dates_formatted(self, tables):
        from repro.core.expressions import parse_date
        for row in tables["orders"].head(20):
            parse_date(row[4])  # raises if malformed

    def test_skew_knob_concentrates_partkeys(self):
        uniform = TPCHGenerator(scale=0.5, skew=0.0, seed=4).generate(["lineitem"])
        skewed = TPCHGenerator(scale=0.5, skew=2.0, seed=4).generate(["lineitem"])
        top_uniform = Counter(r[1] for r in uniform["lineitem"].rows).most_common(1)[0][1]
        top_skewed = Counter(r[1] for r in skewed["lineitem"].rows).most_common(1)[0][1]
        assert top_skewed > 5 * top_uniform

    def test_partial_generation(self):
        tables = TPCHGenerator(scale=0.2, seed=5).generate(["part", "partsupp"])
        assert set(tables) == {"part", "partsupp"}

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            TPCHGenerator().generate(["warehouse"])

    def test_reproducible(self):
        a = TPCHGenerator(scale=0.2, seed=6).generate(["orders"])
        b = TPCHGenerator(scale=0.2, seed=6).generate(["orders"])
        assert a["orders"].rows == b["orders"].rows

    def test_describe(self):
        assert "skew" in TPCHGenerator(scale=1, skew=2).describe()


class TestWebGraph:
    def test_schema(self):
        graph = generate_webgraph(50, 500, seed=7)
        assert graph.schema.names == ("FromUrl", "ToUrl")

    def test_hub_dominates_in_degree(self):
        graph = generate_webgraph(100, 2000, seed=8, hub="blogspot.com",
                                  hub_fraction=0.4)
        in_degree = Counter(row[1] for row in graph.rows)
        assert in_degree.most_common(1)[0][0] == "blogspot.com"
        assert in_degree["blogspot.com"] > 0.3 * len(graph.rows)

    def test_hub_has_outgoing_arcs(self):
        graph = generate_webgraph(100, 1000, seed=9, hub="blogspot.com",
                                  hub_fraction=0.3)
        assert any(row[0] == "blogspot.com" for row in graph.rows)

    def test_power_law_targets_without_hub(self):
        graph = generate_webgraph(200, 4000, seed=10, target_skew=1.2)
        in_degree = Counter(row[1] for row in graph.rows)
        top, second = [c for _k, c in in_degree.most_common(2)]
        assert top >= second  # heavy head exists

    def test_sample_arcs(self):
        graph = generate_webgraph(50, 2000, seed=11)
        sample = sample_arcs(graph, 0.1, seed=1)
        assert 100 <= len(sample) <= 320

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_webgraph(1, 10)
        with pytest.raises(ValueError):
            generate_webgraph(10, 10, hub="h", hub_fraction=1.5)


class TestCrawlContent:
    def test_one_row_per_distinct_url(self):
        graph = generate_webgraph(40, 400, seed=12)
        content = generate_crawlcontent(urls_of_webgraph(graph), seed=1)
        urls = [row[0] for row in content.rows]
        assert len(urls) == len(set(urls))  # Url is a primary key
        assert set(urls) == urls_of_webgraph(graph)

    def test_scores_in_unit_interval(self):
        content = generate_crawlcontent(["a", "b", "c"], seed=2)
        assert all(0.0 <= row[1] <= 1.0 for row in content.rows)


class TestGoogleCluster:
    def test_size_ratio_matches_paper(self):
        gen = GoogleClusterGenerator(n_machines=40, n_jobs=60, n_task_events=690)
        assert gen.small_to_large_ratio() == pytest.approx(0.145, abs=0.001)

    def test_fail_fraction(self):
        data = GoogleClusterGenerator(n_task_events=4000, fail_fraction=0.15,
                                      seed=13).generate()
        fails = sum(1 for row in data["task_events"].rows if row[3] == "FAIL")
        assert fails / 4000 == pytest.approx(0.15, abs=0.03)

    def test_foreign_keys_valid(self):
        gen = GoogleClusterGenerator(n_machines=10, n_jobs=20, n_task_events=200,
                                     seed=14)
        data = gen.generate()
        machine_ids = {row[0] for row in data["machine_events"].rows}
        job_ids = {row[0] for row in data["job_events"].rows}
        for row in data["task_events"].rows:
            assert row[0] in job_ids
            assert row[2] in machine_ids

    def test_platforms_assigned(self):
        data = GoogleClusterGenerator(seed=15).generate()
        platforms = {row[2] for row in data["machine_events"].rows}
        assert platforms == {"PlatformA", "PlatformB", "PlatformC"}

    def test_validation(self):
        with pytest.raises(ValueError):
            GoogleClusterGenerator(fail_fraction=2.0)
