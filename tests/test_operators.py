"""Tests for engine operators: selection, projection, aggregation."""

import pytest

from repro.core.expressions import col, lit
from repro.core.schema import Schema
from repro.engine.operators import (
    AggregateSpec,
    Aggregation,
    Projection,
    Selection,
    avg,
    count,
    total,
)

SCHEMA = Schema.of("k:str", "v", "w:float")


class TestSelection:
    def test_filters_and_counts(self):
        selection = Selection(col("v").gt(5), SCHEMA)
        assert selection.apply(("a", 10, 1.0)) == ("a", 10, 1.0)
        assert selection.apply(("a", 3, 1.0)) is None
        assert selection.seen == 2
        assert selection.passed == 1
        assert selection.selectivity == 0.5

    def test_cost_class_recorded(self):
        selection = Selection(col("v").gt(5), SCHEMA, cost_class="date")
        assert selection.cost_class == "date"

    def test_selectivity_with_no_input(self):
        assert Selection(col("v").gt(5), SCHEMA).selectivity == 1.0


class TestProjection:
    def test_projects_expressions(self):
        projection = Projection([col("k"), col("v") * lit(2)], SCHEMA,
                                names=["k", "v2"])
        assert projection.apply(("a", 3, 0.0)) == ("a", 6)
        assert projection.output_schema.names == ("k", "v2")

    def test_names_length_validated(self):
        with pytest.raises(ValueError):
            Projection([col("k")], SCHEMA, names=["a", "b"])

    def test_default_names(self):
        projection = Projection([col("v")], SCHEMA)
        assert projection.output_schema.names == ("expr0",)


class TestAggregateSpec:
    def test_helpers(self):
        assert total(3).kind == "sum"
        assert count().kind == "count"
        assert avg(1).position == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AggregateSpec("median", 0)
        with pytest.raises(ValueError):
            AggregateSpec("sum")  # needs a position


class TestAggregation:
    def test_sum_count_avg(self):
        agg = Aggregation([0], [count(), total(1), avg(1)])
        agg.consume(("a", 10))
        agg.consume(("a", 20))
        agg.consume(("b", 5))
        snapshot = agg.snapshot()
        assert ("a", 2, 30, 15.0) in snapshot
        assert ("b", 1, 5, 5.0) in snapshot

    def test_consume_returns_running_value(self):
        agg = Aggregation([0], [total(1)])
        assert agg.consume(("a", 10)) == ("a", 10)
        assert agg.consume(("a", 5)) == ("a", 15)

    def test_count_stays_integer(self):
        agg = Aggregation([0], [count()])
        updated = agg.consume(("a", 1))
        assert updated == ("a", 1)
        assert isinstance(updated[1], int)

    def test_retraction_sign(self):
        agg = Aggregation([0], [count(), total(1)])
        agg.consume(("a", 10))
        agg.consume(("a", 20))
        agg.consume(("a", 10), sign=-1)
        assert agg.snapshot() == [("a", 1, 20)]

    def test_group_vanishes_at_zero(self):
        agg = Aggregation([0], [count()])
        agg.consume(("a", 1))
        agg.consume(("a", 1), sign=-1)
        assert agg.snapshot() == []
        assert agg.group_count == 0

    def test_no_grouping(self):
        agg = Aggregation([], [count(), total(0)])
        agg.consume((2,))
        agg.consume((3,))
        assert agg.snapshot() == [(2, 5)]

    def test_multi_column_group(self):
        agg = Aggregation([0, 1], [count()])
        agg.consume(("a", "x", 1))
        agg.consume(("a", "y", 1))
        assert agg.group_count == 2

    def test_current(self):
        agg = Aggregation([0], [total(1)])
        agg.consume(("a", 7))
        assert agg.current(("a",)) == ("a", 7)
        assert agg.current(("zzz",)) is None

    def test_reset(self):
        agg = Aggregation([0], [count()])
        agg.consume(("a", 1))
        agg.reset()
        assert agg.snapshot() == []
