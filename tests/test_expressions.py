"""Tests for repro.core.expressions."""

import datetime

import pytest

from repro.core.expressions import (
    Arithmetic,
    Comparison,
    DateValue,
    TruePredicate,
    col,
    lit,
    parse_date,
)
from repro.core.schema import Schema

SCHEMA = Schema.of("a", "b", "s:str", "d:date")
ROW = (10, 3, "hello", "1995-06-17")


class TestBasics:
    def test_column_compiles_to_position(self):
        assert col("b").compile(SCHEMA)(ROW) == 3

    def test_unknown_column_raises_at_compile_time(self):
        with pytest.raises(KeyError):
            col("nope").compile(SCHEMA)

    def test_literal(self):
        assert lit(42).compile(SCHEMA)(ROW) == 42

    def test_columns_reported(self):
        expr = col("a") + col("b") * lit(2)
        assert set(expr.columns()) == {"a", "b"}


class TestArithmetic:
    def test_add_sub_mul_div(self):
        assert (col("a") + col("b")).compile(SCHEMA)(ROW) == 13
        assert (col("a") - col("b")).compile(SCHEMA)(ROW) == 7
        assert (col("a") * col("b")).compile(SCHEMA)(ROW) == 30
        assert (col("a") / lit(4)).compile(SCHEMA)(ROW) == 2.5

    def test_rmul_for_scaled_conditions(self):
        # the paper's 2 * R.B < S.C shape
        assert (2 * col("b")).compile(SCHEMA)(ROW) == 6

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Arithmetic(col("a"), "%", lit(2))


class TestComparisons:
    def test_all_operators(self):
        assert col("a").eq(10).compile(SCHEMA)(ROW)
        assert col("a").ne(9).compile(SCHEMA)(ROW)
        assert col("b").lt(4).compile(SCHEMA)(ROW)
        assert col("b").le(3).compile(SCHEMA)(ROW)
        assert col("a").gt(9).compile(SCHEMA)(ROW)
        assert col("a").ge(10).compile(SCHEMA)(ROW)

    def test_comparison_against_column(self):
        assert Comparison(col("a"), ">", col("b")).compile(SCHEMA)(ROW)

    def test_unknown_comparator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(col("a"), "~", lit(1))


class TestBooleanCombinators:
    def test_and(self):
        predicate = col("a").gt(5) & col("b").lt(5)
        assert predicate.compile(SCHEMA)(ROW)

    def test_or_short_circuit_semantics(self):
        predicate = col("a").gt(100) | col("b").eq(3)
        assert predicate.compile(SCHEMA)(ROW)

    def test_not(self):
        predicate = ~col("a").gt(100)
        assert predicate.compile(SCHEMA)(ROW)

    def test_nested_combination(self):
        predicate = (col("a").gt(5) & ~col("b").gt(10)) | col("s").eq("nope")
        assert predicate.compile(SCHEMA)(ROW)

    def test_columns_aggregate_through_combinators(self):
        predicate = col("a").gt(1) & (col("b").lt(2) | ~col("s").eq("x"))
        assert set(predicate.columns()) == {"a", "b", "s"}


class TestDates:
    def test_parse_date(self):
        assert parse_date("1995-06-17") == datetime.date(1995, 6, 17)

    def test_date_value_materialises(self):
        expr = DateValue(col("d"))
        assert expr.compile(SCHEMA)(ROW) == datetime.date(1995, 6, 17)

    def test_date_comparison(self):
        predicate = DateValue(col("d")).lt(datetime.date(1996, 1, 1))
        assert predicate.compile(SCHEMA)(ROW)

    def test_parse_date_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_date("not-a-date")


class TestNoopSelection:
    def test_true_predicate_passes_everything(self):
        # Figure 5's no-op selection: passes through all the tuples
        fn = TruePredicate().compile(SCHEMA)
        assert fn(ROW) is True
        assert fn(()) is True
