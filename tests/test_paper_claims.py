"""Tests pinning the paper's worked examples and qualitative claims.

Each test cites the claim it checks, so EXPERIMENTS.md can point here for
paper-vs-measured evidence at the unit level.
"""

from collections import Counter

import pytest

from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Schema
from repro.joins import HyLDOperator
from repro.partitioning import (
    HashHypercube,
    HybridHypercube,
    OneBucket,
    RandomHypercube,
)
from repro.storm.groupings import FieldsGrouping, KeyMappedGrouping
from repro.util import round_robin_assignment

H = 1000


def rst(skew_top=None):
    skewed = frozenset({"z"}) if skew_top else frozenset()
    freq = {"z": skew_top} if skew_top else {}
    return JoinSpec(
        [
            RelationInfo("R", Schema.of("x", "y"), H),
            RelationInfo("S", Schema.of("y", "z"), H, skewed=skewed, top_freq=freq),
            RelationInfo("T", Schema.of("z", "t"), H, skewed=skewed, top_freq=freq),
        ],
        [EquiCondition(("R", "y"), ("S", "y")),
         EquiCondition(("S", "z"), ("T", "z"))],
    )


class TestSection31WorkedExample:
    """Figure 2 / section 3.1: loads for 64 machines, |R|=|S|=|T|=H."""

    def test_hash_hypercube_uniform_is_quarter_H(self):
        config = HashHypercube.plan(rst(), 64)
        # paper: y x z = 8 x 8, L = H/8 + H/64 + H/8 ~ 0.26H
        assert config.sizes == (8, 8)
        assert config.max_load / H == pytest.approx(0.2656, abs=0.001)

    def test_random_hypercube_is_three_quarters_H(self):
        config = RandomHypercube.plan(rst(), 64)
        # paper: 4 x 4 x 4, L = 3H/4
        assert sorted(config.sizes) == [4, 4, 4]
        assert config.max_load / H == pytest.approx(0.75)

    def test_hash_hypercube_skewed_is_about_0p7H(self):
        config = HashHypercube.plan(rst(0.5), 64, skew_aware=True)
        # paper's simplified arithmetic gives ~0.69H on the fixed 8x8 grid;
        # our analysis mode may pick a slightly better grid but stays ~0.7H
        assert 0.6 <= config.max_load / H <= 0.8
        # the scheme itself plans blind: 8x8 with a uniform 0.27H estimate
        blind = HashHypercube.plan(rst(0.5), 64)
        assert blind.sizes == (8, 8)

    def test_hybrid_hypercube_skewed_is_0p36H_total_23H(self):
        config = HybridHypercube.plan(rst(0.5), 64)
        # paper: (|R|+|S|)/9 + |T|/7 ~ 0.36H on 63 machines, total 23H
        assert config.max_load / H == pytest.approx(0.365, abs=0.001)
        assert config.total_communication / H == pytest.approx(23.0)
        assert config.machines_used == 63

    def test_hybrid_beats_hash_by_1_9x_and_random_by_2x(self):
        hybrid = HybridHypercube.plan(rst(0.5), 64).max_load
        # the hash scheme plans blind; its *actual* load under skew comes
        # from the skew-adjusted analysis of its chosen grid
        hashed = HashHypercube.plan(rst(0.5), 64, skew_aware=True).max_load
        randomised = RandomHypercube.plan(rst(0.5), 64).max_load
        assert hashed / hybrid == pytest.approx(1.92, abs=0.15)
        assert randomised / hybrid == pytest.approx(2.08, abs=0.15)

    def test_total_loads_17_23_48(self):
        """Paper: total load Hash 17H < Hybrid 23H < Random 48H."""
        hash_total = HashHypercube.plan(rst(0.5), 64).total_communication / H
        hybrid_total = HybridHypercube.plan(rst(0.5), 64).total_communication / H
        random_total = RandomHypercube.plan(rst(0.5), 64).total_communication / H
        assert hash_total == pytest.approx(17.0)
        assert hybrid_total == pytest.approx(23.0)
        assert random_total == pytest.approx(48.0)


class TestSection32SpecialCases:
    def test_same_key_multiway_join_runs_without_replication(self):
        """TPC-H Q9 shape: Lineitem, PartSupp, Part all join on Partkey --
        a multi-way join within one component, no replication at all."""
        spec = JoinSpec(
            [
                RelationInfo("L", Schema.of("pk"), 6000),
                RelationInfo("PS", Schema.of("pk"), 800),
                RelationInfo("P", Schema.of("pk"), 200),
            ],
            [EquiCondition(("L", "pk"), ("PS", "pk")),
             EquiCondition(("PS", "pk"), ("P", "pk"))],
        )
        partitioner = HashHypercube.build(spec, 8)
        assert all(
            partitioner.expected_replication(rel) == 1 for rel in ("L", "PS", "P")
        )
        hybrid = HybridHypercube.build(spec, 8)
        assert all(
            hybrid.expected_replication(rel) == 1 for rel in ("L", "PS", "P")
        )


class TestSection5SkewTypes:
    def test_hash_imperfections_d15_p8(self):
        """d=15 keys on p=8 machines: hashing very likely gives some machine
        3 keys (1.5x optimum); the round-robin key mapping never does."""
        keys = [f"key{i}" for i in range(15)]
        hashed = Counter()
        grouping = FieldsGrouping([0])
        for key in keys:
            hashed[grouping.targets("s", (key,), 8)[0]] += 1
        mapped = Counter()
        km = KeyMappedGrouping(0, round_robin_assignment(keys, 8))
        for key in keys:
            mapped[km.targets("s", (key,), 8)[0]] += 1
        assert max(mapped.values()) == 2  # optimal ceil(15/8)
        assert max(hashed.values()) >= max(mapped.values())

    def test_temporal_skew_sorted_arrival(self):
        """Sorted arrival: content-sensitive hash keeps one machine active
        at a time; content-insensitive 1-Bucket spreads every prefix."""
        machines = 8
        grouping = FieldsGrouping([0])
        # sorted keys with moderate per-key frequency
        stream = [key for key in range(16) for _ in range(50)]
        active_counts = []
        window = []
        for value in stream:
            window.append(grouping.targets("s", (value,), machines)[0])
            if len(window) == 50:
                active_counts.append(len(set(window)))
                window = []
        assert max(active_counts) == 1  # one machine active per burst

        bucket = OneBucket("R", "S", machines, seed=4)
        window = []
        spread = []
        for value in stream:
            window.extend(bucket.destinations("R", (value,)))
            if len(window) >= 50:
                spread.append(len(set(window)))
                window = []
        assert min(spread) > machines / 2

    def test_adversarial_fluctuations_random_immune(self):
        """An adversary re-concentrating the distribution cannot unbalance
        random partitioning (SAR principle: replication buys adaptivity)."""
        bucket = OneBucket("R", "S", 16, seed=5)
        loads = Counter()
        for phase in range(4):
            hot = phase * 1000  # distribution shifts every phase
            for _ in range(500):
                for machine in bucket.destinations("R", (hot,)):
                    loads[machine] += 1
        assert max(loads.values()) / min(loads.values()) < 1.3


class TestSARPrinciple:
    """Skew-resilience and Adaptivity require Replication (section 5)."""

    def test_replication_order_hash_lt_hybrid_lt_random(self):
        spec = rst(0.5)
        sizes = {"R": H, "S": H, "T": H}
        hash_rf = HashHypercube.build(spec, 64).replication_factor(sizes)
        hybrid_rf = HybridHypercube.build(spec, 64).replication_factor(sizes)
        random_rf = RandomHypercube.build(spec, 64).replication_factor(sizes)
        assert hash_rf < hybrid_rf < random_rf

    def test_skew_resilience_order_is_reversed(self):
        """More replication buys lower max load under skew: measured on
        actual routed tuples with a hot z key."""
        import random as _random
        rng = _random.Random(99)
        spec = rst(0.5)
        data = {
            "R": [(rng.randrange(50), rng.randrange(40)) for _ in range(300)],
            "S": [(rng.randrange(40),
                   0 if rng.random() < 0.5 else rng.randrange(40))
                  for _ in range(300)],
            "T": [(0 if rng.random() < 0.5 else rng.randrange(40),
                   rng.randrange(50)) for _ in range(300)],
        }
        stats = {}
        for scheme in ("hash", "random", "hybrid"):
            op = HyLDOperator(spec, 16, scheme=scheme, collect_outputs=False)
            for name, rows in data.items():
                for row in rows:
                    op.insert(name, row)
            stats[scheme] = op.stats()
        # more replication buys balance: random stays near-perfectly
        # balanced, hash is visibly imbalanced, hybrid beats hash outright
        assert stats["hybrid"].max_load < stats["hash"].max_load
        assert stats["random"].skew_degree < 1.3
        assert stats["hash"].skew_degree > 1.5 * stats["random"].skew_degree
