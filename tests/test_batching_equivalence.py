"""Equivalence of the batched dataplane with the seed per-tuple engine.

``tests/golden/batching_equivalence.json`` was captured by running the
plans of :mod:`tests.batching_plans` through the seed engine (recursive
per-tuple ``LocalCluster._dispatch``).  These tests assert that:

- ``batch_size=1`` reproduces the seed engine **byte-identically**:
  result rows in the same order, and the same per-task emit/receive
  counters, edge transfer counts, reads, selection stats and join work.
- larger batch sizes preserve the result multiset (or, for online
  aggregation, the final per-group values) and every per-component total.
"""

import json
import os
from collections import Counter

import pytest

from repro.engine import run_plan
from tests.batching_plans import GOLDEN_PLANS, run_result_fingerprint

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "batching_equivalence.json")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(GOLDEN_PLANS))
def test_batch_size_one_is_byte_identical_to_seed_engine(name, golden):
    result = run_plan(GOLDEN_PLANS[name](), batch_size=1)
    assert run_result_fingerprint(result) == golden[name]


@pytest.mark.parametrize("name", sorted(GOLDEN_PLANS))
def test_default_batch_size_is_one(name, golden):
    result = run_plan(GOLDEN_PLANS[name]())
    assert run_result_fingerprint(result) == golden[name]


@pytest.mark.parametrize("name", sorted(set(GOLDEN_PLANS) - {"online_agg"}))
@pytest.mark.parametrize("batch_size", [2, 7, 64, 1024])
def test_batched_execution_preserves_result_multiset(name, batch_size, golden):
    result = run_plan(GOLDEN_PLANS[name](), batch_size=batch_size)
    expected = Counter(tuple(row) for row in golden[name]["results"])
    assert Counter(result.results) == expected


@pytest.mark.parametrize("batch_size", [2, 64, 1024])
def test_batched_online_aggregation_reaches_same_final_values(batch_size, golden):
    result = run_plan(GOLDEN_PLANS["online_agg"](), batch_size=batch_size)
    finals = {}
    for key, value in result.results:
        finals[key] = value
    expected = {}
    for key, value in (tuple(row) for row in golden["online_agg"]["results"]):
        expected[key] = value
    assert finals == expected


@pytest.mark.parametrize("name", sorted(set(GOLDEN_PLANS) - {"online_agg"}))
@pytest.mark.parametrize("batch_size", [7, 64])
def test_batched_execution_preserves_component_totals(name, batch_size, golden):
    """Per-component received/emitted totals, edge transfers, reads and
    selection statistics are batch-size invariant (only the per-task split
    of content-insensitive routing may shift with the interleaving)."""
    result = run_plan(GOLDEN_PLANS[name](), batch_size=batch_size)
    expected = golden[name]
    assert {k: sum(v) for k, v in result.metrics.received.items()} == \
           {k: sum(v) for k, v in expected["received"].items()}
    assert {k: sum(v) for k, v in result.metrics.emitted.items()} == \
           {k: sum(v) for k, v in expected["emitted"].items()}
    transfers = {f"{s}->{d}": n
                 for (s, d), n in result.metrics.edge_transfers.items()}
    assert transfers == expected["edge_transfers"]
    assert result.reads == expected["reads"]
    assert {k: list(v) for k, v in result.selections.items()} == \
           expected["selections"]


@pytest.mark.parametrize("name,joiner", [("selection_traditional", "J"),
                                         ("two_joins", "J1"),
                                         ("two_joins", "J2")])
def test_hash_routing_is_batch_size_invariant(name, joiner, golden):
    """Hash-hypercube routing depends only on tuple content (no stateful
    random dimensions), so even the *per-task* received counts of the
    joiner match at any batch size."""
    result = run_plan(GOLDEN_PLANS[name](), batch_size=64)
    assert result.metrics.received[joiner] == golden[name]["received"][joiner]


def test_run_result_exposes_topology_field():
    result = run_plan(GOLDEN_PLANS["join_only"]())
    assert result.topology is not None
    assert result.replication_factor("J") >= 1.0
    # a RunResult without a topology refuses the lookup instead of crashing
    import dataclasses
    bare = dataclasses.replace(result, topology=None)
    with pytest.raises(ValueError, match="topology"):
        bare.replication_factor("J")
