"""The typed core must pass mypy's basic (default) mode.

The CI lint job runs ``python -m mypy src/repro/core src/repro/checkpoint
src/repro/serving`` against the ``[tool.mypy]`` config in pyproject.toml;
this test runs the identical check whenever mypy is importable so the
gate is reproducible locally.  The container used for the main test run
does not ship mypy -- the skip is expected there, the CI lint job is the
enforcing run.
"""

import os
import subprocess
import sys

import pytest

pytest.importorskip("mypy")

REPO = os.path.join(os.path.dirname(__file__), os.pardir)

MYPY_TARGETS = [
    "src/repro/core",
    "src/repro/checkpoint",
    "src/repro/serving",
]


def test_typed_core_passes_mypy():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *MYPY_TARGETS],
        capture_output=True, text=True, cwd=REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr
