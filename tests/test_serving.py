"""The multi-tenant serving layer.

Pins the tentpole guarantees:

- two sessions issuing the same SQL share ONE resident topology
  (fingerprint dedupe), asserted via topology count and the shared
  topology's event counters;
- a stalled subscriber is shed with a terminal SubscriberOverflow and
  never stalls the pipeline or its co-subscribers;
- teardown is refcounted: the last detach removes the topology from the
  registry and stops its driver;
- admission control refuses over-limit subscribes up front;
- per-tenant ServingMetrics accounting;
- the asyncio DeltaServer front-end speaks its SSE-style protocol.
"""

import asyncio
import json
import time

import pytest

import repro
from repro.core.optimizer import Catalog
from repro.core.options import ExecutionOptions
from repro.core.schema import Relation, Schema
from repro.serving import (
    AdmissionError,
    BrokerSubscription,
    DeltaServer,
    QueryBroker,
    plan_fingerprint,
)
from repro.sql.catalog import SqlSession
from repro.streaming import CallbackSource, SubscriberOverflow

SQL = "SELECT k, COUNT(*) FROM t GROUP BY k"


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.register(Relation(
        "t", Schema.of("k", "v"), [(i % 4, i) for i in range(200)]))
    return catalog


@pytest.fixture
def broker():
    broker = QueryBroker()
    yield broker
    broker.close(wait=True, timeout=5.0)


def push_subscription(broker, catalog, **kwargs):
    """Subscribe against a never-ending push source (resident until
    detached); returns (subscription, source)."""
    session = SqlSession(catalog)
    source = CallbackSource(capacity=4096)
    subscription = broker.subscribe_plan(
        session.plan(SQL), sources={"t": source}, **kwargs)
    return subscription, source


class TestFingerprint:
    def test_same_plan_same_fingerprint(self, catalog):
        session = SqlSession(catalog)
        assert plan_fingerprint(session.plan(SQL)) == plan_fingerprint(
            session.plan(SQL))

    def test_different_sql_differs(self, catalog):
        session = SqlSession(catalog)
        other = "SELECT k, COUNT(*) FROM t WHERE v > 50 GROUP BY k"
        assert plan_fingerprint(session.plan(SQL)) != plan_fingerprint(
            session.plan(other))

    def test_pipeline_knobs_differ(self, catalog):
        plan = SqlSession(catalog).plan(SQL)
        a = plan_fingerprint(plan, None, ExecutionOptions(
            batch_size=64).resolve())
        b = plan_fingerprint(plan, None, ExecutionOptions(
            batch_size=128).resolve())
        assert a != b

    def test_subscriber_knobs_do_not_differ(self, catalog):
        plan = SqlSession(catalog).plan(SQL)
        a = plan_fingerprint(plan, None, ExecutionOptions(
            max_buffer=8, on_overflow="shed").resolve(64))
        b = plan_fingerprint(plan, None, ExecutionOptions(
            max_buffer=4096, on_overflow="block").resolve(64))
        assert a == b

    def test_relation_identity_not_value(self, catalog):
        other = Catalog()
        other.register(Relation(
            "t", Schema.of("k", "v"), [(i % 4, i) for i in range(200)]))
        a = plan_fingerprint(SqlSession(catalog).plan(SQL))
        b = plan_fingerprint(SqlSession(other).plan(SQL))
        assert a != b  # equal data, different objects: never wrongly dedupe


class TestTopologySharing:
    def test_two_sessions_share_one_resident_topology(self, catalog, broker):
        # slow replay keeps the topology resident across both subscribes
        options = ExecutionOptions(rate=100.0)
        s1 = SqlSession(catalog, broker=broker, tenant="alice")
        s2 = SqlSession(catalog, broker=broker, tenant="bob")
        sub1 = s1.stream(SQL, options=options)
        sub2 = s2.stream(SQL, options=options)
        assert broker.topology_count == 1
        assert sub1.fingerprint == sub2.fingerprint
        assert sub1.resident is sub2.resident
        info = broker.topologies()[0]
        assert info["subscribers"] == 2
        assert sorted(info["tenants"]) == ["alice", "bob"]
        deltas1 = sum(1 for _ in sub1)
        deltas2 = sum(1 for _ in sub2)
        assert deltas1 == deltas2 > 0
        # the 200 source rows were processed once, not once per session
        assert sub1.resident.query.cluster.stats.total_events == 200

    def test_both_subscribers_converge_to_batch_snapshot(self, catalog,
                                                         broker):
        session = SqlSession(catalog, broker=broker)
        sub1 = session.stream(SQL, options=ExecutionOptions(rate=100.0))
        sub2 = session.stream(SQL, options=ExecutionOptions(rate=100.0))
        for _ in sub1:
            pass
        for _ in sub2:
            pass
        expected = sorted(session.execute(SQL).results)
        assert sub1.snapshot() == expected
        assert sub2.snapshot() == expected

    def test_different_pipeline_options_get_separate_topologies(
            self, catalog, broker):
        session = SqlSession(catalog, broker=broker)
        sub1 = session.stream(SQL, options=ExecutionOptions(
            rate=100.0, batch_size=32))
        sub2 = session.stream(SQL, options=ExecutionOptions(
            rate=100.0, batch_size=64))
        assert broker.topology_count == 2
        assert sub1.fingerprint != sub2.fingerprint
        sub1.detach()
        sub2.detach()

    def test_subscription_is_context_manager(self, catalog, broker):
        session = SqlSession(catalog, broker=broker)
        with session.stream(SQL, options=ExecutionOptions(rate=100.0)) as sub:
            assert isinstance(sub, BrokerSubscription)
            assert broker.topology_count == 1
        assert wait_until(lambda: broker.topology_count == 0)


class TestSlowSubscriber:
    def test_stalled_subscriber_shed_fast_one_unaffected(self, catalog,
                                                         broker):
        fast, source = push_subscription(broker, catalog, tenant="fast")
        stalled = broker.subscribe_plan(
            SqlSession(catalog).plan(SQL), sources={"t": source},
            tenant="slow",
            options=ExecutionOptions(max_buffer=8, on_overflow="shed"))
        assert broker.topology_count == 1  # same topology despite knobs
        resident = fast.resident
        for i in range(200):
            source.push((i % 4, i), stream="t")
        # the fast subscriber drains everything the stalled one cannot
        popped = 0
        deadline = time.monotonic() + 5.0
        while popped < 200 and time.monotonic() < deadline:
            if fast.pop(block=True, timeout=0.2) is not None:
                popped += 1
        assert popped == 200
        assert wait_until(lambda: stalled.overflowed)
        with pytest.raises(SubscriberOverflow):
            stalled.pop()  # shed ring is terminal
        # pipeline kept running: topology resident, fast seat intact
        assert broker.topology_count == 1
        assert resident.subscribers == 1
        assert broker.metrics.get("slow", "shed") == 1
        assert broker.metrics.get("fast", "shed") == 0
        fast.detach()
        assert wait_until(lambda: broker.topology_count == 0)

    def test_shed_releases_the_seat(self, catalog, broker):
        only, source = push_subscription(
            broker, catalog, tenant="only",
            options=ExecutionOptions(max_buffer=4, on_overflow="shed"))
        for i in range(100):
            source.push((i % 4, i), stream="t")
        # the sole subscriber overflows; its shed must tear the topology
        # down exactly like an explicit detach would
        assert wait_until(lambda: broker.topology_count == 0)
        assert only.overflowed


class TestRefcountTeardown:
    def test_last_detach_stops_the_topology(self, catalog, broker):
        sub1, source = push_subscription(broker, catalog)
        sub2 = broker.subscribe_plan(
            SqlSession(catalog).plan(SQL), sources={"t": source})
        resident = sub1.resident
        assert broker.topology_count == 1
        assert resident.subscribers == 2
        sub1.detach()
        assert broker.topology_count == 1  # still one seat left
        assert resident.subscribers == 1
        sub2.detach()
        assert wait_until(lambda: broker.topology_count == 0)
        assert wait_until(lambda: resident.query.done)

    def test_detach_is_idempotent(self, catalog, broker):
        sub, _source = push_subscription(broker, catalog)
        sub.detach()
        sub.detach()
        assert wait_until(lambda: broker.topology_count == 0)
        assert broker.metrics.get("default", "detached") == 1

    def test_natural_exhaustion_tears_down(self, catalog, broker):
        session = SqlSession(catalog, broker=broker)
        sub = session.stream(SQL)  # unthrottled finite replay
        for _ in sub:
            pass
        assert wait_until(lambda: broker.topology_count == 0)
        assert sub.snapshot() == sorted(session.execute(SQL).results)


class TestAdmission:
    def test_max_topologies(self, catalog):
        broker = QueryBroker(max_topologies=1)
        sub, _source = push_subscription(broker, catalog)
        session = SqlSession(catalog, broker=broker)
        with pytest.raises(AdmissionError, match="registry full"):
            session.stream("SELECT k, COUNT(*) FROM t "
                           "WHERE v > 50 GROUP BY k")
        assert broker.metrics.get("default", "refused") == 1
        sub.detach()
        broker.close()

    def test_max_subscribers_per_topology(self, catalog):
        broker = QueryBroker(max_subscribers_per_topology=1)
        sub, source = push_subscription(broker, catalog)
        with pytest.raises(AdmissionError, match="subscriber cap"):
            broker.subscribe_plan(
                SqlSession(catalog).plan(SQL), sources={"t": source})
        sub.detach()
        broker.close()

    def test_max_subscribers_per_tenant(self, catalog):
        broker = QueryBroker(max_subscribers_per_tenant=1)
        sub, source = push_subscription(broker, catalog, tenant="alice")
        with pytest.raises(AdmissionError, match="quota"):
            broker.subscribe_plan(
                SqlSession(catalog).plan(SQL), sources={"t": source},
                tenant="alice")
        # a different tenant still fits on the same topology
        other = broker.subscribe_plan(
            SqlSession(catalog).plan(SQL), sources={"t": source},
            tenant="bob")
        assert broker.metrics.get("alice", "refused") == 1
        assert broker.metrics.get("bob", "admitted") == 1
        sub.detach()
        other.detach()
        broker.close()


class TestMetricsAndStats:
    def test_per_tenant_counters(self, catalog, broker):
        session = SqlSession(catalog, broker=broker, tenant="alice")
        sub = session.stream(SQL)
        count = sum(1 for _ in sub)
        assert wait_until(lambda: broker.metrics.get("alice", "detached") == 1)
        assert broker.metrics.get("alice", "admitted") == 1
        assert broker.metrics.get("alice", "published") == count > 0
        snapshot = broker.metrics.snapshot()
        assert snapshot["alice"]["admitted"] == 1
        assert "alice" in broker.metrics.summary()

    def test_subscription_stats(self, catalog, broker):
        sub, source = push_subscription(broker, catalog, tenant="alice")
        for i in range(8):
            source.push((i % 4, i), stream="t")
        assert wait_until(lambda: sub.subscription.published >= 8)
        stats = sub.stats()
        assert stats["tenant"] == "alice"
        assert stats["fingerprint"] == sub.fingerprint
        assert stats["subscribers"] == 1
        assert stats["published"] >= 8
        assert stats["events"] >= 8
        sub.detach()

    def test_broker_stats_shape(self, catalog, broker):
        sub, _source = push_subscription(broker, catalog)
        stats = broker.stats()
        assert len(stats["topologies"]) == 1
        assert stats["topologies"][0]["subscribers"] == 1
        assert "default" in stats["tenants"]
        sub.detach()

    def test_watermark_age_tracks_staleness(self):
        from repro.storm.metrics import StreamMetrics

        now = [100.0]
        metrics = StreamMetrics(clock=lambda: now[0])
        assert metrics.watermark_age() is None
        metrics.record_watermark(5.0)
        now[0] = 103.0
        assert metrics.watermark_age() == pytest.approx(3.0)
        metrics.record_watermark(6.0)
        assert metrics.watermark_age() == pytest.approx(0.0)


class TestConnectFrontDoor:
    def test_connect_returns_bound_session(self, catalog, broker):
        session = repro.connect(catalog, broker=broker, tenant="carol")
        assert session.broker is broker
        assert session.tenant == "carol"
        sub = session.stream(SQL, options=ExecutionOptions(rate=100.0))
        assert isinstance(sub, BrokerSubscription)
        assert sub.tenant == "carol"
        sub.detach()

    def test_connect_without_broker_runs_private_queries(self, catalog):
        session = repro.connect(catalog)
        query = session.stream(SQL)
        query.run()
        assert query.snapshot() == sorted(session.execute(SQL).results)

    def test_public_exports(self):
        assert repro.ExecutionOptions is ExecutionOptions
        assert repro.SubscriberOverflow is SubscriberOverflow
        assert repro.QueryBroker is QueryBroker
        for name in ("connect", "ExecutionOptions", "Subscription",
                     "SubscriberOverflow", "QueryBroker", "DeltaServer"):
            assert name in repro.__all__


class TestDeltaServer:
    def test_serves_deltas_then_end(self, catalog):
        async def scenario():
            async with DeltaServer(catalog) as server:
                return await client_exchange(server, {"sql": SQL})

        frames = asyncio.run(scenario())
        kinds = [kind for kind, _payload in frames]
        assert kinds[-1] == "end"
        deltas = [payload for kind, payload in frames if kind == "delta"]
        assert deltas
        assert {d["sign"] for d in deltas} <= {1, -1}
        # the positive-minus-negative rollup is the batch answer
        session = SqlSession(catalog)
        expected = sorted(session.execute(SQL).results)
        state = {}
        for d in deltas:
            key = tuple(d["row"])
            state[key] = state.get(key, 0) + d["sign"]
        assert sorted(k for k, n in state.items() for _ in range(n)) == expected

    def test_bad_request_and_bad_query(self, catalog):
        async def scenario():
            async with DeltaServer(catalog) as server:
                bad_json = await client_exchange(server, "not json",
                                                 raw="nonsense\n")
                bad_sql = await client_exchange(
                    server, {"sql": "SELECT FROM"})
                bad_option = await client_exchange(
                    server, {"sql": SQL, "options": {"turbo": True}})
                return bad_json, bad_sql, bad_option

        bad_json, bad_sql, bad_option = asyncio.run(scenario())
        assert bad_json[0][1]["error"] == "bad_request"
        assert bad_sql[0][1]["error"] == "bad_query"
        assert bad_option[0][1]["error"] == "bad_request"
        assert "turbo" in bad_option[0][1]["detail"]

    def test_concurrent_clients_share_topology(self, catalog):
        async def scenario():
            async with DeltaServer(catalog) as server:
                request = {"sql": SQL, "options": {"rate": 100.0}}
                results = await asyncio.gather(
                    client_exchange(server, request),
                    client_exchange(server, request),
                )
                admitted = server.broker.metrics.get("default", "admitted")
                return results, admitted

        (frames1, frames2), admitted = asyncio.run(scenario())
        assert frames1[-1][0] == "end"
        assert frames2[-1][0] == "end"
        assert admitted == 2
        # both clients were served; dedupe meant at most one topology ran
        # per distinct plan (both requests are identical)
        stats1 = frames1[-1][1]["stats"]
        stats2 = frames2[-1][1]["stats"]
        assert stats1["fingerprint"] == stats2["fingerprint"]


async def client_exchange(server, request, raw=None):
    """Send one request line, collect frames until end/error."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    writer.write(raw.encode() if raw is not None
                 else (json.dumps(request) + "\n").encode())
    await writer.drain()
    frames = []
    while True:
        event_line = await reader.readline()
        if not event_line:
            break
        data_line = await reader.readline()
        await reader.readline()  # blank separator
        kind = event_line.decode().strip().split(": ", 1)[1]
        payload = json.loads(data_line.decode().strip().split(": ", 1)[1])
        frames.append((kind, payload))
        if kind in ("end", "error"):
            break
    writer.close()
    await writer.wait_closed()
    return frames
