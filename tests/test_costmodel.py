"""Tests for the bottleneck cost model and its calibration."""

import random

import pytest

from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Relation, Schema
from repro.costmodel import CostBreakdown, CostConstants, CostModel
from repro.engine import JoinComponent, PhysicalPlan, SourceComponent, run_plan
from repro.joins import HyLDOperator

from tests.conftest import interleaved_stream, make_rst_data


class TestCostBreakdown:
    def test_total_and_fractions(self):
        breakdown = CostBreakdown(read=26, selection=0, network=60, join_cpu=14)
        assert breakdown.total == 100
        fractions = breakdown.fractions()
        assert fractions["network"] == pytest.approx(0.60)
        assert fractions["join_cpu"] == pytest.approx(0.14)

    def test_empty_fractions(self):
        assert CostBreakdown().fractions() == {}

    def test_scaled(self):
        breakdown = CostBreakdown(read=10).scaled(2.0)
        assert breakdown.read == 20

    def test_str_renders(self):
        assert "total=" in str(CostBreakdown(read=1.0))


class TestConstants:
    def test_selection_cost_classes(self):
        constants = CostConstants()
        assert constants.selection_cost("date") > 5 * constants.selection_cost("int")
        assert constants.selection_cost("noop") < constants.selection_cost("int")

    def test_calibration_ratios_match_figure5(self):
        """network/read ~ 60/26, date-selection/read ~ 16/26."""
        constants = CostConstants()
        assert constants.network_per_tuple / constants.read_per_tuple == \
            pytest.approx(60 / 26, rel=0.01)
        assert constants.selection_date_per_tuple / constants.read_per_tuple == \
            pytest.approx(16 / 26, rel=0.05)

    def test_traditional_unit_cost_is_12x_dbtoaster(self):
        """Calibrated so Figure 8's end-to-end gaps reproduce: the paper
        reports DBToaster 'orders of magnitude' faster locally."""
        constants = CostConstants()
        ratio = (constants.join_cost("traditional")
                 / constants.join_cost("dbtoaster"))
        assert ratio == pytest.approx(12.0)

    def test_unknown_local_join_rejected(self):
        with pytest.raises(KeyError, match="no calibrated cost"):
            CostConstants().join_cost("mystery")


class TestHyLDCost:
    def test_replication_increases_network_cost(self, rst_spec):
        data = make_rst_data(seed=90, n=200)
        model = CostModel()
        costs = {}
        for scheme in ("hash", "random"):
            op = HyLDOperator(rst_spec, 16, scheme=scheme, collect_outputs=False)
            stats = op.run(interleaved_stream(data))
            costs[scheme] = model.hyld_cost(stats)
        assert costs["random"].network > costs["hash"].network

    def test_selection_class_priced(self, rst_spec):
        data = make_rst_data(seed=91, n=50)
        op = HyLDOperator(rst_spec, 4, collect_outputs=False)
        stats = op.run(interleaved_stream(data))
        model = CostModel()
        with_date = model.hyld_cost(stats, selection_class="date")
        with_int = model.hyld_cost(stats, selection_class="int")
        plain = model.hyld_cost(stats)
        assert with_date.selection > with_int.selection > 0
        assert plain.selection == 0

    def test_pipeline_cost_combines(self):
        model = CostModel()
        combined = model.pipeline_cost([
            CostBreakdown(read=1, network=2), CostBreakdown(join_cpu=3),
        ])
        assert combined.total == 6


class TestRunCost:
    def test_engine_run_priced(self):
        rng = random.Random(92)
        R = Relation("R", Schema.of("k", "v"),
                     [(rng.randrange(10), i) for i in range(60)])
        S = Relation("S", Schema.of("k", "w"),
                     [(rng.randrange(10), i) for i in range(60)])
        spec = JoinSpec(
            [RelationInfo("R", R.schema, 60), RelationInfo("S", S.schema, 60)],
            [EquiCondition(("R", "k"), ("S", "k"))],
        )
        plan = PhysicalPlan(
            sources=[SourceComponent("R", R), SourceComponent("S", S)],
            joins=[JoinComponent("J", spec, machines=4)],
        )
        result = run_plan(plan)
        breakdown = CostModel().run_cost(result)
        assert breakdown.read > 0
        assert breakdown.network > 0
        assert breakdown.join_cpu > 0
        assert breakdown.total == pytest.approx(
            breakdown.read + breakdown.selection + breakdown.network
            + breakdown.join_cpu + breakdown.output
        )

    def test_seconds_scaling(self):
        constants = CostConstants(seconds_per_unit=0.5)
        breakdown = CostModel(constants).pipeline_cost([CostBreakdown(read=10)])
        assert breakdown.read == 10  # pipeline_cost does not rescale
