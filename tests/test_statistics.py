"""Tests for repro.core.statistics."""

import random

import pytest

from repro.core.statistics import (
    AttributeProfiler,
    AttributeStats,
    ReservoirSample,
    SkewDetector,
    SpaceSaving,
    profile_column,
    sample_relation,
)


class TestReservoirSample:
    def test_keeps_everything_below_capacity(self):
        sample = ReservoirSample(10)
        sample.extend(range(5))
        assert sorted(sample.items) == [0, 1, 2, 3, 4]

    def test_capacity_respected(self):
        sample = ReservoirSample(10)
        sample.extend(range(1000))
        assert len(sample) == 10
        assert sample.seen == 1000

    def test_roughly_uniform(self):
        # each element should appear with probability k/n
        hits = 0
        for seed in range(200):
            sample = ReservoirSample(10, seed=seed)
            sample.extend(range(100))
            if 5 in sample.items:
                hits += 1
        assert 5 <= hits <= 40  # expectation 20, generous bounds

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)


class TestSpaceSaving:
    def test_exact_when_under_capacity(self):
        sketch = SpaceSaving(10)
        sketch.extend(["a", "a", "b"])
        assert sketch.estimate("a") == 2
        assert sketch.guaranteed_count("a") == 2

    def test_top_ordering(self):
        sketch = SpaceSaving(10)
        sketch.extend(["a"] * 5 + ["b"] * 3 + ["c"])
        assert [key for key, _ in sketch.top(2)] == ["a", "b"]

    def test_heavy_hitter_survives_eviction(self):
        sketch = SpaceSaving(4)
        stream = ["hot"] * 500 + [f"cold{i}" for i in range(200)]
        random.Random(0).shuffle(stream)
        sketch.extend(stream)
        top_key, top_count = sketch.top(1)[0]
        assert top_key == "hot"
        # SpaceSaving never underestimates
        assert top_count >= 500

    def test_overestimation_bounded_by_n_over_k(self):
        sketch = SpaceSaving(8)
        stream = [f"k{i % 40}" for i in range(400)]
        sketch.extend(stream)
        for key, estimate in sketch.top(8):
            true_count = stream.count(key)
            assert estimate - true_count <= 400 // 8

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)


class TestAttributeProfiler:
    def test_stats_on_uniform_column(self):
        stats = profile_column(i % 50 for i in range(500))
        assert stats.count == 500
        assert stats.distinct == 50
        assert stats.top_frequency == pytest.approx(1 / 50, rel=0.01)

    def test_stats_on_skewed_column(self):
        column = [0] * 500 + list(range(1, 101))
        stats = profile_column(column)
        assert stats.top_key == 0
        assert stats.top_frequency == pytest.approx(500 / 600, rel=0.05)

    def test_empty_column(self):
        stats = profile_column([])
        assert stats.count == 0
        assert stats.distinct == 0

    def test_uniform_share(self):
        stats = AttributeStats(count=100, distinct=4, top_key=1, top_frequency=0.3)
        assert stats.uniform_share == 0.25

    def test_distinct_cap_saturation(self):
        profiler = AttributeProfiler(distinct_cap=10)
        profiler.extend(range(100))
        assert profiler.stats().distinct == 10  # lower bound once saturated


class TestSkewDetector:
    def test_heavy_key_detected(self):
        stats = AttributeStats(count=1000, distinct=100, top_key="hot",
                               top_frequency=0.5)
        assert SkewDetector().is_skewed(stats, parallelism=8)

    def test_uniform_not_detected(self):
        stats = AttributeStats(count=1000, distinct=100, top_key=1,
                               top_frequency=0.01)
        assert not SkewDetector().is_skewed(stats, parallelism=8)

    def test_small_domain_rule(self):
        # fewer distinct keys than machines leaves machines idle under hash
        stats = AttributeStats(count=1000, distinct=5, top_key=1,
                               top_frequency=0.2)
        assert SkewDetector().is_skewed(stats, parallelism=8)
        assert not SkewDetector().is_skewed(stats, parallelism=4)

    def test_single_machine_never_skewed(self):
        stats = AttributeStats(count=10, distinct=1, top_key=1, top_frequency=1.0)
        assert not SkewDetector().is_skewed(stats, parallelism=1)

    def test_heavy_factor_configurable(self):
        stats = AttributeStats(count=1000, distinct=1000, top_key=1,
                               top_frequency=0.3)
        assert SkewDetector(heavy_factor=2.0).is_skewed(stats, parallelism=8)
        assert not SkewDetector(heavy_factor=4.0).is_skewed(stats, parallelism=8)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            SkewDetector(heavy_factor=0)


class TestSampleRelation:
    def test_fraction_respected(self):
        rows = [(i,) for i in range(10_000)]
        sample = sample_relation(rows, 0.1, seed=1)
        assert 800 <= len(sample) <= 1200

    def test_cap(self):
        rows = [(i,) for i in range(10_000)]
        sample = sample_relation(rows, 0.5, cap=100)
        assert len(sample) == 100

    def test_full_fraction_keeps_everything(self):
        rows = [(i,) for i in range(50)]
        assert len(sample_relation(rows, 1.0)) == 50

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            sample_relation([(1,)], 0.0)
