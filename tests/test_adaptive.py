"""Tests for the Adaptive 1-Bucket operator."""

import pytest

from repro.partitioning.adaptive import AdaptiveOneBucket


class TestAdaptiveOneBucket:
    def test_reshapes_when_ratio_drifts(self):
        """Only R tuples at first (wants p x 1), then S floods in: the
        matrix must reshape towards balance."""
        op = AdaptiveOneBucket("R", "S", 16, seed=0, check_interval=64)
        for i in range(512):
            op.route("R", (i,))
        shape_early = (op.rows, op.cols)
        for i in range(4096):
            op.route("S", (i,))
        assert op.reshapes, "expected at least one reshape"
        assert (op.rows, op.cols) != shape_early
        assert op.cols > op.rows  # S now dominates

    def test_no_reshape_when_balanced(self):
        op = AdaptiveOneBucket("R", "S", 16, seed=0, check_interval=64,
                               initial_shape=(4, 4))
        for i in range(1000):
            op.route("R", (i,))
            op.route("S", (i,))
        assert not op.reshapes

    def test_migration_counted(self):
        op = AdaptiveOneBucket("R", "S", 16, seed=1, check_interval=32,
                               initial_shape=(4, 4))
        for i in range(64):
            op.route("R", (i,))
        for i in range(2048):
            op.route("S", (i,))
        if op.reshapes:
            assert op.migrated_tuples > 0
            assert op.migrated_tuples == sum(e.migrated_tuples for e in op.reshapes)

    def test_pairs_meet_after_reshape(self):
        """Stored tuples are remapped consistently: any stored left tuple and
        any later right tuple must share exactly one machine under the
        current shape."""
        op = AdaptiveOneBucket("R", "S", 12, seed=2, check_interval=16)
        stored_left = []
        for i in range(128):
            _machines, tuple_id = op.route("R", (i,))
            stored_left.append(tuple_id)
        for i in range(1024):
            machines, _tid = op.route("S", (i,))
            if i % 100 == 0:
                for left_id in stored_left[:20]:
                    left_machines = set(op.machines_for("R", left_id))
                    assert len(left_machines & set(machines)) == 1

    def test_load_tracks_optimal_within_factor(self):
        """After adaptation the max load must be close to the offline
        optimum for the final cardinalities (Adaptive 1-Bucket's guarantee)."""
        op = AdaptiveOneBucket("R", "S", 16, seed=3, check_interval=64)
        for i in range(256):
            op.route("R", (i,))
        for i in range(3840):
            op.route("S", (i,))
        from repro.partitioning.two_way import choose_matrix
        rows, cols = choose_matrix(16, 256, 3840)
        optimal = 256 / rows + 3840 / cols
        assert op.current_max_load() <= 2.0 * optimal

    def test_content_insensitive(self):
        op = AdaptiveOneBucket("R", "S", 8)
        assert not op.is_content_sensitive()

    def test_describe_mentions_reshapes(self):
        op = AdaptiveOneBucket("R", "S", 8)
        assert "Adaptive 1-Bucket" in op.describe()

    def test_destinations_interface(self):
        op = AdaptiveOneBucket("R", "S", 8, initial_shape=(2, 4))
        assert len(op.destinations("R", (1,))) == 4  # replicated across cols
        assert len(op.destinations("S", (1,))) == 2  # replicated across rows

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveOneBucket("R", "S", 0)
        with pytest.raises(ValueError):
            AdaptiveOneBucket("R", "S", 8, check_interval=0)

    def test_unknown_relation(self):
        op = AdaptiveOneBucket("R", "S", 8)
        with pytest.raises(KeyError):
            op.route("Q", (1,))
