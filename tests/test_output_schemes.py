"""Tests for output schemes (common subexpression elimination)."""

import pytest

from repro.core.schema import Schema
from repro.engine.output import compute_output_scheme, remap_positions


class TestComputeOutputScheme:
    def test_selects_needed_positions(self):
        schema = Schema.of("R.x", "R.y", "S.y", "S.z")
        positions, projected = compute_output_scheme(schema, ["S.z", "R.x"])
        assert positions == [3, 0]
        assert projected.names == ("S.z", "R.x")

    def test_duplicates_collapsed(self):
        schema = Schema.of("a", "b")
        positions, projected = compute_output_scheme(schema, ["b", "b", "a"])
        assert positions == [1, 0]
        assert projected.names == ("b", "a")

    def test_unknown_column_raises(self):
        schema = Schema.of("a")
        with pytest.raises(KeyError):
            compute_output_scheme(schema, ["ghost"])

    def test_empty_needed_is_maximal_reduction(self):
        """COUNT(*) with no grouping ships empty tuples."""
        schema = Schema.of("a", "b")
        positions, projected = compute_output_scheme(schema, [])
        assert positions == []
        assert projected.arity == 0

    def test_types_preserved(self):
        schema = Schema.of("a:str", "b:float")
        _positions, projected = compute_output_scheme(schema, ["b"])
        assert projected.field("b").type == "float"


class TestRemapPositions:
    def test_remaps_to_projected_row(self):
        # full row positions [3, 0] were kept, in that order
        assert remap_positions([0, 3], [3, 0]) == [1, 0]

    def test_projected_away_position_rejected(self):
        with pytest.raises(ValueError, match="projected away"):
            remap_positions([2], [3, 0])

    def test_identity(self):
        assert remap_positions([0, 1, 2], [0, 1, 2]) == [0, 1, 2]
