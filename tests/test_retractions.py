"""Retraction-path coverage: ``:retract`` streams end to end.

A failure that replays tuples is compensated by emitting matching
retractions: ``JoinBolt`` turns an upstream ``R:retract`` into deletes on
the local join and propagates the retracted output rows downstream, the
aggregation consumes them with sign -1, and ``SinkBolt`` removes them
from the collected results.  After compensation, the final results must
be indistinguishable from a run that never saw the failure.
"""

from collections import Counter

import pytest

from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
from repro.core.schema import Schema
from repro.engine.component import AggComponent, JoinComponent
from repro.engine.operators import count, total
from repro.engine.runner import RETRACT_SUFFIX, AggBolt, JoinBolt, SinkBolt
from repro.joins.dbtoaster import DBToasterJoin
from repro.joins.traditional import TraditionalJoin
from repro.partitioning.hash_hypercube import HashHypercube
from repro.storm import LocalCluster, Spout, TopologyBuilder
from repro.storm.groupings import HypercubeGrouping
from tests.conftest import interleaved_stream, make_rst_data

LOCAL_JOINS = {"dbtoaster": DBToasterJoin, "traditional": TraditionalJoin}


def rst_spec():
    return JoinSpec(
        [
            RelationInfo("R", Schema.of("x", "y"), 1000),
            RelationInfo("S", Schema.of("y", "z"), 1000),
            RelationInfo("T", Schema.of("z", "t"), 1000),
        ],
        [
            EquiCondition(("R", "y"), ("S", "y")),
            EquiCondition(("S", "z"), ("T", "z")),
        ],
    )


class ScriptSpout(Spout):
    """Replays a fixed script of (stream, values) emissions."""

    def __init__(self, emissions):
        self._emissions = list(emissions)
        self._position = 0

    def open(self, task_index, parallelism):
        if parallelism != 1:
            raise ValueError("ScriptSpout is single-task")

    def next_tuple(self):
        if self._position >= len(self._emissions):
            return None
        emission = self._emissions[self._position]
        self._position += 1
        return emission


class TestSinkBoltRetraction:
    def test_retract_stream_removes_one_instance(self):
        store = []
        sink = SinkBolt(store)
        sink.execute("J", "J", (1, 2))
        sink.execute("J", "J", (1, 2))
        sink.execute("J", "J" + RETRACT_SUFFIX, (1, 2))
        assert store == [(1, 2)]

    def test_retract_of_absent_row_is_ignored(self):
        store = []
        sink = SinkBolt(store)
        assert sink.execute("J", "J" + RETRACT_SUFFIX, (9, 9)) == []
        assert store == []

    def test_batched_retracts_match_per_tuple(self):
        rows = [(i,) for i in range(6)]
        per_tuple_store, batch_store = [], []
        per_tuple, batched = SinkBolt(per_tuple_store), SinkBolt(batch_store)
        for sink in (per_tuple, batched):
            sink.execute_batch("J", "J", rows + rows)
        for row in rows[:3] + [(99,)]:
            per_tuple.execute("J", "J" + RETRACT_SUFFIX, row)
        batched.execute_batch("J", "J" + RETRACT_SUFFIX, rows[:3] + [(99,)])
        assert per_tuple_store == batch_store
        assert Counter(batch_store) == Counter(rows + rows[3:])


@pytest.mark.parametrize("local_join", sorted(LOCAL_JOINS))
class TestJoinBoltRetraction:
    def make_bolt(self, local_join, output_positions=None):
        spec = rst_spec()
        component = JoinComponent("J", spec, machines=1,
                                  output_positions=output_positions)
        return JoinBolt(component, lambda: LOCAL_JOINS[local_join](spec))

    def test_delete_propagates_as_retract_stream(self, local_join):
        bolt = self.make_bolt(local_join)
        bolt.execute("R", "R", (1, 2))
        bolt.execute("S", "S", (2, 3))
        inserted = bolt.execute("T", "T", (3, 4))
        assert [stream for stream, _row in inserted] == ["J"]
        retracted = bolt.execute("R", "R" + RETRACT_SUFFIX, (1, 2))
        assert retracted == [("J" + RETRACT_SUFFIX, (1, 2, 2, 3, 3, 4))]

    def test_delete_respects_output_scheme(self, local_join):
        bolt = self.make_bolt(local_join, output_positions=[0, 5])
        bolt.execute("R", "R", (1, 2))
        bolt.execute("S", "S", (2, 3))
        bolt.execute("T", "T", (3, 4))
        retracted = bolt.execute("T", "T" + RETRACT_SUFFIX, (3, 4))
        assert retracted == [("J" + RETRACT_SUFFIX, (1, 4))]

    def test_batched_retraction_matches_per_tuple(self, local_join):
        data = make_rst_data(seed=21, n=15)
        stream = interleaved_stream(data, seed=21)
        per_tuple = self.make_bolt(local_join)
        batched = self.make_bolt(local_join)
        for rel_name, row in stream:
            per_tuple.execute(rel_name, rel_name, row)
        for rel_name in ("R", "S", "T"):
            batched.execute_batch(rel_name, rel_name, data[rel_name])
        doomed = data["S"][:4]
        per_tuple_out = []
        for row in doomed:
            per_tuple_out.extend(
                per_tuple.execute("S", "S" + RETRACT_SUFFIX, row))
        batch_out = batched.execute_batch("S", "S" + RETRACT_SUFFIX, doomed)
        assert Counter(batch_out) == Counter(per_tuple_out)
        assert all(stream == "J" + RETRACT_SUFFIX for stream, _r in batch_out)
        assert per_tuple.state_size() == batched.state_size()


def build_rst_topology(spec, emissions, local_join, machines=4,
                       aggregate=False):
    """ScriptSpout -> hypercube-partitioned joiners -> [agg] -> sink."""
    builder = TopologyBuilder()
    partitioner = HashHypercube.build(spec, machines, seed=3)
    builder.set_spout("feed", lambda i, p: ScriptSpout(emissions))
    join = JoinComponent("J", spec, machines=machines)
    declarer = builder.set_bolt(
        "J", lambda i, p: JoinBolt(join, lambda: LOCAL_JOINS[local_join](spec)),
        parallelism=machines)
    for rel_name in spec.relation_names:
        declarer.custom_grouping(
            "feed", HypercubeGrouping(partitioner, rel_name),
            streams=[rel_name, rel_name + RETRACT_SUFFIX])
    last = "J"
    if aggregate:
        agg = AggComponent("agg", group_positions=[1],
                           aggregates=[count(), total(5)])
        builder.set_bolt("agg", lambda i, p: AggBolt(agg)).global_grouping(
            "J", streams=["J", "J" + RETRACT_SUFFIX])
        last = "agg"
    results = []
    builder.set_bolt("sink", lambda i, p: SinkBolt(results)).global_grouping(
        last, streams=[last, last + RETRACT_SUFFIX])
    return builder.build(), results


def faulty_script(data, seed):
    """The clean stream plus replayed tuples and their compensations.

    Mimics recovery after a partial failure: a handful of tuples of every
    relation are delivered twice mid-stream, and once the failure is
    detected the duplicates are retracted.
    """
    clean = [(rel, row) for rel, row in interleaved_stream(data, seed=seed)]
    replayed = [(rel, row) for rel, row in clean[::9]]
    script = list(clean)
    script[20:20] = replayed  # duplicates appear mid-stream
    script.extend((rel + RETRACT_SUFFIX, row) for rel, row in replayed)
    return [(stream, row) for stream, row in script]


@pytest.mark.parametrize("local_join", sorted(LOCAL_JOINS))
@pytest.mark.parametrize("batch_size", [1, 8])
@pytest.mark.parametrize("aggregate", [False, True])
def test_compensated_failure_matches_clean_run(local_join, batch_size,
                                               aggregate):
    spec = rst_spec()
    data = make_rst_data(seed=33, n=24)
    clean_script = list(interleaved_stream(data, seed=33))
    clean_topology, clean_results = build_rst_topology(
        spec, clean_script, local_join, aggregate=aggregate)
    LocalCluster(clean_topology).run(batch_size=batch_size)

    faulty_topology, faulty_results = build_rst_topology(
        spec, faulty_script(data, seed=33), local_join, aggregate=aggregate)
    LocalCluster(faulty_topology).run(batch_size=batch_size)

    assert Counter(faulty_results) == Counter(clean_results)
    assert clean_results  # the comparison is not vacuous
