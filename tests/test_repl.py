"""Tests for the interactive shell (the paper's interactive interface)."""

import pytest

from repro.core.optimizer import OptimizerOptions
from repro.datasets import TPCHGenerator
from repro.sql.catalog import SqlSession
from repro.sql.repl import SquallShell


@pytest.fixture
def shell():
    tables = TPCHGenerator(scale=0.2, seed=4).generate(["customer", "orders"])
    session = SqlSession(options=OptimizerOptions(machines=2))
    for relation in tables.values():
        session.register(relation)
    return SquallShell(session)


class TestMetaCommands:
    def test_empty_line(self, shell):
        assert shell.handle_line("   ") == ""

    def test_tables(self, shell):
        output = shell.handle_line("\\tables")
        assert "customer" in output
        assert "orders" in output

    def test_tables_empty_catalog(self):
        assert "no relations" in SquallShell().handle_line("\\tables")

    def test_schema(self, shell):
        output = shell.handle_line("\\schema customer")
        assert "custkey" in output
        assert "mktsegment" in output

    def test_schema_unknown_table(self, shell):
        assert "error" in shell.handle_line("\\schema warehouse")

    def test_schema_usage(self, shell):
        assert "usage" in shell.handle_line("\\schema")

    def test_help(self, shell):
        output = shell.handle_line("\\help")
        assert "\\explain" in output

    def test_quit(self, shell):
        assert shell.handle_line("\\quit") == "bye"
        assert shell.finished

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.handle_line("\\frobnicate")

    def test_explain(self, shell):
        output = shell.handle_line(
            "\\explain SELECT COUNT(*) FROM customer, orders "
            "WHERE customer.custkey = orders.custkey"
        )
        assert "LogicalPlan" in output
        assert "scheme=" in output

    def test_explain_bad_sql(self, shell):
        assert "error" in shell.handle_line("\\explain SELECT FROM")

    def test_explain_usage(self, shell):
        assert "usage" in shell.handle_line("\\explain")


class TestSetOption:
    def test_set_machines(self, shell):
        assert shell.handle_line("\\set machines 6") == "machines = 6"
        assert shell.session.options.machines == 6

    def test_set_machines_not_integer(self, shell):
        assert "integer" in shell.handle_line("\\set machines many")

    def test_set_scheme(self, shell):
        assert shell.handle_line("\\set scheme random") == "scheme = random"
        assert shell.session.options.scheme == "random"

    def test_set_scheme_invalid(self, shell):
        assert "must be" in shell.handle_line("\\set scheme quantum")

    def test_set_mode(self, shell):
        assert shell.handle_line("\\set mode pipeline") == "mode = pipeline"

    def test_set_local(self, shell):
        assert shell.handle_line("\\set local traditional") == "local = traditional"

    def test_set_usage(self, shell):
        assert "usage" in shell.handle_line("\\set machines")

    def test_set_unknown_option(self, shell):
        assert "unknown option" in shell.handle_line("\\set color blue")

    def test_set_batch_size(self, shell):
        assert shell.handle_line("\\set batch_size 256") == "batch_size = 256"
        assert shell.batch_size == 256

    def test_set_batch_size_rejects_non_integer(self, shell):
        assert "integer" in shell.handle_line("\\set batch_size huge")
        assert shell.batch_size == 1

    def test_set_batch_size_rejects_non_positive(self, shell):
        assert ">= 1" in shell.handle_line("\\set batch_size 0")

    def test_set_executor(self, shell):
        assert shell.handle_line("\\set executor threads") == "executor = threads"
        assert shell.executor == "threads"

    def test_set_executor_invalid(self, shell):
        assert "must be" in shell.handle_line("\\set executor goroutines")
        assert shell.executor == "inline"

    def test_set_parallelism(self, shell):
        assert shell.handle_line("\\set parallelism 2") == "parallelism = 2"
        assert shell.parallelism == 2

    def test_set_parallelism_auto(self, shell):
        shell.handle_line("\\set parallelism 2")
        assert shell.handle_line("\\set parallelism auto") == "parallelism = auto"
        assert shell.parallelism is None

    def test_set_parallelism_invalid(self, shell):
        assert "integer" in shell.handle_line("\\set parallelism some")
        assert ">= 1" in shell.handle_line("\\set parallelism 0")

    def test_set_without_args_lists_all_options(self, shell):
        shell.handle_line("\\set batch_size 64")
        output = shell.handle_line("\\set")
        for line in ("machines = 2", "scheme = auto", "mode = multiway",
                     "local = dbtoaster", "batch_size = 64",
                     "executor = inline", "parallelism = auto",
                     "columnar = auto", "rate = none", "max_buffer = none",
                     "on_overflow = shed"):
            assert line in output

    def test_set_rate(self, shell):
        assert shell.handle_line("\\set rate 500") == "rate = 500"
        assert shell.watch_rate == 500.0
        assert shell.handle_line("\\set rate none") == "rate = none"
        assert shell.watch_rate is None
        assert "positive" in shell.handle_line("\\set rate -3")
        assert "number" in shell.handle_line("\\set rate fast")

    def test_set_watch_rate_alias_still_accepted(self, shell):
        assert shell.handle_line("\\set watch_rate 500") == "rate = 500"
        assert shell.execution.rate == 500.0

    def test_set_columnar(self, shell):
        assert shell.handle_line("\\set columnar on") == "columnar = on"
        assert shell.execution.columnar is True
        assert shell.handle_line("\\set columnar auto") == "columnar = auto"
        assert shell.execution.columnar is None
        assert "must be" in shell.handle_line("\\set columnar sideways")

    def test_legacy_knob_attributes_stay_assignable(self, shell):
        """Scripts that poked the old per-knob attributes keep working:
        the compatibility properties are read/write."""
        shell.batch_size = 8
        assert shell.execution.batch_size == 8
        shell.executor = "threads"
        assert shell.execution.executor == "threads"
        shell.parallelism = 2
        assert shell.execution.parallelism == 2
        shell.watch_rate = 50.0
        assert shell.execution.rate == 50.0
        assert shell.batch_size == 8 and shell.watch_rate == 50.0

    def test_set_subscriber_knobs(self, shell):
        assert shell.handle_line("\\set max_buffer 256") == "max_buffer = 256"
        assert shell.execution.max_buffer == 256
        assert ">= 1" in shell.handle_line("\\set max_buffer 0")
        assert shell.handle_line("\\set on_overflow block") == "on_overflow = block"
        assert shell.execution.on_overflow == "block"
        assert "must be" in shell.handle_line("\\set on_overflow panic")

    def test_execution_knobs_reach_the_engine(self, shell, monkeypatch):
        """The \\set knobs must actually be passed to session.execute."""
        captured = {}
        real_execute = shell.session.execute

        def spy(sql, **kwargs):
            captured.update(kwargs)
            return real_execute(sql, **kwargs)

        monkeypatch.setattr(shell.session, "execute", spy)
        shell.handle_line("\\set batch_size 128")
        shell.handle_line("\\set executor threads")
        shell.handle_line("\\set parallelism 2")
        output = shell.handle_line(
            "SELECT COUNT(*) FROM customer, orders "
            "WHERE customer.custkey = orders.custkey")
        assert "rows" in output
        options = captured["options"]
        assert options.batch_size == 128
        assert options.executor == "threads"
        assert options.parallelism == 2


class TestSqlExecution:
    def test_query_renders_rows_and_monitors(self, shell):
        output = shell.handle_line(
            "SELECT customer.mktsegment, COUNT(*) FROM customer, orders "
            "WHERE customer.custkey = orders.custkey "
            "GROUP BY customer.mktsegment"
        )
        assert "rows" in output
        assert "hypercube" in output  # partitioner info in the footer

    def test_query_error_reported(self, shell):
        output = shell.handle_line("SELECT COUNT(*) FROM nowhere")
        assert output.startswith("error:")

    def test_row_limit(self, shell):
        shell.max_rows = 2
        output = shell.handle_line(
            "SELECT customer.custkey, COUNT(*) FROM customer, orders "
            "WHERE customer.custkey = orders.custkey GROUP BY customer.custkey"
        )
        assert "rows total" in output

    def test_options_affect_execution(self, shell):
        shell.handle_line("\\set scheme random")
        output = shell.handle_line(
            "SELECT COUNT(*) FROM customer, orders "
            "WHERE customer.custkey = orders.custkey"
        )
        assert "~customer" in output  # random-hypercube quasi dimensions


class TestWatch:
    def test_watch_usage(self, shell):
        assert "usage" in shell.handle_line("\\watch")

    def test_watch_streams_deltas_and_reports_snapshot(self, shell):
        shell.handle_line("\\set batch_size 32")
        output = shell.handle_line(
            "\\watch SELECT customer.mktsegment, COUNT(*) "
            "FROM customer, orders "
            "WHERE customer.custkey = orders.custkey "
            "GROUP BY customer.mktsegment"
        )
        assert output.splitlines()[0].startswith(("+ ", "- "))
        assert "watch complete" in output
        assert "final snapshot" in output

    def test_watch_snapshot_matches_execute(self, shell):
        sql = ("SELECT customer.mktsegment, COUNT(*) FROM customer, orders "
               "WHERE customer.custkey = orders.custkey "
               "GROUP BY customer.mktsegment")
        batch = shell.session.execute(sql)
        query = shell.session.stream(sql, batch_size=32).run()
        assert query.snapshot() == sorted(batch.results)

    def test_watch_reports_errors(self, shell):
        assert shell.handle_line("\\watch SELECT FROM").startswith("error:")

    def test_watch_announces_processes_downgrade(self, shell):
        shell.handle_line("\\set executor processes")
        output = shell.handle_line(
            "\\watch SELECT orders.orderpriority, COUNT(*) FROM orders "
            "GROUP BY orders.orderpriority")
        assert "cannot keep a topology resident" in output.splitlines()[0]
        assert "watch complete" in output


class TestObservability:
    SQL = ("SELECT customer.mktsegment, COUNT(*) FROM customer, orders "
           "WHERE customer.custkey = orders.custkey "
           "GROUP BY customer.mktsegment")

    def test_set_observe(self, shell):
        assert shell.handle_line("\\set observe metrics") == "observe = metrics"
        assert shell.execution.observe == "metrics"
        assert shell.handle_line("\\set observe trace") == "observe = trace"
        assert shell.handle_line("\\set observe off") == "observe = off"
        assert shell.execution.observe is None

    def test_set_observe_invalid(self, shell):
        assert "must be" in shell.handle_line("\\set observe loudly")
        assert shell.execution.observe is None

    def test_set_lists_observe(self, shell):
        assert "observe = off" in shell.handle_line("\\set")
        shell.handle_line("\\set observe trace")
        assert "observe = trace" in shell.handle_line("\\set")

    def test_help_mentions_stats(self, shell):
        output = shell.handle_line("\\help")
        assert "\\stats" in output
        assert "\\set observe" in output

    def test_stats_sql_profiles_one_observed_run(self, shell):
        output = shell.handle_line(f"\\stats {self.SQL}")
        for column in ("operator", "p50 ms", "p95 ms", "skew"):
            assert column in output
        assert "customer" in output and "orders" in output
        # the metrics upgrade was for that run only
        assert shell.execution.observe is None

    def test_bare_stats_profiles_the_last_query(self, shell):
        assert "no query to profile yet" in shell.handle_line("\\stats")
        shell.handle_line(self.SQL)
        output = shell.handle_line("\\stats")
        assert "operator" in output and "customer" in output

    def test_stats_bad_sql(self, shell):
        assert shell.handle_line("\\stats SELECT FROM").startswith("error:")
