"""Compile physical plans for continuous execution.

Reuses the batch engine's Squall-to-Storm translation
(:func:`repro.engine.runner.build_topology`) with three streaming
substitutions:

- every source component becomes a :class:`~repro.streaming.sources.\
ReplaySource` pump over the stored relation (event-time timestamps from
  the plan's window specs, optional rate limit) -- or any
  :class:`PushSource` the caller supplies;
- the aggregation bolt becomes :class:`DeltaAggBolt`, which emits a
  live ``(+row / -row)`` delta for every group-state change instead of
  waiting for end of stream;
- the sink becomes a :class:`~repro.streaming.deltas.DeltaSink` that
  consumers subscribe to.

The invariant pinned by ``tests/test_streaming_equivalence.py``: once
the sources are exhausted, :meth:`StreamingQuery.snapshot` equals
``sorted(run_plan(plan).results)`` -- the continuous engine is the batch
engine plus incrementality, never a different answer.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.options import ExecutionOptions, merge_options
from repro.engine.component import PhysicalPlan, SourceComponent
from repro.engine.operators import Projection, Selection
from repro.engine.runner import RETRACT_SUFFIX, AggBolt, build_topology
from repro.storm.executor import ExecutorError
from repro.storm.topology import Spout
from repro.streaming.cluster import StreamingCluster
from repro.streaming.deltas import Delta, DeltaSink, Subscription
from repro.streaming.sources import PushSource, ReplaySource


class _IdleSpout(Spout):
    """Placeholder spout: the pump feeds this component's rows."""

    def next_tuple(self):
        return None


class DeltaAggBolt(AggBolt):
    """Aggregation task that publishes state changes as live deltas.

    The batch :class:`AggBolt` holds snapshot-mode results until
    ``finish()``; a long-lived query never finishes, so this variant
    turns every group-state change into an immediate retraction of the
    group's previous output row plus an insertion of the new one.  The
    delta stream therefore maintains exactly the current groups at the
    sink -- the final snapshot is byte-for-byte the batch engine's
    answer, it just exists *at every moment along the way*.

    Modes: unwindowed and sliding-window snapshot aggregations get the
    upsert treatment (sliding expirations -- arrival- or
    watermark-driven -- also emit deltas); tumbling windows and online
    aggregations already emit incrementally in batch mode and keep their
    semantics unchanged.
    """

    def __init__(self, component):
        super().__init__(component)
        self._upsert = not component.online and (
            component.window is None or component.window.kind == "sliding"
        )

    def _changes_to_emissions(self, changes) -> List[Tuple[str, tuple]]:
        name = self.component.name
        retract = name + RETRACT_SUFFIX
        out: List[Tuple[str, tuple]] = []
        for old, new in changes:
            if old is not None:
                out.append((retract, old))
            if new is not None:
                out.append((name, new))
        return out

    def execute(self, source: str, stream: str, values: tuple):
        if not self._upsert:
            return super().execute(source, stream, values)
        return self.execute_batch(source, stream, [values])

    def execute_batch(self, source: str, stream: str, rows):
        if not self._upsert:
            return super().execute_batch(source, stream, rows)
        sign = -1 if stream.endswith(RETRACT_SUFFIX) else 1
        changes: List[Tuple[Optional[tuple], Optional[tuple]]] = []
        if self.sliding_state is not None:
            for row in rows:
                changes.extend(self.sliding_state.consume(row, sign))
        else:
            aggregation = self.aggregation
            for row in rows:
                key = aggregation.key_of(row)
                old = aggregation.current(key)
                aggregation.consume(row, sign)
                new = aggregation.current(key)
                if old != new:
                    changes.append((old, new))
        return self._changes_to_emissions(changes)

    def advance_watermark(self, watermark):
        if self._upsert and self.sliding_state is not None:
            window = self.component.window
            if window.ts_positions is None:
                return []
            return self._changes_to_emissions(
                self.sliding_state.advance_time(watermark))
        return super().advance_watermark(watermark)

    def finish(self):
        if self._upsert:
            return []  # the delta stream already carries the current groups
        return super().finish()


def _source_operators(
    source: SourceComponent,
) -> Tuple[Optional[Selection], Optional[Projection]]:
    selection = projection = None
    if source.predicate is not None:
        selection = Selection(source.predicate, source.relation.schema,
                              cost_class=source.selection_cost_class)
    if source.projection is not None:
        projection = Projection(source.projection, source.relation.schema,
                                names=source.projection_names)
    return selection, projection


def _plan_ts_positions(plan: PhysicalPlan) -> Dict[str, int]:
    """Event-time columns per source, read off the plan's window specs.

    Join windows name their input relations directly.  An aggregation
    window's position refers to the *aggregation input* row; it maps back
    to a source column only in single-relation plans (source rows feed
    the aggregation unchanged) -- join plans must pass ``ts_positions``
    explicitly (the SQL/functional front-ends resolve the event-time
    column and do)."""
    # window positions index the rows the *operator* sees; they map back
    # to the replayed raw rows only for sources without a co-located
    # projection (the pump applies the projection after polling)
    unprojected = {
        source.name for source in plan.sources if source.projection is None
    }
    positions: Dict[str, int] = {}
    for join in plan.joins:
        window = join.window
        if window is not None and window.ts_positions is not None:
            for rel_name, position in window.ts_positions.items():
                if rel_name in unprojected:
                    positions[rel_name] = position
    aggregation = plan.aggregation
    if (aggregation is not None and not plan.joins
            and aggregation.window is not None
            and aggregation.window.ts_positions is not None):
        position = next(iter(aggregation.window.ts_positions.values()))
        for source in plan.sources:
            if source.projection is None:
                positions.setdefault(source.name, position)
    return positions


def agg_window_ts_positions(catalog, scans, clause) -> Dict[str, int]:
    """Resolve a front-end :class:`WindowClause`'s event-time column to
    ``{source component name: raw column position}`` for the replay
    sources' watermarks.  Shared by the SQL and functional front-ends."""
    if clause is None or clause.ts_column is None:
        return {}
    from repro.core.logical import resolve_column

    schemas = {scan.alias: catalog.get(scan.table).schema for scan in scans}
    alias, attr = resolve_column(clause.ts_column, schemas)
    return {alias: schemas[alias].index_of(attr)}


def stream_plan(plan: PhysicalPlan, batch_size: Optional[int] = None,
                executor: Optional[str] = None,
                rate: Optional[float] = None,
                queue_capacity: int = 128,
                sources: Optional[Dict[str, PushSource]] = None,
                ts_positions: Optional[Dict[str, int]] = None,
                clock: Callable[[], float] = time.monotonic,
                columnar: Optional[bool] = None,
                options: Optional[ExecutionOptions] = None,
                fault_injector=None,
                checkpoint_dir: Optional[str] = None
                ) -> "StreamingQuery":
    """Compile a physical plan into a continuously running query.

    Execution knobs ride on ``options``
    (:class:`~repro.core.options.ExecutionOptions`); the individual
    kwargs remain as the deprecated spelling, folded in through the
    shared adapter.  Unset knobs resolve exactly as in the batch engine
    -- in particular ``columnar=None`` turns the columnar path on at
    ``batch_size >= 64`` (streaming used to require an explicit opt-in
    while ``run_plan`` defaulted it on; both now go through
    ``ExecutionOptions.resolve``).  The streaming default batch size is
    64.

    ``options.executor='processes'`` runs the query on resident forked
    workers with incremental checkpointing and crash recovery
    (``options.parallelism`` workers, a checkpoint every
    ``options.checkpoint_interval`` pump rounds; see
    ``docs/FAULT_TOLERANCE.md``).  ``fault_injector`` arms deterministic
    worker kills (:class:`~repro.storm.failures.FaultInjector`) and
    ``checkpoint_dir`` persists snapshots to disk; both are
    processes-executor extras.  The ``inline`` and ``threads`` executors
    have no parallelism knob -- threads already runs every task in its
    own worker thread.

    By default every source relation is replayed through a
    :class:`ReplaySource` at ``rate`` rows per second (None = as fast as
    the pipeline drains), with event-time watermarks on the columns named
    by the plan's window specs (override or extend via ``ts_positions``:
    source name -> raw column position).  Pass ``sources`` to substitute
    real push sources for some or all relations.

    With ``columnar`` on, the source pumps coalesce each poll into a
    :class:`~repro.core.columnar.ColumnBatch`, so joins and aggregations
    take their vectorized paths; the delta feed and snapshots are
    unchanged.

    Returns a :class:`StreamingQuery`; iterate it for live deltas, call
    :meth:`~StreamingQuery.run` to drive it to exhaustion, and
    :meth:`~StreamingQuery.snapshot` for the current result multiset.
    """
    resolved = merge_options(options, dict(
        batch_size=batch_size, executor=executor, rate=rate,
        columnar=columnar)).resolve(default_batch_size=64)
    if resolved.parallelism is not None and resolved.executor != "processes":
        raise ExecutorError(
            "parallelism only applies to the streaming 'processes' "
            "executor: 'inline' is single-threaded and 'threads' runs "
            "every task in its own worker thread (drop parallelism=, or "
            "set executor='processes')"
        )
    topology, partitioners = build_topology(
        plan,
        spout_factory=lambda source: (lambda i, p: _IdleSpout()),
        agg_bolt_factory=DeltaAggBolt,
        sink_factory=lambda i, p: DeltaSink(),
        source_parallelism=1,
    )
    positions = _plan_ts_positions(plan)
    if ts_positions:
        positions.update(ts_positions)
    pumps: Dict[str, PushSource] = dict(sources or {})
    operators = {}
    for source in plan.sources:
        operators[source.name] = _source_operators(source)
        if source.name not in pumps:
            pumps[source.name] = ReplaySource(
                source.relation.rows, stream=source.name,
                ts_position=positions.get(source.name), rate=resolved.rate,
                clock=clock,
            )
    cluster = StreamingCluster(
        topology, pumps, batch_size=resolved.batch_size,
        executor=resolved.executor, queue_capacity=queue_capacity,
        source_operators=operators, clock=clock, columnar=resolved.columnar,
        parallelism=resolved.parallelism,
        checkpoint_interval=resolved.checkpoint_interval,
        checkpoint_dir=checkpoint_dir, fault_injector=fault_injector,
        observe=resolved.observe,
    )
    return StreamingQuery(cluster, partitioner_info={
        name: partitioner.describe()
        for name, partitioner in partitioners.items()
    }, options=resolved)


class StreamingQuery:
    """A live, long-running query: delta feed + snapshot + monitors.

    Iterating yields :class:`Delta` objects *while the query runs* --
    the inline executor is driven by the iteration itself (one pump round
    per empty poll), the threads executor runs in the background.  The
    iterator ends when every source is exhausted and the final deltas
    are drained; for genuinely unbounded sources, consume it as an
    infinite stream or stop by abandoning it.
    """

    def __init__(self, cluster: StreamingCluster,
                 partitioner_info: Optional[Dict[str, str]] = None,
                 options: Optional[ExecutionOptions] = None):
        self.cluster = cluster
        self.partitioner_info = partitioner_info or {}
        #: the resolved execution options this query runs under
        self.options = options
        self._subscription: Optional[Subscription] = None

    @property
    def subscription(self) -> Subscription:
        """The delta feed, created on first use: a run()-and-snapshot()
        consumer never buffers the changelog.  Subscribe (or start
        iterating) before driving the query to observe it from the
        beginning; a later subscriber starts from the current state."""
        if self._subscription is None:
            self._subscription = self.cluster.subscribe()
        return self._subscription

    def deltas(self) -> Iterator[Delta]:
        """Live delta iterator.

        Inline: each empty poll drives one pump round.  Threads: blocks
        on the subscription's condition variable, so a delta published by
        a background worker wakes the consumer immediately."""
        cluster = self.cluster
        threaded = cluster.executor == "threads"
        if threaded:
            cluster.start()
        while True:
            delta = self.subscription.pop(
                block=threaded, timeout=0.1 if threaded else None)
            if delta is not None:
                yield delta
                continue
            if self.subscription.closed:
                return
            if cluster.done:
                # surfacing a worker failure beats waiting on a feed
                # that will never close; otherwise the run is over and
                # the buffer was just seen empty
                cluster._raise_worker_error()
                return
            if not threaded:
                cluster.advance()

    __iter__ = deltas

    def run(self) -> "StreamingQuery":
        """Drive the query until the sources are exhausted."""
        self.cluster.run()
        return self

    def stop(self, wait: bool = True):
        """Tear the resident query down (see StreamingCluster.stop)."""
        self.cluster.stop(wait=wait)

    def snapshot(self) -> List[tuple]:
        """Current result multiset (sorted); after :meth:`run`, equals
        the batch engine's ``sorted(results)`` on the same data."""
        return self.cluster.snapshot()

    @property
    def done(self) -> bool:
        return self.cluster.done

    def stats(self) -> Dict[str, object]:
        """One unified stats dict for the whole query.

        Merges the live stream counters (events, rates, watermark, lag),
        per-sink delta totals and the checkpoint/recovery counters
        (zeros outside the processes executor) into a single snapshot --
        the same shape :meth:`~repro.serving.broker.BrokerSubscription.
        stats` returns for brokered queries, which add a ``"serving"``
        section on top."""
        return self.cluster.stats_snapshot()

    def checkpoint_stats(self) -> Dict[str, object]:
        """Checkpoint/recovery counters (processes executor; zeros
        elsewhere): commits, partitions persisted vs. skipped by the
        hash-diff, bytes written, recoveries and replayed rows.
        Alias for ``stats()["checkpoints"]``."""
        return self.cluster.checkpoints.snapshot()

    @property
    def observer(self):
        """The run's :class:`~repro.obs.Observer` (None at observe='off')."""
        return self.cluster.observer

    def profile(self, title: Optional[str] = None) -> str:
        """EXPLAIN-ANALYZE-style report over the live topology.

        Per-operator batch counts, routed rows, p50/p95/p99 batch
        latencies (when the query runs with
        ``ExecutionOptions(observe='metrics')`` or ``'trace'``) and the
        per-grouping skew degree.  Valid mid-run; numbers are the
        counters' current values."""
        from repro.obs.profile import profile_report

        return profile_report(
            self.cluster.topology, self.cluster.metrics,
            observer=self.cluster.observer,
            title=title or "streaming query")

    def worker_pids(self) -> Dict[int, Optional[int]]:
        """Resident worker pids by worker id (processes executor; empty
        before the first pump round and under the other executors).
        Chaos-testing surface: ``os.kill(pid, signal.SIGKILL)`` one of
        these mid-run and watch :meth:`checkpoint_stats` count the
        recovery while the query converges to the same snapshot."""
        return self.cluster.worker_pids()
