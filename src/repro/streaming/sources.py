"""Push-based unbounded sources for the continuous runtime.

A :class:`PushSource` produces ``(stream, row)`` emissions over time
instead of draining a stored relation once.  The streaming cluster polls
each source for at most one micro-batch per round, so a source's own
pacing (a rate limit, a generator that blocks, a producer that has not
pushed yet) directly throttles the whole pipeline -- the pull side of the
backpressure story.  The push side is :meth:`CallbackSource.push`, whose
bounded buffer blocks producers when the pipeline falls behind.

Event time: a source that knows its rows' timestamps reports a
*watermark* -- a promise that it will never again emit a row with a
timestamp at or below it.  The cluster merges the per-source watermarks
(minimum) and uses the result to drive window expiration (see
:mod:`repro.streaming.watermarks` and :mod:`repro.engine.windows`).
Sources without event time report ``math.inf``: they never constrain the
merged watermark.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Callable, Deque, Iterable, List, Optional, Sequence, Tuple

Emission = Tuple[str, tuple]  # (stream id, values)


class PushSource:
    """An unbounded source of ``(stream, row)`` emissions."""

    def poll(self, max_rows: int) -> List[Emission]:
        """Up to ``max_rows`` emissions that are ready *now*.

        An empty list means "nothing ready yet", not end of stream --
        check :meth:`exhausted`."""
        raise NotImplementedError

    def watermark(self) -> Optional[float]:
        """Event-time promise: no future emission has ts <= this value.

        ``None`` means "no promise yet" (blocks the merged watermark);
        ``math.inf`` means "I never constrain event time" (sources
        without timestamps)."""
        return math.inf

    def exhausted(self) -> bool:
        """True once the source will never emit again."""
        raise NotImplementedError

    def has_event_time(self) -> bool:
        """Whether this source's rows carry event timestamps.

        The cluster enables watermark punctuation only when *every*
        source does: a timestamp-less source's rows can resurrect old
        event times downstream (a join matching against stored state), so
        promising ``inf`` on its behalf would close windows that can
        still gain rows."""
        return False

    #: newest event timestamp emitted (None when the source has no event
    #: time); the cluster's lag monitor reads this
    max_event_time: Optional[float] = None


class ReplaySource(PushSource):
    """Replays a stored dataset as an event-time stream.

    The workhorse of streaming/batch equivalence testing and of
    ``SqlSession.stream``: any relation becomes an unbounded-looking
    push source that emits its rows in order, optionally throttled to
    ``rate`` rows per second (a token bucket over ``clock``), with
    watermarks taken from the ``ts_position`` column.

    Watermarks assume the replayed rows are in non-decreasing timestamp
    order (the stored-relation case); the watermark is the *maximum*
    timestamp emitted so far, so a mis-sorted input only ever yields a
    conservative (early) watermark, never a wrong one.
    """

    def __init__(self, rows: Sequence[tuple], stream: str,
                 ts_position: Optional[int] = None,
                 rate: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 burst: Optional[float] = None):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (None = unlimited)")
        self.rows = rows
        self.stream = stream
        self.ts_position = ts_position
        self.rate = rate
        self._clock = clock
        self._position = 0
        # the bucket must be able to hold >= 1 whole token, or a rate
        # below 1 row/sec never accumulates enough to emit anything
        capacity = burst if burst is not None else (rate or 0)
        self._burst = max(float(capacity), 1.0) if rate is not None else 0.0
        self._tokens = self._burst
        self._last_refill = clock()
        self.max_event_time: Optional[float] = None

    def _allowance(self, max_rows: int) -> int:
        if self.rate is None:
            return max_rows
        now = self._clock()
        self._tokens = min(self._burst,
                           self._tokens + (now - self._last_refill) * self.rate)
        self._last_refill = now
        allowed = min(max_rows, int(self._tokens))
        return allowed

    def poll(self, max_rows: int) -> List[Emission]:
        allowed = self._allowance(max_rows)
        if allowed <= 0:
            return []
        stop = min(len(self.rows), self._position + allowed)
        batch = self.rows[self._position:stop]
        self._position = stop
        if self.rate is not None:
            self._tokens -= len(batch)
        if batch and self.ts_position is not None:
            ts = batch[-1][self.ts_position]
            if self.max_event_time is None or ts > self.max_event_time:
                self.max_event_time = ts
        stream = self.stream
        return [(stream, row) for row in batch]

    def watermark(self) -> Optional[float]:
        if self.ts_position is None:
            return math.inf
        return self.max_event_time  # None until the first emission

    def has_event_time(self) -> bool:
        return self.ts_position is not None

    def exhausted(self) -> bool:
        return self._position >= len(self.rows)


class Backpressure(RuntimeError):
    """A non-blocking push found the source buffer full."""


class CallbackSource(PushSource):
    """A push/generator source backed by a bounded buffer.

    Two ways to feed it:

    - **generator mode** -- pass ``generator``, an iterable of
      ``(stream, row)`` emissions; rows are pulled lazily, one
      micro-batch per poll.
    - **push mode** -- producers call :meth:`push` from any thread.  The
      buffer holds at most ``capacity`` emissions; a blocking push waits
      until the pipeline drains (backpressure), a non-blocking one raises
      :class:`Backpressure`.  Call :meth:`close` to end the stream.

    Event time: pass ``ts_position`` to derive watermarks from a row
    column of the primary stream, or call :meth:`set_watermark` to
    advance it manually (set ``manual_watermarks=True`` so the source
    withholds its promise until the first call).
    """

    def __init__(self, generator: Optional[Iterable[Emission]] = None,
                 capacity: int = 1024,
                 ts_position: Optional[int] = None,
                 manual_watermarks: bool = False):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.ts_position = ts_position
        self._generator = iter(generator) if generator is not None else None
        self._buffer: Deque[Emission] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._closed = generator is not None
        self._generator_done = generator is None
        self._manual_watermarks = manual_watermarks
        self._watermark: Optional[float] = None if (
            manual_watermarks or ts_position is not None) else math.inf
        self.max_event_time: Optional[float] = None

    # -- producer side -----------------------------------------------------

    def push(self, row: tuple, stream: str = "default", block: bool = True,
             timeout: Optional[float] = None) -> bool:
        """Enqueue one row; blocks (or raises) when the buffer is full."""
        with self._not_full:
            if self._closed:
                raise RuntimeError("push on a closed CallbackSource")
            if len(self._buffer) >= self.capacity:
                if not block:
                    raise Backpressure(
                        f"source buffer full ({self.capacity} emissions); "
                        f"the pipeline is not keeping up"
                    )
                if not self._not_full.wait_for(
                        lambda: len(self._buffer) < self.capacity or self._closed,
                        timeout=timeout):
                    return False
                if self._closed:
                    raise RuntimeError("push on a closed CallbackSource")
            self._buffer.append((stream, row))
            return True

    def close(self):
        """End of stream: no more pushes; buffered rows still drain."""
        with self._not_full:
            self._closed = True
            self._not_full.notify_all()

    def set_watermark(self, watermark: float):
        """Manually advance the event-time promise."""
        with self._lock:
            if self._watermark is None or watermark > self._watermark:
                self._watermark = watermark

    # -- consumer side -----------------------------------------------------

    def _pull_generator(self, n: int) -> List[Emission]:
        out: List[Emission] = []
        if self._generator is None:
            return out
        for _ in range(n):
            try:
                out.append(next(self._generator))
            except StopIteration:
                self._generator_done = True
                self._generator = None
                break
        return out

    def poll(self, max_rows: int) -> List[Emission]:
        with self._not_full:
            batch = []
            while self._buffer and len(batch) < max_rows:
                batch.append(self._buffer.popleft())
            if batch:
                self._not_full.notify_all()
        if len(batch) < max_rows:
            batch.extend(self._pull_generator(max_rows - len(batch)))
        if batch and self.ts_position is not None:
            ts = max(row[self.ts_position] for _stream, row in batch)
            with self._lock:
                if self.max_event_time is None or ts > self.max_event_time:
                    self.max_event_time = ts
                if self._watermark is None or ts > self._watermark:
                    self._watermark = ts
        return batch

    def watermark(self) -> Optional[float]:
        with self._lock:
            return self._watermark

    def has_event_time(self) -> bool:
        return self.ts_position is not None or self._manual_watermarks

    def exhausted(self) -> bool:
        with self._lock:
            return self._closed and self._generator_done and not self._buffer
