"""StreamingCluster: a resident topology pumping unbounded push sources.

Where :class:`~repro.storm.cluster.LocalCluster` *drains* a finite
topology and stops, the streaming cluster keeps the topology alive:
sources push micro-batches in whenever they have data, every batch runs
through the exact same ``Grouping.targets_batch`` / ``execute_batch``
dataplane (no per-tuple regression), watermark punctuations drive window
expiration between batches, and the :class:`~repro.streaming.deltas.\
DeltaSink` at the bottom feeds live ``+row/-row`` deltas to subscribers.

Three executors:

- ``inline`` -- a single-threaded pump loop over the resident
  :class:`LocalCluster`.  Each round polls every source for one
  micro-batch, drives it to quiescence depth-first (identical scheduling
  to ``LocalCluster.run``, so at equal batch size the delivery order --
  and hence every per-task counter -- matches the finite engine), then
  advances the merged watermark at the quiescent point.
- ``threads`` -- one worker thread per bolt task, fed through a
  **bounded queue** (``queue_capacity`` micro-batches).  A full queue
  blocks the producer's ``put`` -- backpressure propagates hop by hop
  from a slow consumer back to the source pumps.  Watermark and
  end-of-stream punctuations travel through the same FIFO queues as
  data and are merged per upstream task, so a promise can never overtake
  the rows it vouches for.  Routing state is cloned per worker
  (``Grouping.task_local``); partitioners that adapt to the globally
  observed stream are refused up front, exactly as in
  :mod:`repro.storm.executor`.
- ``processes`` -- **resident forked worker processes** holding the
  topology's join/aggregation tasks, exchanging serialized micro-batches
  with the coordinator over long-lived pipes: the fault-tolerant
  shared-nothing deployment of the paper's Storm runtime.  The
  coordinator keeps everything a crash must not lose -- source pumps,
  the routing table, the delta sinks with their subscriptions, the
  change log and the checkpoint store -- and supervises the workers:
  operator state is checkpointed incrementally every
  ``checkpoint_interval`` rounds (hash-diffed so unchanged partitions
  persist zero bytes; see :mod:`repro.checkpoint`), dead workers are
  detected, respawned, restored from the latest snapshot, and the
  post-checkpoint delta stream is replayed exactly-once, so the final
  snapshot is byte-identical to a crash-free (and to a batch) run.
  The full walkthrough lives in ``docs/FAULT_TOLERANCE.md``.

All executors produce the same final snapshot as ``run_plan`` on the
same data; the inline executor at equal ``batch_size`` reproduces the
finite engine's interleaving exactly.
"""

from __future__ import annotations

import math
import pickle
import queue
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.checkpoint import ChangeLog, CheckpointStore
from repro.checkpoint.log import DATA as _LOG_DATA
from repro.core.columnar import ColumnBatch, ColumnEmissions
from repro.engine.operators import Projection, Selection
from repro.obs import Observer
from repro.storm.cluster import LocalCluster
from repro.storm.executor import (
    ExecutorError,
    ResidentWorkerPool,
    Router,
    WorkerDied,
    WorkItem,
    ensure_task_local_routing,
)
from repro.storm.failures import FaultInjector
from repro.storm.metrics import CheckpointMetrics, StreamMetrics
from repro.storm.topology import Topology
from repro.streaming.deltas import DeltaSink, Subscription
from repro.streaming.sources import Emission, PushSource
from repro.streaming.watermarks import WatermarkTracker

STREAMING_EXECUTORS = ("inline", "threads", "processes")

#: checkpoint cadence (pump rounds) when none is configured
DEFAULT_CHECKPOINT_INTERVAL = 8

#: message kinds flowing through a worker task's queue
_DATA, _WM, _EOS = "data", "wm", "eos"


class SourcePump:
    """Feeds one push source into the dataplane.

    Applies the source component's co-located selection/projection (the
    same operators the batch :class:`~repro.engine.runner.SourceSpout`
    runs in-task), so a replayed relation enters the topology exactly as
    it would in a finite run.
    """

    def __init__(self, name: str, source: PushSource,
                 selection: Optional[Selection] = None,
                 projection: Optional[Projection] = None,
                 columnar: bool = False):
        self.name = name
        self.source = source
        self.selection = selection
        self.projection = projection
        #: coalesce single-stream polls into a ColumnBatch so downstream
        #: bolts take their vectorized paths (opt-in; see stream_plan)
        self.columnar = columnar
        self.emitted = 0
        #: raw rows the last poll pulled, pre-selection: a fully filtered
        #: batch still *advanced the source* and counts as progress
        self.last_poll_raw = 0

    def poll(self, max_rows: int):
        emissions = self.source.poll(max_rows)
        self.last_poll_raw = len(emissions)
        if not emissions:
            return emissions
        if self.selection is not None:
            apply = self.selection.apply
            emissions = [(stream, row) for stream, row in emissions
                         if apply(row) is not None]
        if self.projection is not None:
            apply = self.projection.apply
            emissions = [(stream, apply(row)) for stream, row in emissions]
        self.emitted += len(emissions)
        if self.columnar and emissions:
            stream = emissions[0][0]
            if all(s == stream for s, _row in emissions):
                return ColumnEmissions(
                    stream, ColumnBatch.from_rows([r for _s, r in emissions]))
        return emissions

    def watermark(self) -> Optional[float]:
        return self.source.watermark()

    def exhausted(self) -> bool:
        return self.source.exhausted()


class StreamingCluster:
    """A continuously running topology over push sources.

    ``sources`` maps each spout component name to the
    :class:`PushSource` that stands in for it; emissions are attributed
    to task 0 of that component.  Use :meth:`subscribe` before running to
    observe deltas, :meth:`run` (or repeated :meth:`step` under the
    inline executor) to drive the query, and :meth:`snapshot` for the
    current result multiset.
    """

    #: squall-lint lock-discipline contract: worker threads report
    #: failures concurrently with the pump reading them.  (Metrics
    #: recording is also under ``_lock`` in threads mode, but only
    #: there -- the inline executor records unlocked by design, so the
    #: metrics objects cannot be declared here.)
    GUARDED_BY = {"_worker_error": "_lock"}

    def __init__(self, topology: Topology, sources: Dict[str, PushSource],
                 batch_size: int = 64, executor: str = "inline",
                 queue_capacity: int = 128,
                 source_operators: Optional[
                     Dict[str, Tuple[Optional[Selection],
                                     Optional[Projection]]]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 idle_sleep: float = 0.0005,
                 columnar: bool = False,
                 parallelism: Optional[int] = None,
                 checkpoint_interval: Optional[int] = None,
                 checkpoint_dir: Optional[str] = None,
                 fault_injector: Optional[FaultInjector] = None,
                 max_recoveries: int = 5,
                 observe: str = "off"):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if executor not in STREAMING_EXECUTORS:
            raise ExecutorError(
                f"unknown streaming executor {executor!r}; choose one of "
                f"{STREAMING_EXECUTORS}"
            )
        spout_names = sorted(
            name for name, spec in topology.components.items() if spec.is_spout
        )
        if sorted(sources) != spout_names:
            raise ValueError(
                f"sources {sorted(sources)} do not match the topology's "
                f"spout components {spout_names}"
            )
        if executor == "threads":
            ensure_task_local_routing(topology, "threads")
        if executor == "processes":
            # adaptive partitioners reshape with the observed stream; a
            # recovery replay would route the replayed rows through the
            # *post*-failure shape and land them on different partitions
            # than the original delivery -- refuse, as the staged backends do
            ensure_task_local_routing(topology, "processes")
        self.topology = topology
        self.batch_size = batch_size
        self.executor = executor
        self.queue_capacity = queue_capacity
        self.idle_sleep = idle_sleep
        self.cluster = LocalCluster(topology)
        self.cluster.set_coalescing(batch_size > 1)
        self.metrics = self.cluster.metrics
        self.stats = StreamMetrics(clock=clock)
        #: one Observer per observed run, shared with the inner cluster so
        #: the inline inject() path times batches too; None = observe='off'
        self.observer: Optional[Observer] = None
        if observe != "off":
            self.cluster.set_observer(Observer(observe))
            self.observer = self.cluster.observer
            self.observer.registry.register_collector(self.stats.collect)
        operators = source_operators or {}
        self._pumps: Dict[str, SourcePump] = {
            name: SourcePump(name, source, *operators.get(name, (None, None)),
                             columnar=columnar and batch_size > 1)
            for name, source in sources.items()
        }
        self._source_wm = WatermarkTracker()
        for name in self._pumps:
            self._source_wm.register(name)
        # punctuation is sound only when every source carries event time:
        # a timestamp-less source's rows can join against stored state and
        # resurrect old event times, so no promise can be made for it
        self._event_time = all(
            pump.source.has_event_time() for pump in self._pumps.values()
        )
        self.columnar = columnar and batch_size > 1
        self._finished_sources: set = set()
        self._final_watermarks: List[float] = []
        self._broadcast_wm: Optional[float] = None
        self._done = threading.Event()
        self._stop = threading.Event()
        self._started = False
        self._lock = threading.Lock()  # metrics + shared state (threads mode)
        self._bolt_tasks: List[Tuple[str, int, object]] = [
            (name, task_index, task)
            for name in topology.topological_order()
            if not topology.components[name].is_spout
            for task_index, task in enumerate(self.cluster.tasks(name))
        ]
        self._sinks: List[DeltaSink] = [
            task for _n, _i, task in self._bolt_tasks
            if isinstance(task, DeltaSink)
        ]
        self._threads: List[threading.Thread] = []
        self._worker_error: List[str] = []
        # -- processes executor: checkpointed resident workers ------------
        self.checkpoint_interval = (
            DEFAULT_CHECKPOINT_INTERVAL if checkpoint_interval is None
            else checkpoint_interval)
        self.max_recoveries = max_recoveries
        #: checkpoint/recovery accounting (always present; only the
        #: processes executor feeds it)
        self.checkpoints = CheckpointMetrics()
        if self.observer is not None:
            self.observer.registry.register_collector(self.checkpoints.collect)
        self._fault_injector = fault_injector
        self._pool: Optional[ResidentWorkerPool] = None
        self._pool_parallelism = parallelism
        self._store = CheckpointStore(directory=checkpoint_dir)
        self._log = ChangeLog()
        self._epoch = 0
        self._rounds_since_checkpoint = 0
        self._recoveries = 0
        if executor == "processes":
            # sinks stay in the coordinator: their subscriptions hold live
            # condition variables and must survive any worker crash
            self._coordinator_owned = {
                name for name, _i, task in self._bolt_tasks
                if isinstance(task, DeltaSink)
            }
            self._local_tasks: Dict[Tuple[str, int], object] = {
                (name, task_index): task
                for name, task_index, task in self._bolt_tasks
                if name in self._coordinator_owned
            }
            self._proc_router = Router(topology, clone=True)

    # -- public surface ----------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def sink(self) -> DeltaSink:
        """The topology's delta sink (fan-out point of the serving layer)."""
        if not self._sinks:
            raise ValueError(
                "topology has no DeltaSink; build it with a streaming sink "
                "to subscribe to result deltas"
            )
        return self._sinks[0]

    def subscribe(self, **kwargs) -> Subscription:
        """Subscribe to the sink's delta feed.

        Keyword arguments (``max_buffer``, ``on_overflow``, ``tenant``,
        ``track_latency``, ``on_detach``) pass through to
        :meth:`~repro.streaming.deltas.DeltaSink.subscribe`."""
        return self.sink.subscribe(**kwargs)

    def snapshot(self) -> List[tuple]:
        """Current result multiset (sorted)."""
        if not self._sinks:
            raise ValueError("topology has no DeltaSink")
        return self._sinks[0].snapshot()

    def stats_snapshot(self) -> Dict[str, object]:
        """Live progress snapshot, with delta totals read off the sinks."""
        snapshot = self.stats.snapshot()
        snapshot["deltas"] = sum(sink.delta_count for sink in self._sinks)
        snapshot["checkpoints"] = self.checkpoints.snapshot()
        return snapshot

    def run(self):
        """Drive the query until every source is exhausted and the
        topology flushed.  Under ``threads`` this starts the workers (if
        needed) and blocks until completion."""
        if self.executor == "threads":
            self.start()
            self._done.wait()
            self._raise_worker_error()
            return self.metrics
        self._started = True  # stop(wait=True) may rely on this driver
        while not self.done:
            if not self.step():
                time.sleep(self.idle_sleep)
        return self.metrics

    def start(self):
        """Start background execution (threads executor only; the inline
        executor is driven by the caller through step()/run())."""
        if self.executor != "threads":
            self._started = True
            return
        if self._started:
            return
        self._started = True
        self._start_threads()

    def stop(self, wait: bool = True, timeout: Optional[float] = 10.0):
        """Tear a resident query down without waiting for exhaustion.

        Sets the stop flag; the driver (the inline ``run()``/``step()``
        loop or the threads pump) notices at its next round, stops
        polling the sources, flushes the topology -- so every
        subscription receives its final deltas and is closed -- and sets
        :attr:`done`.  ``wait=True`` blocks until that teardown completes
        (requires a live driver: the broker's per-topology driver thread,
        or a ``run()`` in progress).  Idempotent; a no-op once done."""
        self._stop.set()
        if self.done:
            return
        if wait and (self.executor == "threads" or self._started):
            self._done.wait(timeout)
            self._raise_worker_error()

    def advance(self, timeout: float = 0.05) -> bool:
        """One scheduling quantum for delta iterators: inline runs one
        pump round; threads waits briefly for background progress."""
        if self.executor == "threads":
            self.start()
            self._done.wait(timeout)
            self._raise_worker_error()
            return self.done
        if not self.step():
            time.sleep(self.idle_sleep)
        return self.done

    # -- inline executor ---------------------------------------------------

    def step(self) -> bool:
        """One inline pump round; returns whether any progress was made.

        Polls every live source for at most one micro-batch, drives each
        batch to quiescence, then -- at the quiescent point, where no
        data is in flight anywhere -- advances the merged watermark and
        finally flushes the topology once all sources are exhausted.
        """
        if self.executor == "processes":
            return self._step_processes()
        if self.executor != "inline":
            raise ExecutorError(
                "step() drives the inline executor; the threads executor "
                "runs in the background (use run(), advance() or the "
                "delta iterator)"
            )
        if self.done:
            return False
        if self._stop.is_set():
            # forced teardown: stop polling, flush so subscriptions get
            # their final deltas and close, and declare the query done
            self.cluster.flush_bolts()
            self._done.set()
            return True
        progressed = False
        cluster = self.cluster
        for name, pump in self._pumps.items():
            if name in self._finished_sources:
                continue
            emissions = pump.poll(self.batch_size)
            if pump.last_poll_raw:
                progressed = True  # even a fully filtered batch advanced
            if emissions:
                self.stats.record_events(
                    len(emissions), pump.source.max_event_time)
                cluster.inject(name, emissions)
            if pump.exhausted():
                # also reached by sources that were empty to begin with:
                # they must still mark themselves done, or the merged
                # watermark stays undefined for the whole run.  The final
                # watermark is recorded first -- it covers the last batch.
                progressed = True
                watermark = pump.watermark()
                if watermark is not None and watermark != math.inf:
                    self._source_wm.update(name, watermark)
                    self._final_watermarks.append(watermark)
                self._finished_sources.add(name)
                self._source_wm.mark_done(name)
            else:
                watermark = pump.watermark()
                if watermark is not None:
                    self._source_wm.update(name, watermark)
        if self._event_time and self._advance_watermark(
                self._source_wm.merged()):
            progressed = True
        if len(self._finished_sources) == len(self._pumps):
            if self._event_time and self._final_watermarks:
                # all promises are in: catch windows up to the final
                # watermark before the flush (same rows either way; this
                # also settles stats -- lag reaches its true final value)
                self._advance_watermark(min(self._final_watermarks))
            cluster.flush_bolts()  # DeltaSink.finish closes subscriptions
            self._done.set()
            progressed = True
        return progressed

    def _advance_watermark(self, merged: Optional[float]) -> bool:
        """Broadcast a *finite* watermark advance to every windowed task.

        ``inf`` (no live input constrains event time) is never used to
        expire windows: end-of-stream closure is the flush's job, and
        expiring the trailing sliding window early would diverge from the
        batch engine's final snapshot."""
        if merged is None or merged == math.inf:
            return False
        if self._broadcast_wm is not None and merged <= self._broadcast_wm:
            return False
        self._broadcast_wm = merged
        self.stats.record_watermark(merged)
        for name, task_index, task in self._bolt_tasks:
            hook = getattr(task, "advance_watermark", None)
            if hook is None:
                continue
            emissions = hook(merged)
            if emissions:
                self.cluster.inject(name, emissions, task_index=task_index)
        return True

    # -- processes executor: resident workers + checkpoint/recovery --------

    def worker_pids(self) -> Dict[int, Optional[int]]:
        """Live resident-worker pids (kill targets for chaos testing)."""
        if self._pool is None:
            return {}
        return self._pool.pids()

    def _ensure_pool(self):
        """Fork the resident workers on first use; epoch 0 is committed
        immediately, so recovery always has a restore point."""
        if self._pool is not None:
            return
        pool = ResidentWorkerPool(
            self.topology, {name: list(self.cluster.tasks(name))
                            for name in self.topology.components},
            parallelism=self._pool_parallelism,
            exclude=self._coordinator_owned,
            observe="off" if self.observer is None else self.observer.level,
        )
        if self._fault_injector is not None:
            pool.arm_kills(self._fault_injector.kill_plan(pool.assignment))
        pool.start()
        self._pool = pool
        self._checkpoint()

    def _step_processes(self) -> bool:
        """One coordinator round: poll -> log -> dispatch -> punctuate ->
        checkpoint, with crash recovery wrapped around the whole round.

        Any worker death detected mid-round (EOF on a pipe, a liveness
        sweep) abandons the round and runs the recovery protocol; the
        change log guarantees nothing injected this round is lost and
        nothing already checkpointed is applied twice.
        """
        if self.done:
            return False
        self._ensure_pool()
        try:
            dead = self._pool.reap_dead()
            if dead:
                raise WorkerDied(dead)
            return self._step_processes_round()
        except WorkerDied as death:
            self._recover(death.worker_ids)
            return True

    def _step_processes_round(self) -> bool:
        if self._stop.is_set():
            self._flush_processes()
            return True
        progressed = False
        for name, pump in self._pumps.items():
            if name in self._finished_sources:
                continue
            emissions = pump.poll(self.batch_size)
            if pump.last_poll_raw:
                progressed = True
            if emissions:
                self.stats.record_events(
                    len(emissions), pump.source.max_event_time)
                # logged before dispatch: if a worker dies mid-delivery,
                # the replay re-applies this batch to the restored state
                self._log.record_data(name, emissions)
                self._inject_processes(name, emissions)
            if pump.exhausted():
                progressed = True
                watermark = pump.watermark()
                if watermark is not None and watermark != math.inf:
                    self._source_wm.update(name, watermark)
                    self._final_watermarks.append(watermark)
                self._finished_sources.add(name)
                self._source_wm.mark_done(name)
            else:
                watermark = pump.watermark()
                if watermark is not None:
                    self._source_wm.update(name, watermark)
        if self._event_time and self._advance_watermark_processes(
                self._source_wm.merged()):
            progressed = True
        if len(self._finished_sources) == len(self._pumps):
            self._flush_processes()
            return True
        self._rounds_since_checkpoint += 1
        if (progressed and self._log
                and self._rounds_since_checkpoint >= self.checkpoint_interval):
            self._checkpoint()
        return progressed

    def _inject_processes(self, source: str, emissions: Sequence[Emission],
                          replay: bool = False):
        """Route one source batch and drive it to quiescence."""
        ctx = None
        if not replay:
            self.metrics.record_emit(source, 0, len(emissions))
            self.metrics.record_batch(source, 0)
            if self.observer is not None:
                self.observer.on_execute(source, 0, len(emissions), 0.0)
                ctx = self.observer.root(source, 0, len(emissions), 0.0)
        self._drive_processes([(source, emissions, ctx)], replay=replay)

    def _drive_processes(self,
                         pending: List[Tuple[str, Sequence[Emission], object]],
                         replay: bool = False):
        """Deliver routed waves until no data is in flight anywhere.

        Worker-owned tasks execute remotely (one pipe round-trip per
        wave, workers in parallel); coordinator-owned sink tasks execute
        locally so deltas fan out to subscriptions without serializing
        the sink.  Worker emissions come back raw and are re-routed here
        -- routing state lives only in the coordinator, so recovery never
        reconciles diverged per-worker routing.

        Pending entries carry the parent span context (None when
        unobserved or for untraced punctuations).  During a recovery
        replay contexts are withheld and worker obs payloads discarded,
        so a replayed batch never duplicates spans or timings.
        """
        metrics = self.metrics
        coalesce = self.batch_size > 1
        # wire shape is set by the *pool's* level (workers unpack trace
        # items as 6-tuples even during replay); recording is not
        observer = None if replay else self.observer
        trace = self.observer is not None and self.observer.trace
        while pending:
            per_worker: Dict[int, List[tuple]] = {}
            local: List[Tuple[WorkItem, object]] = []
            for source, emissions, ctx in pending:
                for item in self._proc_router.route(
                        source, emissions, coalesce=coalesce):
                    owner = self._pool.owner(item[0], item[1])
                    if owner is None:
                        local.append((item, ctx))
                    elif trace:
                        per_worker.setdefault(owner, []).append(item + (ctx,))
                    else:
                        per_worker.setdefault(owner, []).append(item)
            pending = []
            if observer is not None and (per_worker or local):
                observer.on_queue_depth(
                    "processes",
                    sum(len(items) for items in per_worker.values())
                    + len(local))
            if per_worker:
                outputs, deltas = self._pool.execute(per_worker)
                for emits, receives, batches, paths, obs_payload in deltas:
                    for name, task_index, count in emits:
                        metrics.record_emit(name, task_index, count)
                    for source, target, task_index, count in receives:
                        metrics.record_receive(source, target, task_index,
                                               count)
                    for name, task_index in batches:
                        metrics.record_batch(name, task_index)
                    metrics.merge_path_counts(*paths)
                    if observer is not None:
                        observer.merge_worker_obs(obs_payload)
                if trace:
                    for component, task_index, emissions, child in outputs:
                        pending.append((component, emissions, child))
                else:
                    for component, task_index, emissions in outputs:
                        pending.append((component, emissions, None))
            for item, ctx in local:
                target, task_index, source, stream, rows = item
                metrics.record_receive(source, target, task_index, len(rows))
                metrics.record_batch(target, task_index)
                metrics.record_path(isinstance(rows, ColumnBatch), len(rows))
                task = self._local_tasks[(target, task_index)]
                if observer is not None:
                    started = time.perf_counter()
                    emissions = task.execute_batch(source, stream, rows)
                    elapsed = time.perf_counter() - started
                    observer.on_execute(target, task_index, len(rows), elapsed)
                    child = observer.span(
                        ctx, target, task_index, len(rows), elapsed)
                else:
                    emissions = task.execute_batch(source, stream, rows)
                    child = None
                if emissions:
                    metrics.record_emit(target, task_index, len(emissions))
                    pending.append((target, emissions, child))

    def _advance_watermark_processes(self, merged: Optional[float],
                                     replay: bool = False) -> bool:
        """Broadcast a finite watermark advance to every worker.

        Same monotone/finite guards as the inline executor; the advance
        is logged *before* the broadcast, so a worker that dies mid-fanout
        still sees the punctuation once -- global restore rewinds the
        survivors that already applied it, and the replay re-delivers it
        to everyone.
        """
        if merged is None or merged == math.inf:
            return False
        if self._broadcast_wm is not None and merged <= self._broadcast_wm:
            return False
        self._broadcast_wm = merged
        self.stats.record_watermark(merged)
        if not replay:
            self._log.record_watermark(merged)
        outputs = self._pool.broadcast_watermark(merged)
        expirations = []
        for component, task_index, emissions in outputs:
            self.metrics.record_emit(component, task_index, len(emissions))
            expirations.append((component, emissions, None))
        if expirations:
            self._drive_processes(expirations, replay=replay)
        return True

    def _flush_processes(self):
        """End of stream: final punctuation, pre-flush checkpoint, flush.

        The checkpoint right before the flush makes the flush itself
        recoverable: a worker killed mid-finish rolls everything back to
        this barrier (empty change log) and the flush simply reruns.
        """
        if self._event_time and self._final_watermarks:
            self._advance_watermark_processes(min(self._final_watermarks))
        self._checkpoint()
        for name in self.topology.topological_order():
            if self.topology.components[name].is_spout:
                continue
            if name in self._coordinator_owned:
                for task_index in range(
                        self.topology.components[name].parallelism):
                    emissions = self._local_tasks[(name, task_index)].finish()
                    if emissions:
                        self.metrics.record_emit(
                            name, task_index, len(emissions))
                        self._drive_processes([(name, emissions, None)])
            else:
                for component, task_index, emissions in \
                        self._pool.finish_component(name):
                    self.metrics.record_emit(
                        component, task_index, len(emissions))
                    self._drive_processes([(component, emissions, None)])
        self._done.set()
        self._pool.stop()

    # -- checkpoint/recovery protocol --------------------------------------

    def _coordinator_blob(self) -> bytes:
        """The coordinator's own state for a manifest: sink multisets,
        the broadcast watermark, and the router's mutable grouping state
        (shuffle cursors) -- everything the replay path needs rewound."""
        return pickle.dumps({
            "sinks": {
                key: task.counts_snapshot()
                for key, task in sorted(self._local_tasks.items())
                if isinstance(task, DeltaSink)
            },
            "wm": self._broadcast_wm,
            "router": self._proc_router.routing_state(),
        }, protocol=pickle.HIGHEST_PROTOCOL)

    def _checkpoint(self):
        """Commit one epoch at the current quiescent point.

        Workers hash their owned task state and ship only blobs whose
        digest left the previous manifest (the incremental hash-diff);
        the change log is truncated afterwards -- its rows are now inside
        the snapshot.
        """
        snapshots = self._pool.checkpoint(self._store.known_digests())
        result = self._store.commit(
            self._epoch, snapshots, self._coordinator_blob())
        self.checkpoints.record_commit(result)
        self._epoch += 1
        self._rounds_since_checkpoint = 0
        self._log.truncate()

    def _recover(self, dead: List[int]):
        """Exactly-once crash recovery, retried if a replay dies again."""
        respawned: List[int] = []
        while True:
            self._recoveries += 1
            if self._recoveries > self.max_recoveries:
                raise ExecutorError(
                    f"giving up after {self.max_recoveries} worker "
                    f"recoveries (workers {dead} died); the failure is "
                    f"not transient"
                )
            try:
                self._recover_once(dead, respawned)
                return
            except WorkerDied as death:
                dead = death.worker_ids

    def _recover_once(self, dead: List[int], respawned: List[int]):
        """Respawn + global restore + sink rollback + log replay.

        Every worker -- survivor or respawn -- is restored to the latest
        manifest: survivors may have applied post-checkpoint batches that
        the replay will re-deliver, so their state must rewind too.  The
        sink rolls back through compensating deltas (subscriptions stay
        attached), the router's shuffle cursors rewind so replayed rows
        land on their original partitions, and the change log re-applies
        the delta stream without re-logging it.
        """
        dead = sorted(set(dead) | set(self._pool.reap_dead()))
        respawned.extend(dead)
        manifest = self._store.latest()
        if manifest is None:
            # death raced the epoch-0 commit: nothing has executed, so a
            # fresh fork *is* the correct state
            self._pool.respawn(dead)
            self.checkpoints.record_recovery(list(respawned), 0, 0)
            return
        self._pool.respawn(dead)
        self._pool.restore(self._store.restore_set(manifest))
        coordinator = pickle.loads(manifest.coordinator)
        for key, counts in coordinator["sinks"].items():
            self._local_tasks[key].rollback(counts)
        self._broadcast_wm = coordinator["wm"]
        self._proc_router.restore_routing_state(coordinator["router"])
        replayed_entries = replayed_rows = 0
        for entry in self._log.replay():
            if entry[0] == _LOG_DATA:
                _kind, source, emissions = entry
                replayed_entries += 1
                replayed_rows += len(emissions)
                self._inject_processes(source, emissions, replay=True)
            else:
                self._advance_watermark_processes(entry[1], replay=True)
        self.checkpoints.record_recovery(list(respawned), replayed_entries,
                                         replayed_rows)

    # -- threads executor --------------------------------------------------

    def _start_threads(self):
        topology = self.topology
        self._queues: Dict[Tuple[str, int], "queue.Queue"] = {}
        for name, task_index, _task in self._bolt_tasks:
            self._queues[(name, task_index)] = queue.Queue(self.queue_capacity)
        # per-bolt upstream task keys (who must punctuate before we act)
        self._upstream_keys: Dict[str, List[Tuple[str, int]]] = {}
        # per-component downstream tasks (who receives our punctuations)
        self._downstream: Dict[str, List[Tuple[str, int]]] = {}
        for name, spec in topology.components.items():
            ups: List[Tuple[str, int]] = []
            for up in topology.upstream(name):
                up_spec = topology.components[up]
                count = 1 if up_spec.is_spout else up_spec.parallelism
                ups.extend((up, i) for i in range(count))
            self._upstream_keys[name] = ups
            downs: List[Tuple[str, int]] = []
            for target in sorted({e.target for e in topology.out_edges(name)}):
                downs.extend(
                    (target, i)
                    for i in range(topology.components[target].parallelism)
                )
            self._downstream[name] = downs
        for name, task_index, task in self._bolt_tasks:
            thread = threading.Thread(
                target=self._worker_loop, args=(name, task_index, task),
                name=f"stream-{name}-{task_index}", daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        pump_thread = threading.Thread(
            target=self._pump_loop, name="stream-pump", daemon=True)
        self._threads.append(pump_thread)
        pump_thread.start()

    def _dispatch(self, router: Router, source: str,
                  emissions: Sequence[Emission], ctx=None):
        """Route one component's emissions into the owning task queues.

        ``Queue.put`` blocks when the target queue is full: this is the
        backpressure edge -- a slow consumer stalls its producers, and
        transitively the source pumps.  ``ctx`` is the parent span
        context riding with every routed batch (None when unobserved or
        for untraced punctuation-driven emissions)."""
        if not isinstance(emissions, ColumnEmissions):
            # materialize generators; a columnar batch must NOT be listed
            # out here or it would degrade to per-row pairs
            emissions = list(emissions)
        for target, task, src, stream, rows in router.route(
                source, emissions, coalesce=self.batch_size > 1):
            self._queues[(target, task)].put((_DATA, src, stream, rows, ctx))

    def _broadcast(self, source: str, message: tuple):
        for key in self._downstream[source]:
            self._queues[key].put(message)

    def _pump_loop(self):
        try:
            router = Router(self.topology, clone=True)
            live = dict(self._pumps)
            tracker = WatermarkTracker()  # stats-side merge of the promises
            last_sent: Dict[str, Optional[float]] = {name: None for name in live}
            for name in live:
                tracker.register(name)
            while live:
                if self._stop.is_set():
                    # forced teardown: EOS every remaining source so the
                    # workers finish (flush + subscription close) and exit
                    for name in list(live):
                        tracker.mark_done(name)
                        self._broadcast(name, (_EOS, (name, 0)))
                    live.clear()
                    break
                progressed = False
                for name in list(live):
                    pump = live[name]
                    emissions = pump.poll(self.batch_size)
                    if pump.last_poll_raw:
                        progressed = True
                    if emissions:
                        with self._lock:
                            self.metrics.record_emit(name, 0, len(emissions))
                            self.metrics.record_batch(name, 0)
                        self.stats.record_events(
                            len(emissions), pump.source.max_event_time)
                        ctx = None
                        if self.observer is not None:
                            self.observer.on_execute(
                                name, 0, len(emissions), 0.0)
                            ctx = self.observer.root(
                                name, 0, len(emissions), 0.0)
                        self._dispatch(router, name, emissions, ctx)
                    if pump.exhausted():
                        progressed = True
                        # the final promise covers the last batch; send it
                        # ahead of EOS so windows catch up before finish()
                        self._send_source_watermark(
                            tracker, last_sent, name, pump)
                        tracker.mark_done(name)
                        self._broadcast(name, (_EOS, (name, 0)))
                        del live[name]
                        continue
                    self._send_source_watermark(tracker, last_sent, name, pump)
                if not progressed:
                    time.sleep(self.idle_sleep)
            # workers cascade EOS downstream and exit on their own
            for thread in self._threads:
                if thread is not threading.current_thread():
                    thread.join()
        except Exception:  # pragma: no cover - defensive
            import traceback
            with self._lock:
                self._worker_error.append(traceback.format_exc())
        finally:
            self._done.set()

    def _send_source_watermark(self, tracker: WatermarkTracker,
                               last_sent: Dict[str, Optional[float]],
                               name: str, pump: SourcePump):
        """Broadcast one source's advanced promise (event-time mode only)."""
        if not self._event_time:
            return
        watermark = pump.watermark()
        if watermark is None or (
                last_sent[name] is not None and watermark <= last_sent[name]):
            return
        last_sent[name] = watermark
        tracker.update(name, watermark)
        merged = tracker.merged()
        if merged is not None and merged != math.inf:
            self.stats.record_watermark(merged)
        self._broadcast(name, (_WM, (name, 0), watermark))

    def _worker_loop(self, name: str, task_index: int, bolt):
        try:
            inbox = self._queues[(name, task_index)]
            observer = self.observer
            router = Router(self.topology, clone=True)
            tracker = WatermarkTracker()
            for key in self._upstream_keys[name]:
                tracker.register(key)
            last_wm: Optional[float] = None
            hook = getattr(bolt, "advance_watermark", None)

            def advance_merged():
                """Apply + forward the merged watermark if it moved."""
                nonlocal last_wm
                merged = tracker.merged()
                if merged is None or (
                        last_wm is not None and merged <= last_wm):
                    return
                last_wm = merged
                if hook is not None and merged != math.inf:
                    emissions = hook(merged)
                    if emissions:
                        with self._lock:
                            self.metrics.record_emit(
                                name, task_index, len(emissions))
                        self._dispatch(router, name, emissions)
                self._broadcast(name, (_WM, (name, task_index), merged))

            while True:
                message = inbox.get()
                kind = message[0]
                if kind == _DATA:
                    _kind, source, stream, rows, ctx = message
                    with self._lock:
                        self.metrics.record_receive(
                            source, name, task_index, len(rows))
                        self.metrics.record_batch(name, task_index)
                    if observer is not None:
                        observer.on_queue_depth("threads", inbox.qsize() + 1)
                        started = time.perf_counter()
                        emissions = bolt.execute_batch(source, stream, rows)
                        elapsed = time.perf_counter() - started
                        observer.on_execute(
                            name, task_index, len(rows), elapsed)
                        child = observer.span(
                            ctx, name, task_index, len(rows), elapsed)
                    else:
                        emissions = bolt.execute_batch(source, stream, rows)
                        child = None
                    if emissions:
                        with self._lock:
                            self.metrics.record_emit(
                                name, task_index, len(emissions))
                        self._dispatch(router, name, emissions, child)
                elif kind == _WM:
                    _kind, key, watermark = message
                    tracker.update(key, watermark)
                    advance_merged()
                elif kind == _EOS:
                    _kind, key = message
                    tracker.mark_done(key)
                    if not tracker.all_done():
                        # the finished input stops constraining the merge,
                        # which may itself advance the watermark -- act on
                        # it now, not at the next unrelated punctuation
                        advance_merged()
                        continue
                    emissions = bolt.finish()
                    if emissions:
                        with self._lock:
                            self.metrics.record_emit(
                                name, task_index, len(emissions))
                        self._dispatch(router, name, emissions)
                    self._broadcast(name, (_EOS, (name, task_index)))
                    return
        except Exception:
            import traceback
            with self._lock:
                self._worker_error.append(
                    f"worker {name}[{task_index}] failed:\n"
                    + traceback.format_exc())
            self._done.set()

    def _raise_worker_error(self):
        with self._lock:
            errors = list(self._worker_error)
        if errors:
            raise ExecutorError(
                "streaming worker failed:\n" + "\n".join(errors))
