"""The punctuation protocol: merged watermarks over many inputs.

A watermark is a promise -- "no emission with event timestamp <= W is
still coming from this input".  A consumer fed by several inputs can only
act on the *minimum* of its inputs' promises, and may act only once every
input has made one.  :class:`WatermarkTracker` is that merge, used at two
levels:

- the streaming cluster merges the per-source watermarks of its pumps
  (inline executor: at quiescent points between pump rounds);
- under the threads executor every bolt task merges the punctuations
  forwarded by each of its upstream *tasks* -- punctuations travel
  through the same FIFO queues as data, so a watermark can never overtake
  the rows it vouches for (the classic aligned-punctuation argument).

An input that finished (end of stream) promises everything: its watermark
becomes ``math.inf`` and it stops constraining the merge.  A merged value
of ``math.inf`` therefore means "no live input constrains event time" and
must not be used to expire windows -- callers treat only *finite*
advances as actionable (see ``StreamingCluster``).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional


class WatermarkTracker:
    """Minimum watermark across a fixed set of inputs.

    Watermark values and end-of-stream are tracked *separately*: a
    timestamp-less input legitimately promises ``inf`` ("I never
    constrain event time") while still having data in flight, so an
    infinite watermark must not read as "this input finished" --
    conflating the two once made the delta sink exit while an upstream
    task was still streaming.
    """

    def __init__(self):
        self._marks: Dict[Hashable, Optional[float]] = {}
        self._done: set = set()

    def register(self, key: Hashable):
        """Declare one input; until it reports, the merge is undefined."""
        if key not in self._marks:
            self._marks[key] = None

    def keys(self):
        return list(self._marks)

    def update(self, key: Hashable, watermark: float):
        """Record an input's promise (watermarks never regress)."""
        current = self._marks[key]
        if current is None or watermark > current:
            self._marks[key] = watermark

    def mark_done(self, key: Hashable):
        """End of stream on one input: it promises everything."""
        self._done.add(key)

    def all_done(self) -> bool:
        """True once every *registered* input reached end of stream."""
        return all(key in self._done for key in self._marks)

    def merged(self) -> Optional[float]:
        """The merged promise: None until every live input reported."""
        if not self._marks:
            return math.inf
        values = [
            math.inf if key in self._done else value
            for key, value in self._marks.items()
        ]
        if any(value is None for value in values):
            return None
        return min(values)
