"""The continuous streaming runtime: long-lived queries over push sources.

The finite engine (:func:`repro.engine.runner.run_plan`) drains a plan
and stops; this package keeps the same topology *resident* and pumps
unbounded push sources through the same micro-batch dataplane, with
watermark punctuations driving window expiration and incremental
``(+row / -row)`` delta feeds at the sink.  Entry points:

- :func:`stream_plan` -- compile any physical plan for continuous
  execution (the engine behind ``SqlSession.stream`` and the functional
  API's ``.stream()``);
- :class:`StreamingCluster` -- run an arbitrary topology over push
  sources (inline or per-task-thread executors, bounded queues with
  backpressure);
- :class:`ReplaySource` / :class:`CallbackSource` -- event-time replays
  of stored data and generator/push-driven feeds.
"""

from repro.streaming.cluster import (
    STREAMING_EXECUTORS,
    SourcePump,
    StreamingCluster,
)
from repro.streaming.deltas import (
    Delta,
    DeltaSink,
    SubscriberOverflow,
    Subscription,
)
from repro.streaming.runner import DeltaAggBolt, StreamingQuery, stream_plan
from repro.streaming.sources import (
    Backpressure,
    CallbackSource,
    PushSource,
    ReplaySource,
)
from repro.streaming.watermarks import WatermarkTracker

__all__ = [
    "STREAMING_EXECUTORS",
    "Backpressure",
    "CallbackSource",
    "Delta",
    "DeltaAggBolt",
    "DeltaSink",
    "PushSource",
    "ReplaySource",
    "SourcePump",
    "StreamingCluster",
    "StreamingQuery",
    "SubscriberOverflow",
    "Subscription",
    "WatermarkTracker",
    "stream_plan",
]
