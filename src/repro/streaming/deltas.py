"""Incremental result deltas: the subscriber-facing end of a live query.

A continuous query has no final result list; instead its sink maintains
the *current* result multiset and publishes every change as a
``(+row / -row)`` delta.  Consumers :meth:`~DeltaSink.subscribe` and
receive the deltas in order; :meth:`~DeltaSink.snapshot` is the current
multiset and -- once the sources are exhausted -- equals the batch
engine's answer for the same data (pinned by
``tests/test_streaming_equivalence.py``).

``DeltaSink`` consumes exactly the streams the batch
:class:`~repro.engine.runner.SinkBolt` does: rows on the data stream are
insertions, rows on the ``:retract`` stream remove one stored instance
(a retraction of a row that is not present is ignored, matching the
batch sink's compensation semantics).
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional

from repro.core.columnar import ColumnBatch
from repro.engine.runner import RETRACT_SUFFIX
from repro.storm.topology import Bolt


@dataclass(frozen=True)
class Delta:
    """One change to the live result multiset."""

    sign: int  # +1 insertion, -1 retraction
    row: tuple

    def __str__(self):
        return f"{'+' if self.sign > 0 else '-'}{self.row}"


class Subscription:
    """An ordered, unbounded feed of one sink's deltas.

    Iterating blocks until the next delta (or end of query); ``pop`` is
    the non-blocking form the inline driver uses between pump rounds.
    """

    def __init__(self):
        self._deltas: Deque[Delta] = deque()
        self._cond = threading.Condition()
        self._closed = False

    # -- sink side ---------------------------------------------------------

    def _publish(self, deltas: List[Delta]):
        with self._cond:
            self._deltas.extend(deltas)
            self._cond.notify_all()

    def _close(self):
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- consumer side -----------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed and not self._deltas

    def pop(self, block: bool = False,
            timeout: Optional[float] = None) -> Optional[Delta]:
        """Next delta, or None (buffer empty / query over / timed out)."""
        with self._cond:
            if block:
                self._cond.wait_for(
                    lambda: self._deltas or self._closed, timeout=timeout)
            if self._deltas:
                return self._deltas.popleft()
            return None

    def __iter__(self) -> Iterator[Delta]:
        while True:
            delta = self.pop(block=True)
            if delta is not None:
                yield delta
            elif self.closed:
                return


class DeltaSink(Bolt):
    """Terminal bolt of a continuous topology: state + subscriptions.

    Thread-safe (the threads executor runs it inside a worker while
    consumers read snapshots); drop-in replacement for the batch
    :class:`~repro.engine.runner.SinkBolt` in a streaming topology.
    """

    def __init__(self):
        self._counts: Counter = Counter()
        self._lock = threading.Lock()
        self._subscriptions: List[Subscription] = []
        self.delta_count = 0
        self.completed = False

    # -- dataplane side ----------------------------------------------------

    def execute(self, source: str, stream: str, values: tuple):
        return self.execute_batch(source, stream, [values])

    def execute_batch(self, source: str, stream: str, rows):
        if isinstance(rows, ColumnBatch):
            # one materialization at the subscription boundary; the per-row
            # loops below then run over plain tuples
            rows = rows.to_rows()
        retract = stream.endswith(RETRACT_SUFFIX)
        deltas: List[Delta] = []
        with self._lock:
            counts = self._counts
            if retract:
                for row in rows:
                    if counts[row] > 0:
                        counts[row] -= 1
                        if not counts[row]:
                            del counts[row]
                        deltas.append(Delta(-1, row))
                    # absent row: ignore, as the batch SinkBolt does
            else:
                for row in rows:
                    counts[row] += 1
                    deltas.append(Delta(1, row))
            self.delta_count += len(deltas)
            subscriptions = list(self._subscriptions)
        for subscription in subscriptions:
            subscription._publish(deltas)
        return []

    def finish(self):
        """End of query: close every subscription."""
        with self._lock:
            self.completed = True
            subscriptions = list(self._subscriptions)
        for subscription in subscriptions:
            subscription._close()
        return []

    # -- consumer side -----------------------------------------------------

    def subscribe(self) -> Subscription:
        """New subscription; starts with the current state as +deltas, so
        a late subscriber's replayed view converges to the same snapshot."""
        subscription = Subscription()
        with self._lock:
            catch_up = [
                Delta(1, row)
                for row, count in sorted(self._counts.items(), key=repr)
                for _ in range(count)
            ]
            self._subscriptions.append(subscription)
            completed = self.completed
        if catch_up:
            subscription._publish(catch_up)
        if completed:
            subscription._close()
        return subscription

    def snapshot(self) -> List[tuple]:
        """The current result multiset, sorted (comparable across
        engines: equals ``sorted(RunResult.results)`` of the batch run
        once the sources are exhausted)."""
        with self._lock:
            rows: List[tuple] = []
            for row, count in self._counts.items():
                rows.extend([row] * count)
        return sorted(rows)
