"""Incremental result deltas: the subscriber-facing end of a live query.

A continuous query has no final result list; instead its sink maintains
the *current* result multiset and publishes every change as a
``(+row / -row)`` delta.  Consumers :meth:`~DeltaSink.subscribe` and
receive the deltas in order; :meth:`~DeltaSink.snapshot` is the current
multiset and -- once the sources are exhausted -- equals the batch
engine's answer for the same data (pinned by
``tests/test_streaming_equivalence.py``).

``DeltaSink`` consumes exactly the streams the batch
:class:`~repro.engine.runner.SinkBolt` does: rows on the data stream are
insertions, rows on the ``:retract`` stream remove one stored instance
(a retraction of a row that is not present is ignored, matching the
batch sink's compensation semantics).

Fan-out (the serving layer's delivery path): one sink serves N
subscribers, each through its own **bounded ring buffer**.  Publishing
never waits on a slow consumer by default -- a subscriber whose ring
fills up is *shed*: its buffer is dropped and its next ``pop`` (or
iteration step) raises the terminal :class:`SubscriberOverflow`, while
the pipeline and every other subscriber continue untouched.  A
subscriber that opts into ``on_overflow='block'`` gets lossless delivery
via producer backpressure instead, at the documented cost of coupling
the pipeline (and therefore its co-subscribers) to that consumer's pace.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterator, List, Optional


from repro.core.columnar import ColumnBatch
from repro.engine.runner import RETRACT_SUFFIX
from repro.storm.topology import Bolt


@dataclass(frozen=True)
class Delta:
    """One change to the live result multiset."""

    sign: int  # +1 insertion, -1 retraction
    row: tuple

    def __str__(self):
        return f"{'+' if self.sign > 0 else '-'}{self.row}"


class SubscriberOverflow(RuntimeError):
    """Terminal event of a shed subscriber.

    Raised by :meth:`Subscription.pop` / iteration once the subscriber's
    bounded ring filled up under ``on_overflow='shed'``: the feed is
    over for this subscriber (pending deltas were dropped -- a partial
    changelog would be worse than none), but the shared topology and its
    other subscribers are unaffected.  Re-subscribe to resume from the
    current snapshot.
    """


class Subscription:
    """An ordered feed of one sink's deltas, optionally bounded.

    Iterating blocks until the next delta (or end of query); :meth:`pop`
    is the non-blocking form the inline driver uses between pump rounds.

    Args:
        max_buffer: bounded-ring capacity; ``None`` keeps the legacy
            unbounded feed.
        on_overflow: what happens when the consumer falls ``max_buffer``
            deltas behind -- ``'shed'`` (default) detaches this
            subscriber with a terminal :class:`SubscriberOverflow` and
            never stalls the pipeline; ``'block'`` backpressures the
            publisher instead.
        tenant: the tenant the serving counters attribute this feed to.
        track_latency: record publish-to-pop latencies (exposed through
            the serving stats).
        on_detach: callback invoked once when the subscription detaches
            (shed, closed, or query end).

    Raises:
        ValueError: on ``max_buffer < 1`` or an unknown ``on_overflow``.
        SubscriberOverflow: from iteration, after the ring overflowed
            under ``on_overflow='shed'``.

    Example::

        from repro.streaming.deltas import DeltaSink

        sink = DeltaSink()
        feed = sink.subscribe()
        sink.execute_batch("J", "J", [(1,), (2,)])
        assert feed.pop().row == (1,)      # deltas arrive in order
        assert feed.pop().sign == +1       # insertions carry sign +1
    """

    #: squall-lint lock-discipline contract: ring state is only touched
    #: while holding the condition (the PR 7 subscribe/fan-out race class)
    GUARDED_BY = {
        "_deltas": "_cond",
        "_closed": "_cond",
        "_overflowed": "_cond",
        "_detached": "_cond",
        "published": "_cond",
        "delivered": "_cond",
        "latencies": "_cond",
    }

    def __init__(self, max_buffer: Optional[int] = None,
                 on_overflow: str = "shed", tenant: str = "default",
                 track_latency: bool = False,
                 on_detach: Optional[Callable[["Subscription"], None]] = None):
        if max_buffer is not None and max_buffer < 1:
            raise ValueError(f"max_buffer must be >= 1, got {max_buffer}")
        if on_overflow not in ("shed", "block"):
            raise ValueError(
                f"on_overflow must be 'shed' or 'block', got {on_overflow!r}")
        self.max_buffer = max_buffer
        self.on_overflow = on_overflow
        self.tenant = tenant
        self._deltas: Deque[Delta] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._overflowed = False
        self._detached = False  # on_detach fired (exactly once)
        self._sink: Optional["DeltaSink"] = None
        self._on_detach = on_detach
        #: deltas that entered the ring / were popped by the consumer
        self.published = 0
        self.delivered = 0
        #: publish-to-ring delivery latencies (seconds), sampled when
        #: ``track_latency`` -- the serving benchmark's p99 source
        self.latencies: Optional[Deque[float]] = (
            deque(maxlen=65536) if track_latency else None)

    # -- sink side ---------------------------------------------------------

    def _publish(self, deltas: List[Delta],
                 produced_at: Optional[float] = None,
                 force: bool = False) -> bool:
        """Append deltas to the ring; False = drop me from the sink.

        Never blocks under ``on_overflow='shed'``: a full ring marks the
        subscription overflowed, clears it and returns False, so one
        stalled consumer costs the publisher a single flag write instead
        of a stall.  Under ``'block'`` the publisher waits for ring space
        (releasing it if the consumer detaches mid-wait).  ``force``
        (the catch-up path) bypasses the ring bound for both policies:
        the consumer has not received the handle yet, so a 'block' wait
        would deadlock and a 'shed' check would permanently lock out any
        subscriber whose catch-up snapshot alone exceeds ``max_buffer``
        -- the ring overshoots once at attach and is bounded
        thereafter."""
        with self._cond:
            if self._closed or self._overflowed:
                return False
            if self.max_buffer is None or force:
                self._deltas.extend(deltas)
                self.published += len(deltas)
            elif self.on_overflow == "shed":
                if len(self._deltas) + len(deltas) > self.max_buffer:
                    self._overflowed = True
                    self._deltas.clear()
                    self._cond.notify_all()
                    return False
                self._deltas.extend(deltas)
                self.published += len(deltas)
            else:  # block: lossless, chunked into whatever space frees up
                index = 0
                while index < len(deltas):
                    self._cond.wait_for(
                        lambda: len(self._deltas) < self.max_buffer
                        or self._closed)
                    if self._closed:
                        return False
                    space = self.max_buffer - len(self._deltas)
                    chunk = deltas[index:index + space]
                    self._deltas.extend(chunk)
                    self.published += len(chunk)
                    index += space
                    self._cond.notify_all()
            if self.latencies is not None and produced_at is not None:
                self.latencies.append(time.monotonic() - produced_at)
            self._cond.notify_all()
            return True

    def _close(self):
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def _fire_detach(self):
        """Run the detach hook exactly once (shed, detach or close)."""
        with self._cond:
            if self._detached:
                return
            self._detached = True
        if self._on_detach is not None:
            self._on_detach(self)

    # -- consumer side -----------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed and not self._deltas

    @property
    def overflowed(self) -> bool:
        with self._cond:
            return self._overflowed

    @property
    def backlog(self) -> int:
        """Deltas published but not yet consumed (the delta lag)."""
        with self._cond:
            return len(self._deltas)

    def detach(self):
        """Stop receiving: drop this subscription from its sink.

        The consumer-side cancel.  Buffered deltas stay poppable; a
        blocked publisher is released.  Idempotent."""
        self._close()
        sink = self._sink
        if sink is not None:
            sink.detach(self)
        else:
            self._fire_detach()

    def pop(self, block: bool = False,
            timeout: Optional[float] = None) -> Optional[Delta]:
        """Next delta, or None (buffer empty / query over / timed out).

        Raises :class:`SubscriberOverflow` once a shed subscription's
        ring is found terminal."""
        with self._cond:
            if block:
                self._cond.wait_for(
                    lambda: self._deltas or self._closed or self._overflowed,
                    timeout=timeout)
            if self._deltas:
                delta = self._deltas.popleft()
                self.delivered += 1
                if self.max_buffer is not None:
                    self._cond.notify_all()  # wake a blocked publisher
                return delta
            if self._overflowed:
                raise SubscriberOverflow(
                    f"subscriber shed: fell more than {self.max_buffer} "
                    f"deltas behind the pipeline (on_overflow='shed'); "
                    f"re-subscribe to resume from the current snapshot")
            return None

    def __iter__(self) -> Iterator[Delta]:
        while True:
            delta = self.pop(block=True)
            if delta is not None:
                yield delta
            elif self.closed:
                return


class DeltaSink(Bolt):
    """Terminal bolt of a continuous topology: state + subscriptions.

    Thread-safe (the threads executor runs it inside a worker while
    consumers read snapshots); drop-in replacement for the batch
    :class:`~repro.engine.runner.SinkBolt` in a streaming topology.

    The sink is the fan-out point of the serving layer: every delta
    batch is published to each attached :class:`Subscription`'s own
    ring, and subscriptions that report themselves dead (shed, closed,
    detached) are dropped from the fan-out list on the spot.
    """

    #: coordinator-owned: checkpoints snapshot the multiset via
    #: counts_snapshot(); the sink object itself (live condition
    #: variables and all) never crosses a process pipe
    PIPE_PICKLED = False

    #: squall-lint lock-discipline contract for the fan-out state
    GUARDED_BY = {
        "_counts": "_lock",
        "_subscriptions": "_lock",
        "delta_count": "_lock",
        "shed_count": "_lock",
        "completed": "_lock",
    }

    def __init__(self):
        self._counts: Counter = Counter()
        self._lock = threading.Lock()
        self._subscriptions: List[Subscription] = []
        self.delta_count = 0
        #: subscribers dropped because their ring overflowed
        self.shed_count = 0
        self.completed = False

    # -- dataplane side ----------------------------------------------------

    def execute(self, source: str, stream: str, values: tuple):
        return self.execute_batch(source, stream, [values])

    def execute_batch(self, source: str, stream: str, rows):
        if isinstance(rows, ColumnBatch):
            # one materialization at the subscription boundary; the per-row
            # loops below then run over plain tuples
            rows = rows.to_rows()
        retract = stream.endswith(RETRACT_SUFFIX)
        deltas: List[Delta] = []
        with self._lock:
            counts = self._counts
            if retract:
                for row in rows:
                    if counts[row] > 0:
                        counts[row] -= 1
                        if not counts[row]:
                            del counts[row]
                        deltas.append(Delta(-1, row))
                    # absent row: ignore, as the batch SinkBolt does
            else:
                for row in rows:
                    counts[row] += 1
                    deltas.append(Delta(1, row))
            self.delta_count += len(deltas)
            subscriptions = list(self._subscriptions)
        if subscriptions and deltas:
            self._fan_out(subscriptions, deltas)
        return []

    def _fan_out(self, subscriptions: List[Subscription],
                 deltas: List[Delta]):
        """Publish one delta batch to every subscriber ring."""
        produced_at = time.monotonic()
        dead: List[Subscription] = []
        for subscription in subscriptions:
            if not subscription._publish(deltas, produced_at):
                dead.append(subscription)
        if dead:
            with self._lock:
                for subscription in dead:
                    if subscription in self._subscriptions:
                        self._subscriptions.remove(subscription)
                    if subscription.overflowed:
                        self.shed_count += 1
            for subscription in dead:
                subscription._fire_detach()

    def counts_snapshot(self) -> Dict[tuple, int]:
        """The result multiset as ``{row: count}`` -- the sink's state in
        a checkpoint's coordinator blob (the sink itself stays in the
        coordinator process and is never pickled whole: subscriptions
        hold live condition variables)."""
        with self._lock:
            return dict(self._counts)

    def rollback(self, counts: Dict[tuple, int]) -> int:
        """Reset the multiset to a checkpointed state; returns the number
        of compensating deltas published.

        Crash recovery rolls the sink back to the last consistent
        snapshot before replaying the post-checkpoint stream.  Open
        subscriptions are *not* torn down: they receive compensating
        ``-row``/``+row`` deltas (retractions first, rows in sorted
        order) whose net effect is exactly the rollback, so a
        subscriber's folded view stays convergent -- it may transiently
        observe the rewind, but never a wrong final multiset.
        """
        target = Counter(counts)
        deltas: List[Delta] = []
        with self._lock:
            current = self._counts
            for row in sorted(set(current) | set(target), key=repr):
                diff = target[row] - current[row]
                if diff < 0:
                    deltas.extend([Delta(-1, row)] * -diff)
            for row in sorted(set(current) | set(target), key=repr):
                diff = target[row] - current[row]
                if diff > 0:
                    deltas.extend([Delta(1, row)] * diff)
            self._counts = Counter(
                {row: count for row, count in target.items() if count > 0})
            self.delta_count += len(deltas)
            subscriptions = list(self._subscriptions)
        if subscriptions and deltas:
            self._fan_out(subscriptions, deltas)
        return len(deltas)

    def finish(self):
        """End of query: close every subscription."""
        with self._lock:
            self.completed = True
            subscriptions = list(self._subscriptions)
            self._subscriptions.clear()
        for subscription in subscriptions:
            subscription._close()
            subscription._fire_detach()
        return []

    # -- consumer side -----------------------------------------------------

    def subscribe(self, max_buffer: Optional[int] = None,
                  on_overflow: str = "shed", tenant: str = "default",
                  track_latency: bool = False,
                  on_detach: Optional[Callable[[Subscription], None]] = None,
                  ) -> Subscription:
        """New subscription; starts with the current state as +deltas, so
        a late subscriber's replayed view converges to the same snapshot.

        ``max_buffer`` / ``on_overflow`` bound the subscriber's ring
        (see :class:`Subscription`); the defaults keep the legacy
        unbounded feed.  The catch-up is delivered in full even when it
        exceeds ``max_buffer`` (one bounded overshoot at attach) --
        otherwise a shed subscriber could never re-attach to a large
        resident result.  ``on_detach`` fires exactly once when the
        subscription leaves the sink -- shed, detached or closed -- the
        broker's refcounting hook."""
        subscription = Subscription(
            max_buffer=max_buffer, on_overflow=on_overflow, tenant=tenant,
            track_latency=track_latency, on_detach=on_detach)
        subscription._sink = self
        with self._lock:
            catch_up = [
                Delta(1, row)
                for row, count in sorted(self._counts.items(), key=repr)
                for _ in range(count)
            ]
            completed = self.completed
            if catch_up:
                # published while still holding the sink lock: a
                # concurrent execute_batch cannot order a newer delta
                # batch ahead of this snapshot in the ring (a -row delta
                # sequenced before its +row would be silently dropped by
                # changelog semantics, leaving the subscriber's converged
                # multiset permanently stale).  force=True never blocks.
                subscription._publish(catch_up, time.monotonic(),
                                      force=True)
            if not completed:
                self._subscriptions.append(subscription)
        if completed:
            subscription._close()
            subscription._fire_detach()
        return subscription

    def detach(self, subscription: Subscription):
        """Drop one subscription from the fan-out (consumer cancelled)."""
        with self._lock:
            if subscription in self._subscriptions:
                self._subscriptions.remove(subscription)
        subscription._fire_detach()

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def snapshot(self) -> List[tuple]:
        """The current result multiset, sorted (comparable across
        engines: equals ``sorted(RunResult.results)`` of the batch run
        once the sources are exhausted)."""
        with self._lock:
            rows: List[tuple] = []
            for row, count in self._counts.items():
                rows.extend([row] * count)
        return sorted(rows)
