"""Multi-tenant serving layer: shared resident topologies behind
fan-out subscriptions.

- :mod:`repro.serving.fingerprint` -- structural plan canonicalization,
  the broker's dedupe key;
- :mod:`repro.serving.broker` -- :class:`QueryBroker`: admission
  control, refcounted topology lifecycle, per-tenant metrics;
- :mod:`repro.serving.server` -- :class:`DeltaServer`: asyncio TCP
  front-end pushing SSE-style delta frames.

Typical in-process use::

    broker = QueryBroker(options=ExecutionOptions(executor="threads"))
    session = repro.connect(catalog, broker=broker, tenant="alice")
    with session.stream("SELECT k, COUNT(*) FROM t GROUP BY k") as sub:
        for delta in sub:
            ...
"""

from repro.serving.broker import (
    AdmissionError,
    BrokerSubscription,
    QueryBroker,
    ResidentTopology,
)
from repro.serving.fingerprint import describe_plan, plan_fingerprint
from repro.serving.server import DeltaServer

__all__ = [
    "AdmissionError",
    "BrokerSubscription",
    "DeltaServer",
    "QueryBroker",
    "ResidentTopology",
    "describe_plan",
    "plan_fingerprint",
]
