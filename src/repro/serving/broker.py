"""QueryBroker: shared resident topologies behind a subscription API.

The multi-tenant serving layer's control plane.  Sessions hand the
broker a physical plan; the broker canonicalizes it to a structural
:func:`~repro.serving.fingerprint.plan_fingerprint` and either attaches
the caller to an already-running resident topology (same plan, same
data, same pipeline knobs) or admits a new one.  One topology thus
serves N subscribers -- the paper's "many clients watching the same
continuous query" deployment shape -- and the incremental work of
keeping its result current is paid once, not per client.

Isolation contract: subscribers never interfere.

- Every subscription gets its own bounded ring
  (:class:`~repro.streaming.deltas.Subscription`); a slow consumer is
  shed with a terminal
  :class:`~repro.streaming.deltas.SubscriberOverflow` (or, if it opted
  into ``on_overflow='block'``, throttles only itself via its ring --
  the shared pipeline keeps publishing to everyone else).
- Admission control caps resident topologies and subscribers per
  topology / per tenant; a refused subscribe raises
  :class:`AdmissionError` *before* touching any running query.
- Teardown is refcounted: each subscription's exactly-once detach hook
  (fired on shed, explicit detach, or end of query) decrements the
  resident's count; the last one out removes the topology from the
  registry and stops its driver.

Per-tenant accounting lands in a shared
:class:`~repro.storm.metrics.ServingMetrics` table.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterator, List, Optional

from repro.core.options import ExecutionOptions
from repro.engine.component import PhysicalPlan
from repro.serving.fingerprint import describe_plan, plan_fingerprint
from repro.storm.metrics import ServingMetrics
from repro.streaming.deltas import Delta, Subscription
from repro.streaming.runner import StreamingQuery, stream_plan
from repro.streaming.sources import PushSource


class AdmissionError(RuntimeError):
    """The broker refused a subscription before any resources were spent:
    topology registry full, topology at its subscriber cap, or the tenant
    at its quota.  Nothing was started; retry after detaching something.
    """


class ResidentTopology:
    """One running topology plus its broker-side bookkeeping."""

    def __init__(self, fingerprint: str, query: StreamingQuery,
                 description: str, options: ExecutionOptions):
        self.fingerprint = fingerprint
        self.query = query
        self.description = description
        self.options = options
        self.subscribers = 0       # guarded by the broker lock
        self.total_subscribers = 0  # monotonic, for introspection
        self.tenants: Dict[str, int] = {}
        self.driver: Optional[threading.Thread] = None
        self.error: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.query.done

    def info(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "subscribers": self.subscribers,
            "total_subscribers": self.total_subscribers,
            "tenants": dict(self.tenants),
            "done": self.done,
            "executor": self.options.executor,
            "batch_size": self.options.batch_size,
            "columnar": self.options.columnar,
        }


class BrokerSubscription:
    """A consumer's handle on a broker-managed delta feed.

    Iterate for live deltas (raises
    :class:`~repro.streaming.deltas.SubscriberOverflow` if shed);
    :meth:`snapshot` reads the shared topology's current result
    multiset; :meth:`detach` releases the seat (also on context-manager
    exit).  The underlying ring is this subscriber's alone -- nothing
    here can stall the topology or its co-subscribers.
    """

    def __init__(self, broker: "QueryBroker", resident: ResidentTopology,
                 subscription: Subscription):
        self.broker = broker
        self.resident = resident
        self.subscription = subscription

    @property
    def tenant(self) -> str:
        return self.subscription.tenant

    @property
    def fingerprint(self) -> str:
        return self.resident.fingerprint

    @property
    def closed(self) -> bool:
        return self.subscription.closed

    @property
    def overflowed(self) -> bool:
        return self.subscription.overflowed

    def pop(self, block: bool = False,
            timeout: Optional[float] = None) -> Optional[Delta]:
        return self.subscription.pop(block=block, timeout=timeout)

    def __iter__(self) -> Iterator[Delta]:
        return iter(self.subscription)

    def snapshot(self) -> List[tuple]:
        """Current result multiset of the *shared* topology (sorted)."""
        return self.resident.query.snapshot()

    def stats(self) -> Dict[str, object]:
        """This subscriber's delivery state + the topology's progress.

        The unified stats surface: stream counters and checkpoint
        counters from :meth:`StreamingQuery.stats` plus this tenant's
        ``"serving"`` admission/shedding counters from the broker."""
        query = self.resident.query
        stats = query.stats()
        stats.update(
            tenant=self.tenant,
            fingerprint=self.fingerprint,
            backlog=self.subscription.backlog,
            published=self.subscription.published,
            delivered=self.subscription.delivered,
            overflowed=self.subscription.overflowed,
            watermark_age=query.cluster.stats.watermark_age(),
            subscribers=self.resident.subscribers,
            serving=self.broker.metrics.snapshot(self.tenant)[self.tenant],
        )
        return stats

    def detach(self):
        """Release this seat; the last one out stops the topology."""
        self.subscription.detach()

    def __enter__(self) -> "BrokerSubscription":
        return self

    def __exit__(self, *exc):
        self.detach()
        return False


class QueryBroker:
    """Registry of resident topologies, deduped by plan fingerprint.

    Args:
        max_topologies: resident (running) topologies at once.
        max_subscribers_per_topology: seats on one topology.
        max_subscribers_per_tenant: active seats per tenant across all
            topologies.
        options: the broker's execution default layer -- every
            subscription's options are
            ``broker.options.overlay(call options)`` before resolving,
            so a deployment can pin e.g. ``executor='threads'`` once.

    Raises:
        AdmissionError: from :meth:`subscribe` when any of the three
            limits would be exceeded (counted per tenant in
            :meth:`stats`; the pipeline itself is never affected).

    Example::

        import repro

        broker = repro.QueryBroker(max_topologies=2)
        catalog = None  # sessions share one broker, not one catalog
        a = repro.connect(broker=broker, tenant="alice")
        assert broker.topology_count == 0  # started on first stream()

    Two sessions issuing the same SQL share one resident pipeline:
    their subscriptions report equal ``fingerprint`` values and the
    broker runs a single :class:`~repro.streaming.StreamingCluster`
    for both (torn down when the last subscriber detaches).
    """

    #: squall-lint lock-discipline contract: registry and quota counters
    #: only move under the broker RLock
    GUARDED_BY = {
        "_registry": "_lock",
        "_tenant_active": "_lock",
    }

    def __init__(self, max_topologies: int = 8,
                 max_subscribers_per_topology: int = 1024,
                 max_subscribers_per_tenant: int = 1024,
                 options: Optional[ExecutionOptions] = None):
        self.max_topologies = max_topologies
        self.max_subscribers_per_topology = max_subscribers_per_topology
        self.max_subscribers_per_tenant = max_subscribers_per_tenant
        self.options = options or ExecutionOptions()
        self.metrics = ServingMetrics()
        self._lock = threading.RLock()
        self._registry: Dict[str, ResidentTopology] = {}
        self._tenant_active: Dict[str, int] = {}

    # -- introspection -----------------------------------------------------

    @property
    def topology_count(self) -> int:
        with self._lock:
            return len(self._registry)

    def topologies(self) -> List[Dict[str, object]]:
        with self._lock:
            return [resident.info() for resident in self._registry.values()]

    def resident(self, fingerprint: str) -> Optional[ResidentTopology]:
        with self._lock:
            return self._registry.get(fingerprint)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            residents = list(self._registry.values())
        return {
            "topologies": [r.info() for r in residents],
            "tenants": self.metrics.snapshot(),
        }

    def collect(self) -> List[tuple]:
        """Export-time metric samples for a ``/metrics`` scrape.

        Per-tenant serving counters, then each resident topology's
        stream/checkpoint counters labelled by fingerprint prefix, then
        -- when a resident runs observed -- its observer registry's
        instruments (latency histograms, row counters, skew gauges)."""
        samples = list(self.metrics.collect())
        with self._lock:
            residents = list(self._registry.values())
        for resident in residents:
            labels = {"fingerprint": resident.fingerprint[:12]}
            cluster = resident.query.cluster
            samples.extend(cluster.stats.collect(labels))
            samples.extend(cluster.checkpoints.collect(labels))
            observer = cluster.observer
            if observer is not None:
                samples.extend(observer.registry.samples())
        return samples

    # -- subscription lifecycle --------------------------------------------

    def subscribe_plan(self, plan: PhysicalPlan, *,
                       ts_positions: Optional[Dict[str, int]] = None,
                       options: Optional[ExecutionOptions] = None,
                       tenant: str = "default",
                       sources: Optional[Dict[str, PushSource]] = None,
                       track_latency: bool = False) -> BrokerSubscription:
        """Attach to the resident topology for ``plan`` (starting one if
        none is running).

        The fingerprint covers the plan structure, ``ts_positions`` and
        the resolved *pipeline-shaping* knobs; ``max_buffer`` /
        ``on_overflow`` are subscriber-side and differ freely between
        co-subscribers.  Caller-supplied push ``sources`` are part of the
        topology's identity (two queries over different live feeds must
        not share state), keyed by object.

        Raises :class:`AdmissionError` when a limit would be exceeded.
        """
        resolved = self.options.overlay(
            options or ExecutionOptions()).resolve(default_batch_size=64)
        fingerprint = plan_fingerprint(plan, ts_positions, resolved)
        if sources:
            fingerprint += "+" + ",".join(
                f"{name}@{id(source):x}" for name, source
                in sorted(sources.items()))
        with self._lock:
            resident = self._registry.get(fingerprint)
            if resident is None:
                if len(self._registry) >= self.max_topologies:
                    self.metrics.record(tenant, "refused")
                    raise AdmissionError(
                        f"topology registry full "
                        f"({self.max_topologies} resident); detach unused "
                        f"subscriptions or raise max_topologies")
                self._check_tenant(tenant)
                resident = self._admit(plan, fingerprint, ts_positions,
                                       resolved, sources)
            else:
                if resident.subscribers >= self.max_subscribers_per_topology:
                    self.metrics.record(tenant, "refused")
                    raise AdmissionError(
                        f"topology {fingerprint} at its subscriber cap "
                        f"({self.max_subscribers_per_topology})")
                self._check_tenant(tenant)
            resident.subscribers += 1
            resident.total_subscribers += 1
            resident.tenants[tenant] = resident.tenants.get(tenant, 0) + 1
            self._tenant_active[tenant] = (
                self._tenant_active.get(tenant, 0) + 1)
            self.metrics.record(tenant, "admitted")
            subscription = resident.query.cluster.subscribe(
                max_buffer=resolved.max_buffer,
                on_overflow=resolved.on_overflow,
                tenant=tenant,
                track_latency=track_latency,
                on_detach=self._release_hook(resident),
            )
        return BrokerSubscription(self, resident, subscription)

    def _check_tenant(self, tenant: str):  # squall-lint: holds=_lock
        if (self._tenant_active.get(tenant, 0)
                >= self.max_subscribers_per_tenant):
            self.metrics.record(tenant, "refused")
            raise AdmissionError(
                f"tenant {tenant!r} at its quota "
                f"({self.max_subscribers_per_tenant} active subscriptions)")

    def _admit(self, plan: PhysicalPlan,  # squall-lint: holds=_lock
               fingerprint: str,
               ts_positions: Optional[Dict[str, int]],
               resolved: ExecutionOptions,
               sources: Optional[Dict[str, PushSource]]) -> ResidentTopology:
        """Start a new resident topology (broker lock held)."""
        query = stream_plan(plan, ts_positions=ts_positions, options=resolved,
                            sources=sources)
        resident = ResidentTopology(
            fingerprint, query,
            describe_plan(plan, ts_positions, resolved), resolved)
        self._registry[fingerprint] = resident
        driver = threading.Thread(
            target=self._drive, args=(resident,),
            name=f"broker-{fingerprint[:8]}", daemon=True)
        resident.driver = driver
        driver.start()
        return resident

    def _drive(self, resident: ResidentTopology):
        """Per-topology driver: pump the query until exhaustion or stop.

        When the sources drain (or stop() is requested) the sink's
        ``finish`` closes every subscription, each detach hook fires,
        and the refcount walks itself to zero -- the registry entry
        disappears without anyone joining this thread."""
        try:
            resident.query.run()
        except Exception as exc:  # surfaced through subscriber stats
            resident.error = f"{type(exc).__name__}: {exc}"
            cluster = resident.query.cluster
            cluster._done.set()
            try:
                # close the feeds so no consumer blocks on a dead query;
                # the detach hooks run the usual refcount teardown
                cluster.sink.finish()
            except Exception:
                pass

    def _release_hook(self, resident: ResidentTopology
                      ) -> Callable[[Subscription], None]:
        """Exactly-once-per-subscription refcount release."""

        def release(subscription: Subscription):
            tenant = subscription.tenant
            stop = False
            with self._lock:
                resident.subscribers -= 1
                count = resident.tenants.get(tenant, 1) - 1
                if count:
                    resident.tenants[tenant] = count
                else:
                    resident.tenants.pop(tenant, None)
                active = self._tenant_active.get(tenant, 1) - 1
                if active:
                    self._tenant_active[tenant] = active
                else:
                    self._tenant_active.pop(tenant, None)
                if subscription.overflowed:
                    self.metrics.record(tenant, "shed")
                else:
                    self.metrics.record(tenant, "detached")
                # "published" counts deltas that entered the tenant's
                # rings: stable whether or not the consumer has drained
                # its buffered tail yet (rings stay poppable after close)
                self.metrics.record(
                    tenant, "published", subscription.published)
                if (resident.subscribers <= 0
                        and self._registry.get(
                            resident.fingerprint) is resident):
                    del self._registry[resident.fingerprint]
                    stop = True
            if stop:
                # non-blocking: this hook may run inside the topology's
                # own worker (a shed detected mid-fan-out) -- waiting for
                # the driver here would deadlock.  The driver notices the
                # flag at its next round and flushes on its way out.
                resident.query.stop(wait=False)

        return release

    def close(self, wait: bool = True, timeout: float = 10.0):
        """Stop every resident topology (subscriptions get their final
        deltas and close; detach hooks empty the registry)."""
        with self._lock:
            residents = list(self._registry.values())
        for resident in residents:
            resident.query.stop(wait=False)
        if wait:
            for resident in residents:
                driver = resident.driver
                if driver is not None and driver is not threading.current_thread():
                    driver.join(timeout)
