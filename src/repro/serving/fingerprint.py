"""Structural plan fingerprints: the broker's dedupe key.

Two subscriptions share one resident topology exactly when their
physical plans are *structurally identical over the same data* and run
under the same pipeline-shaping execution options.  This module
canonicalizes a :class:`~repro.engine.component.PhysicalPlan` (plus the
streaming ``ts_positions`` and the resolved
:class:`~repro.core.options.ExecutionOptions`) into a deterministic text
form and hashes it.

What goes into the fingerprint:

- every source: name, relation identity, pushed-down predicate and
  projection (their frozen-dataclass reprs are deterministic),
  parallelism;
- every join: conditions, scheme, machine count, local algorithm,
  window, output positions, seed;
- the aggregation: group positions, aggregate specs, window, key
  domain, parallelism, online-ness;
- the event-time mapping (``ts_positions``) and the pipeline-shaping
  execution knobs (``batch_size``, ``executor``, ``columnar``,
  ``rate``, ``observe``) -- two subscribers asking for different batch
  sizes get different topologies, because a topology has exactly one.

What deliberately stays out: the *subscriber-side* knobs
(``max_buffer``, ``on_overflow``, tenant) -- they shape one consumer's
ring, not the shared pipeline.

Relation identity is **by object, not by value**: the canonical token
for a relation is its name, schema, row count and the identity of its
``rows`` list.  Sessions that share a catalog (the serving deployment
shape -- ``repro.connect(broker=...)`` with one registry) dedupe;
sessions that register equal but separately-built copies of a dataset
do not (safe: never deduping is always correct, wrongly deduping never
is).  Hashing row *contents* would make the fingerprint O(data) per
subscribe -- exactly the cost the broker exists to avoid.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from repro.core.options import ExecutionOptions
from repro.core.schema import Relation
from repro.engine.component import PhysicalPlan


def _relation_token(relation: Relation) -> str:
    return (f"{relation.name}({','.join(relation.schema.names)})"
            f"#{len(relation.rows)}@{id(relation.rows):x}")


def _scheme_token(scheme) -> str:
    if isinstance(scheme, str):
        return scheme
    describe = getattr(scheme, "describe", None)
    detail = describe() if callable(describe) else repr(scheme)
    return f"{type(scheme).__name__}:{detail}"


def describe_plan(plan: PhysicalPlan,
                  ts_positions: Optional[Dict[str, int]] = None,
                  options: Optional[ExecutionOptions] = None) -> str:
    """The canonical text form a fingerprint hashes (debuggable)."""
    lines = []
    for source in sorted(plan.sources, key=lambda s: s.name):
        lines.append(
            f"source {source.name} rel={_relation_token(source.relation)} "
            f"pred={source.predicate!r} proj={source.projection!r} "
            f"names={source.projection_names!r} par={source.parallelism}")
    for join in plan.joins:
        lines.append(
            f"join {join.name} conds={join.spec.conditions!r} "
            f"rels={join.spec.relation_names!r} machines={join.machines} "
            f"scheme={_scheme_token(join.scheme)} local={join.local_join} "
            f"window={join.window!r} out={join.output_positions!r} "
            f"seed={join.seed}")
    if plan.aggregation is not None:
        agg = plan.aggregation
        lines.append(
            f"agg {agg.name} groups={list(agg.group_positions)!r} "
            f"aggs={list(agg.aggregates)!r} par={agg.parallelism} "
            f"keys={agg.key_domain!r} online={agg.online} "
            f"window={agg.window!r}")
    if ts_positions:
        lines.append(f"ts={sorted(ts_positions.items())!r}")
    if options is not None:
        lines.append(
            f"exec batch={options.batch_size} executor={options.executor} "
            f"columnar={options.columnar} rate={options.rate} "
            f"observe={options.observe}")
    return "\n".join(lines)


def plan_fingerprint(plan: PhysicalPlan,
                     ts_positions: Optional[Dict[str, int]] = None,
                     options: Optional[ExecutionOptions] = None) -> str:
    """Stable dedupe key for (plan, event-time mapping, pipeline knobs)."""
    text = describe_plan(plan, ts_positions, options)
    return hashlib.sha256(text.encode()).hexdigest()[:20]
