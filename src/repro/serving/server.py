"""DeltaServer: an asyncio push front-end over the QueryBroker.

The network face of the serving layer: clients connect over TCP, send
one JSON request line, and receive a live SSE-style stream of result
deltas from the shared resident topology -- many clients watching the
same continuous query cost the broker one topology plus N rings.

Protocol (newline-delimited, UTF-8):

- request: one JSON object line::

      {"sql": "SELECT ...", "tenant": "alice",
       "options": {"batch_size": 64, "max_buffer": 1024}}

  ``tenant`` and ``options`` (a subset of
  :class:`~repro.core.options.ExecutionOptions` fields) are optional.

- response: SSE-style frames, each ``event: <kind>`` + ``data: <json>``
  + blank line.  Kinds:

  - ``delta`` -- ``{"sign": +1|-1, "row": [...]}``, one per result
    change;
  - ``end`` -- the query completed (final stats attached);
  - ``error`` -- admission refusal, overflow shedding, or a bad
    request; terminal.

A request line starting with ``GET `` is served as a one-shot HTTP
metrics scrape instead: ``GET /metrics`` returns the broker's current
samples in Prometheus text exposition format (v0.0.4), ``GET
/metrics.json`` the same samples as a flat JSON object; anything else
404s.  The samples cover per-tenant serving counters, each resident
topology's stream/checkpoint counters, and -- for topologies running
with ``observe='metrics'``/``'trace'`` -- the observer registry's
latency histograms, row counters and skew gauges.

The blocking subscription pops run in the event loop's default executor
(`run_in_executor`), so one stalled client never blocks the loop; each
client's ring bounds its memory and the broker sheds it on overflow
exactly as for in-process subscribers.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from typing import Optional

from repro.core.options import ExecutionOptions
from repro.serving.broker import AdmissionError, QueryBroker
from repro.sql.catalog import SqlSession
from repro.streaming.deltas import SubscriberOverflow


def _frame(kind: str, payload: dict) -> bytes:
    return (f"event: {kind}\ndata: {json.dumps(payload)}\n\n").encode()


def parse_options(raw: Optional[dict]) -> ExecutionOptions:
    """Build ExecutionOptions from a request's ``options`` object,
    rejecting unknown fields (a typo'd knob must not silently noop)."""
    if not raw:
        return ExecutionOptions()
    known = {field.name for field in dataclasses.fields(ExecutionOptions)}
    unknown = set(raw) - known
    if unknown:
        raise ValueError(
            f"unknown execution options {sorted(unknown)}; "
            f"known: {sorted(known)}")
    return ExecutionOptions(**raw)


class DeltaServer:
    """Serve live query deltas to TCP clients through one broker.

    ``session_factory`` builds the per-connection
    :class:`~repro.sql.catalog.SqlSession` (bound to this server's
    broker); the default factory shares ``catalog`` across connections,
    which is what makes cross-client topology dedupe effective.
    """

    def __init__(self, catalog, broker: Optional[QueryBroker] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 poll_timeout: float = 0.1):
        self.catalog = catalog
        self.broker = broker or QueryBroker()
        self.host = host
        self.port = port
        self.poll_timeout = poll_timeout
        self._server: Optional[asyncio.AbstractServer] = None

    def session(self, tenant: str = "default") -> SqlSession:
        return SqlSession(self.catalog, broker=self.broker, tenant=tenant)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "DeltaServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.broker.close(wait=False)

    async def __aenter__(self) -> "DeltaServer":
        return await self.start()

    async def __aexit__(self, *exc):
        await self.close()
        return False

    async def serve_forever(self):
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- per-connection protocol -------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter):
        subscription = None
        try:
            line = await reader.readline()
            if not line:
                return
            if line.startswith(b"GET "):
                await self._serve_http(writer, line)
                return
            try:
                request = json.loads(line)
                sql = request["sql"]
                tenant = request.get("tenant", "default")
                options = parse_options(request.get("options"))
            except (ValueError, KeyError, TypeError) as exc:
                writer.write(_frame("error", {
                    "error": "bad_request", "detail": str(exc)}))
                await writer.drain()
                return
            try:
                subscription = self.session(tenant).stream(
                    sql, options=options)
            except AdmissionError as exc:
                writer.write(_frame("error", {
                    "error": "admission_refused", "detail": str(exc)}))
                await writer.drain()
                return
            except Exception as exc:  # parse / plan errors
                writer.write(_frame("error", {
                    "error": "bad_query",
                    "detail": f"{type(exc).__name__}: {exc}"}))
                await writer.drain()
                return
            await self._push_deltas(writer, subscription)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if subscription is not None:
                subscription.detach()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_http(self, writer: asyncio.StreamWriter,
                          request_line: bytes):
        """One-shot HTTP scrape endpoint (``/metrics``, ``/metrics.json``).

        Minimal HTTP/1.0: parse the path off the request line, render
        the broker's current samples, respond, close.  Request headers
        (if any) are left unread -- the connection is torn down either
        way, which every scrape client handles."""
        from repro.obs.prometheus import render

        parts = request_line.decode("latin-1").split()
        path = parts[1] if len(parts) > 1 else "/"
        samples = self.broker.collect()
        if path == "/metrics":
            body = render(samples).encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            status = "200 OK"
        elif path == "/metrics.json":
            flat = {}
            for name, labels, value, _kind in samples:
                rendered = ",".join(
                    f'{key}="{labels[key]}"' for key in sorted(labels))
                flat[f"{name}{{{rendered}}}" if rendered else name] = value
            body = json.dumps(flat, sort_keys=True).encode()
            content_type = "application/json"
            status = "200 OK"
        else:
            body = b"not found\n"
            content_type = "text/plain; charset=utf-8"
            status = "404 Not Found"
        writer.write(
            f"HTTP/1.0 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body)
        await writer.drain()

    async def _push_deltas(self, writer: asyncio.StreamWriter, subscription):
        loop = asyncio.get_running_loop()
        while True:
            try:
                # the pop blocks in a worker thread, not the event loop;
                # the timeout keeps the coroutine cancellable
                delta = await loop.run_in_executor(
                    None, lambda: subscription.pop(
                        block=True, timeout=self.poll_timeout))
            except SubscriberOverflow as exc:
                writer.write(_frame("error", {
                    "error": "subscriber_overflow", "detail": str(exc)}))
                await writer.drain()
                return
            if delta is not None:
                writer.write(_frame("delta", {
                    "sign": delta.sign, "row": list(delta.row)}))
                await writer.drain()
                continue
            if subscription.closed:
                writer.write(_frame("end", {"stats": _jsonable(
                    subscription.stats())}))
                await writer.drain()
                return


def _jsonable(value):
    """Best-effort JSON projection of a stats dict."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
