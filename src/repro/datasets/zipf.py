"""Zipf-distributed key generation.

Zipfian distributions appear in Internet packet traces, city sizes, word
frequencies and advertisement clickstreams (paper section 1); the
evaluation uses TPC-H variants with 'zipfian distribution and skew factor
of 2'.  Key ``k`` (1-based rank) is drawn with probability proportional to
``1 / k**s``.
"""

from __future__ import annotations

import bisect
import itertools
from typing import List

from repro.util import make_rng


def zipf_frequencies(n_keys: int, s: float) -> List[float]:
    """Normalised zipf probabilities for ranks 1..n_keys (s=0 -> uniform)."""
    if n_keys <= 0:
        raise ValueError("n_keys must be positive")
    if s < 0:
        raise ValueError("skew parameter must be non-negative")
    weights = [1.0 / (rank ** s) for rank in range(1, n_keys + 1)]
    total = sum(weights)
    return [w / total for w in weights]


class ZipfGenerator:
    """Draws keys 0..n_keys-1 with zipf(s) probabilities.

    Uses inverse-CDF sampling over a precomputed cumulative table, so draws
    are O(log n) and fully reproducible given the seed.
    """

    def __init__(self, n_keys: int, s: float, seed: int = 0):
        self.n_keys = n_keys
        self.s = s
        frequencies = zipf_frequencies(n_keys, s)
        self._cumulative = list(itertools.accumulate(frequencies))
        self._cumulative[-1] = 1.0  # guard against rounding drift
        self._rng = make_rng(seed)
        self.top_frequency = frequencies[0]

    def draw(self) -> int:
        return bisect.bisect_left(self._cumulative, self._rng.random())

    def draws(self, n: int) -> List[int]:
        return [self.draw() for _ in range(n)]

    def expected_top_share(self) -> float:
        """Fraction of draws expected to hit the most frequent key."""
        return self.top_frequency
