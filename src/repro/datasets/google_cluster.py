"""Synthetic Google cluster-monitoring trace (paper sections 6 and 7.4).

The public trace has machine events, job events and task events; the
Google TaskCount query joins all three and counts FAIL task events per
(machine, platform).  The generator preserves what that experiment
depends on: the foreign-key structure, a configurable FAIL fraction, and
the size ratio 'the total size of Machine_Events and Job_Events is only
14.5% of the relation Task_Events size'.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.schema import Relation, Schema
from repro.util import make_rng

MACHINE_EVENTS_SCHEMA = Schema.of("machineID", "eventType:str", "platform:str",
                                  "cpu:float", "memory:float")
JOB_EVENTS_SCHEMA = Schema.of("jobID", "eventType:str", "user:str",
                              "schedulingClass", "production")
TASK_EVENTS_SCHEMA = Schema.of("jobID", "taskIndex", "machineID",
                               "eventType:str", "priority")

PLATFORMS = ["PlatformA", "PlatformB", "PlatformC"]
MACHINE_EVENT_TYPES = ["ADD", "REMOVE", "UPDATE"]
TASK_EVENT_TYPES = ["SUBMIT", "SCHEDULE", "EVICT", "FAIL", "FINISH", "KILL"]
JOB_EVENT_TYPES = ["SUBMIT", "SCHEDULE", "FINISH", "FAIL"]


class GoogleClusterGenerator:
    """Generates machine_events, job_events and task_events relations.

    ``task_events`` dominates; machine+job events together default to
    ~14.5% of its size, matching the paper's reported ratio.
    """

    def __init__(self, n_machines: int = 40, n_jobs: int = 60,
                 n_task_events: int = 2000, fail_fraction: float = 0.15,
                 production_fraction: float = 0.3, seed: int = 0):
        if not 0 <= fail_fraction <= 1:
            raise ValueError("fail_fraction must be in [0, 1]")
        self.n_machines = n_machines
        self.n_jobs = n_jobs
        self.n_task_events = n_task_events
        self.fail_fraction = fail_fraction
        self.production_fraction = production_fraction
        self.seed = seed

    def generate(self) -> Dict[str, Relation]:
        rng = make_rng(self.seed)
        machine_rows: List[tuple] = []
        platforms = {}
        for machine_id in range(self.n_machines):
            platform = PLATFORMS[machine_id % len(PLATFORMS)]
            platforms[machine_id] = platform
            machine_rows.append(
                (machine_id, "ADD", platform,
                 round(rng.uniform(0.25, 1.0), 2), round(rng.uniform(0.25, 1.0), 2))
            )
        job_rows: List[tuple] = []
        for job_id in range(self.n_jobs):
            production = 1 if rng.random() < self.production_fraction else 0
            job_rows.append(
                (job_id, rng.choice(JOB_EVENT_TYPES), f"user{job_id % 7}",
                 rng.randrange(4), production)
            )
        task_rows: List[tuple] = []
        non_fail = [t for t in TASK_EVENT_TYPES if t != "FAIL"]
        for index in range(self.n_task_events):
            job_id = rng.randrange(self.n_jobs)
            machine_id = rng.randrange(self.n_machines)
            if rng.random() < self.fail_fraction:
                event = "FAIL"
            else:
                event = rng.choice(non_fail)
            task_rows.append((job_id, index, machine_id, event, rng.randrange(12)))
        return {
            "machine_events": Relation("machine_events", MACHINE_EVENTS_SCHEMA,
                                       machine_rows),
            "job_events": Relation("job_events", JOB_EVENTS_SCHEMA, job_rows),
            "task_events": Relation("task_events", TASK_EVENTS_SCHEMA, task_rows),
        }

    def small_to_large_ratio(self) -> float:
        """(machine + job events) / task events -- the paper reports 14.5%."""
        return (self.n_machines + self.n_jobs) / self.n_task_events
