"""A from-scratch TPC-H data generator with a skew knob.

Generates the eight TPC-H tables at a configurable micro-scale, preserving
the official relative cardinalities (per scale factor 1.0 of *this*
generator: 150 customers, 1 500 orders, 6 000 lineitems, 200 parts, 800
partsupps, 10 suppliers, 25 nations, 5 regions -- the same 15:150:600:20:
80:1 proportions as dbgen, divided by 1 000).

``skew`` applies a zipf distribution (the paper's evaluation uses skew
factor 2) to the foreign keys that the skewed experiments join on --
``lineitem.partkey`` and ``orders.custkey`` -- while ``skew=0`` keeps the
uniform official behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.schema import Relation, Schema
from repro.datasets.zipf import ZipfGenerator
from repro.util import make_rng

NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
STATUSES = ["F", "O", "P"]
RETURN_FLAGS = ["A", "N", "R"]
BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]

SCHEMAS = {
    "region": Schema.of("regionkey", "name:str"),
    "nation": Schema.of("nationkey", "name:str", "regionkey"),
    "supplier": Schema.of("suppkey", "name:str", "nationkey", "acctbal:float"),
    "customer": Schema.of("custkey", "name:str", "nationkey",
                          "mktsegment:str", "acctbal:float"),
    "part": Schema.of("partkey", "name:str", "brand:str", "retailprice:float"),
    "partsupp": Schema.of("partkey", "suppkey", "availqty", "supplycost:float"),
    "orders": Schema.of("orderkey", "custkey", "orderstatus:str",
                        "totalprice:float", "orderdate:date",
                        "orderpriority:str", "shippriority"),
    "lineitem": Schema.of("orderkey", "partkey", "suppkey", "quantity",
                          "extendedprice:float", "discount:float",
                          "shipdate:date", "commitdate:date", "returnflag:str"),
}

# cardinality per unit scale (dbgen ratios / 1000)
BASE_COUNTS = {
    "supplier": 10,
    "customer": 150,
    "part": 200,
    "partsupp": 800,  # 4 suppliers per part
    "orders": 1500,
    "lineitem": 6000,  # ~4 lineitems per order
}


def _date(rng, start_year=1992, end_year=1998) -> str:
    year = rng.randrange(start_year, end_year + 1)
    month = rng.randrange(1, 13)
    day = rng.randrange(1, 29)
    return f"{year:04d}-{month:02d}-{day:02d}"


class TPCHGenerator:
    """Generates a consistent micro TPC-H database.

    ``scale`` multiplies every base cardinality; ``skew`` > 0 draws
    ``lineitem.partkey`` and ``orders.custkey`` from zipf(skew) instead of
    uniformly (the paper's skewed TPC-H variant).
    """

    def __init__(self, scale: float = 1.0, skew: float = 0.0, seed: int = 0,
                 overrides: Optional[Dict[str, int]] = None):
        if scale <= 0:
            raise ValueError("scale must be positive")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.scale = scale
        self.skew = skew
        self.seed = seed
        self.counts = {
            table: max(1, int(base * scale)) for table, base in BASE_COUNTS.items()
        }
        for table, count in (overrides or {}).items():
            if table not in self.counts:
                raise ValueError(f"cannot override unknown table {table!r}")
            if count <= 0:
                raise ValueError("override counts must be positive")
            self.counts[table] = count

    def generate(self, tables: Optional[List[str]] = None) -> Dict[str, Relation]:
        """Generate the requested tables (default: all eight)."""
        wanted = set(tables or list(SCHEMAS))
        unknown = wanted - set(SCHEMAS)
        if unknown:
            raise ValueError(f"unknown TPC-H tables: {sorted(unknown)}")
        rng = make_rng(self.seed)
        out: Dict[str, Relation] = {}

        region = Relation("region", SCHEMAS["region"],
                          [(i, name) for i, name in enumerate(REGIONS)])
        nation = Relation("nation", SCHEMAS["nation"],
                          [(i, name, i % len(REGIONS))
                           for i, name in enumerate(NATIONS)])
        if "region" in wanted:
            out["region"] = region
        if "nation" in wanted:
            out["nation"] = nation

        n_supplier = self.counts["supplier"]
        n_customer = self.counts["customer"]
        n_part = self.counts["part"]
        n_orders = self.counts["orders"]
        n_lineitem = self.counts["lineitem"]

        if "supplier" in wanted:
            out["supplier"] = Relation("supplier", SCHEMAS["supplier"], [
                (i, f"Supplier#{i:09d}", rng.randrange(len(NATIONS)),
                 round(rng.uniform(-999.99, 9999.99), 2))
                for i in range(n_supplier)
            ])
        if "customer" in wanted:
            out["customer"] = Relation("customer", SCHEMAS["customer"], [
                (i, f"Customer#{i:09d}", rng.randrange(len(NATIONS)),
                 rng.choice(SEGMENTS), round(rng.uniform(-999.99, 9999.99), 2))
                for i in range(n_customer)
            ])
        if "part" in wanted:
            out["part"] = Relation("part", SCHEMAS["part"], [
                (i, f"Part#{i:09d}", rng.choice(BRANDS),
                 round(900 + (i % 1000) * 0.1, 2))
                for i in range(n_part)
            ])
        if "partsupp" in wanted:
            rows = []
            suppliers_per_part = max(1, self.counts["partsupp"] // n_part)
            for partkey in range(n_part):
                for k in range(suppliers_per_part):
                    suppkey = (partkey + k * (n_part // suppliers_per_part + 1)) % n_supplier
                    rows.append(
                        (partkey, suppkey, rng.randrange(1, 10_000),
                         round(rng.uniform(1.0, 1000.0), 2))
                    )
            out["partsupp"] = Relation("partsupp", SCHEMAS["partsupp"], rows)

        custkey_gen = (
            ZipfGenerator(n_customer, self.skew, seed=self.seed + 1)
            if self.skew > 0 else None
        )
        if "orders" in wanted or "lineitem" in wanted:
            orders_rows = []
            for orderkey in range(n_orders):
                custkey = (custkey_gen.draw() if custkey_gen
                           else rng.randrange(n_customer))
                orders_rows.append(
                    (orderkey, custkey, rng.choice(STATUSES),
                     round(rng.uniform(100.0, 400_000.0), 2), _date(rng),
                     rng.choice(PRIORITIES), rng.randrange(2))
                )
            if "orders" in wanted:
                out["orders"] = Relation("orders", SCHEMAS["orders"], orders_rows)

        if "lineitem" in wanted:
            partkey_gen = (
                ZipfGenerator(n_part, self.skew, seed=self.seed + 2)
                if self.skew > 0 else None
            )
            rows = []
            for i in range(n_lineitem):
                orderkey = rng.randrange(n_orders)
                partkey = partkey_gen.draw() if partkey_gen else rng.randrange(n_part)
                suppkey = rng.randrange(n_supplier)
                quantity = rng.randrange(1, 51)
                price = round(quantity * rng.uniform(900.0, 1100.0), 2)
                rows.append(
                    (orderkey, partkey, suppkey, quantity, price,
                     round(rng.uniform(0.0, 0.1), 2), _date(rng), _date(rng),
                     rng.choice(RETURN_FLAGS))
                )
            out["lineitem"] = Relation("lineitem", SCHEMAS["lineitem"], rows)
        return out

    def describe(self) -> str:
        counts = ", ".join(f"{t}={n}" for t, n in sorted(self.counts.items()))
        return f"TPC-H scale={self.scale} skew={self.skew} ({counts})"
