"""Synthetic CrawlContent relation: {Url, Score}.

The paper's CrawlContent holds per-URL outputs of text-analysis tools
(readability, sentiment).  The text tools are out of scope there too --
'the Score is not a join key ... the query performance does not depend on
the Score values. Thus, we synthesize them.'  We do the same: one row per
distinct URL of the companion WebGraph, with a synthetic score.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.schema import Relation, Schema
from repro.util import make_rng

CRAWLCONTENT_SCHEMA = Schema.of("Url:str", "Score:float")


def generate_crawlcontent(urls: Iterable[str], seed: int = 0) -> Relation:
    """One (Url, Score) row per distinct URL; Url is the primary key.

    Being a primary key, ``Url`` is guaranteed skew-free -- the property
    the Hybrid-Hypercube exploits in the WebAnalytics experiment.
    """
    rng = make_rng(seed)
    rows = [
        (url, round(rng.uniform(0.0, 1.0), 4))
        for url in sorted(set(urls))
    ]
    return Relation("crawlcontent", CRAWLCONTENT_SCHEMA, rows)


def urls_of_webgraph(graph: Relation) -> set:
    """All distinct URLs (sources and targets) of a WebGraph relation."""
    urls = set()
    for from_url, to_url in graph.rows:
        urls.add(from_url)
        urls.add(to_url)
    return urls
