"""Workload generators for the paper's evaluation datasets.

Real counterparts (10G/80G TPC-H dbgen, the 2012 Common Crawl hyperlink
graph, the Google cluster-monitoring trace) are replaced by scaled-down
synthetic generators that preserve exactly what the experiments depend on:
relative relation sizes, key-frequency distributions (zipf skew knobs),
join-key structure, and -- for WebGraph -- a designated super-hub node.
"""

from repro.datasets.zipf import ZipfGenerator, zipf_frequencies
from repro.datasets.tpch import TPCHGenerator
from repro.datasets.webgraph import generate_webgraph
from repro.datasets.crawlcontent import generate_crawlcontent
from repro.datasets.google_cluster import GoogleClusterGenerator

__all__ = [
    "ZipfGenerator",
    "zipf_frequencies",
    "TPCHGenerator",
    "generate_webgraph",
    "generate_crawlcontent",
    "GoogleClusterGenerator",
]
