"""Synthetic hyperlink graph (the paper's WebGraph dataset).

The real dataset is the Hyperlink Graph of the August 2012 Common Crawl
Corpus: one relation of {FromUrl, ToUrl} arcs at 'Host' or
'Pay-Level-Domain' aggregation.  Two structural properties drive the
paper's experiments and are reproduced here:

- power-law in-degree (zipf-distributed arc targets), so the 2-step join
  ``W1.ToUrl = W2.FromUrl`` blows up intermediate results (Figure 6's
  3-reachability experiment);
- one designated super-hub ('blogspot.com' has the highest in-degree in
  the Pay-Level-Domain graph), the extreme join-key skew behind the
  WebAnalytics experiment (Figure 7).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.schema import Relation, Schema
from repro.datasets.zipf import ZipfGenerator
from repro.util import make_rng

WEBGRAPH_SCHEMA = Schema.of("FromUrl:str", "ToUrl:str")


def host_name(index: int, level: str = "host") -> str:
    """Deterministic synthetic host / pay-level-domain names."""
    if level == "host":
        return f"www.site{index:06d}.example"
    return f"site{index:06d}.example"


def generate_webgraph(
    n_nodes: int,
    n_arcs: int,
    seed: int = 0,
    target_skew: float = 0.8,
    hub: Optional[str] = None,
    hub_fraction: float = 0.0,
    level: str = "host",
) -> Relation:
    """Generate a {FromUrl, ToUrl} arc relation.

    ``target_skew`` is the zipf parameter of arc-target popularity.
    If ``hub`` is given, ``hub_fraction`` of all arcs point to it
    (modelling 'blogspot.com'), and the hub also emits outgoing arcs.
    """
    if n_nodes <= 1:
        raise ValueError("need at least two nodes")
    if not 0.0 <= hub_fraction < 1.0:
        raise ValueError("hub_fraction must be in [0, 1)")
    rng = make_rng(seed)
    target_gen = ZipfGenerator(n_nodes, target_skew, seed=seed + 1)
    names = [host_name(i, level) for i in range(n_nodes)]
    rows: List[tuple] = []
    for _ in range(n_arcs):
        source = names[rng.randrange(n_nodes)]
        if hub is not None and rng.random() < hub_fraction:
            target = hub
        else:
            target = names[target_gen.draw()]
        rows.append((source, target))
    if hub is not None:
        # the hub links out too (its outgoing arcs feed W2 in WebAnalytics)
        out_degree = max(1, int(n_arcs * hub_fraction * 0.5))
        for _ in range(out_degree):
            rows.append((hub, names[target_gen.draw()]))
    return Relation("webgraph", WEBGRAPH_SCHEMA, rows)


def sample_arcs(graph: Relation, fraction: float, seed: int = 0) -> Relation:
    """Uniform arc sample (the paper runs 3-reachability on a 0.5% sample
    of the 'Host' graph so that the 2-way pipeline also finishes)."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    rng = make_rng(seed)
    rows = [row for row in graph.rows if rng.random() < fraction]
    return Relation(graph.name, graph.schema, rows)
