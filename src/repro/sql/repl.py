"""Interactive interface: a small shell over the SQL session.

Squall offers an interactive interface built on top of the Scala REPL
that lets a user construct and run query plans interactively (paper
section 2).  This is the Python counterpart: a line-oriented shell over
:class:`~repro.sql.catalog.SqlSession` with meta-commands for inspecting
the catalog, explaining plans and tuning execution options.

Meta-commands (everything else is executed as SQL):

    \\tables                 list registered relations
    \\schema <table>         show a relation's schema
    \\explain <sql>          logical + physical plan without executing
    \\watch <sql>            run continuously, printing live result deltas
    \\set                    list every option and its current value
    \\set machines <n>       joiner parallelism
    \\set scheme <name>      auto | hash | random | hybrid
    \\set mode <name>        multiway | pipeline
    \\set local <name>       dbtoaster | traditional
    \\set batch_size <n>     micro-batch granularity (>= 1)
    \\set executor <name>    inline | threads | processes
    \\set parallelism <n>    shared-nothing workers (auto = pick)
    \\set columnar <v>       vectorized path: auto | on | off
    \\set rate <n>           \\watch replay rows/sec (none = unthrottled)
    \\set max_buffer <n>     \\watch subscriber ring capacity (none = default)
    \\set on_overflow <v>    slow-subscriber policy: shed | block
    \\set observe <v>        observability: off | metrics | trace
    \\stats [sql]            per-operator profile (last query, or run <sql>)
    \\help                   this text
    \\quit                   leave the shell
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.options import (
    OBSERVE_LEVELS,
    OVERFLOW_POLICIES,
    ExecutionOptions,
)
from repro.sql.catalog import SqlSession
from repro.storm.executor import EXECUTOR_NAMES

HELP_TEXT = __doc__.split("Meta-commands", 1)[1]


class SquallShell:
    """Stateful line interpreter; ``handle_line`` returns printable output.

    Kept free of input()/print() so it is fully testable; :func:`main`
    wraps it in a read-eval-print loop.
    """

    def __init__(self, session: Optional[SqlSession] = None):
        self.session = session or SqlSession()
        self.finished = False
        self.max_rows = 20
        #: the shell's execution knobs, one ExecutionOptions layered under
        #: every session.execute()/stream() call (\set edits it)
        self.execution = ExecutionOptions()
        #: last successful SQL RunResult, so a bare \stats can profile it
        self._last_result = None

    # convenience views over the options object (kept read/write for
    # scripts that poked the old per-knob attributes)

    @property
    def batch_size(self) -> int:
        return 1 if self.execution.batch_size is None else self.execution.batch_size

    @batch_size.setter
    def batch_size(self, value: int):
        self.execution = self.execution.replace(batch_size=value)

    @property
    def executor(self) -> str:
        return self.execution.executor or "inline"

    @executor.setter
    def executor(self, value: str):
        self.execution = self.execution.replace(executor=value)

    @property
    def parallelism(self) -> Optional[int]:
        return self.execution.parallelism

    @parallelism.setter
    def parallelism(self, value: Optional[int]):
        self.execution = self.execution.replace(parallelism=value)

    @property
    def watch_rate(self) -> Optional[float]:
        return self.execution.rate

    @watch_rate.setter
    def watch_rate(self, value: Optional[float]):
        self.execution = self.execution.replace(rate=value)

    # -- command dispatch ---------------------------------------------------

    def handle_line(self, line: str) -> str:
        line = line.strip()
        if not line:
            return ""
        if line.startswith("\\"):
            return self._meta(line)
        return self._run_sql(line)

    def _meta(self, line: str) -> str:
        parts = line.split()
        command = parts[0].lower()
        args = parts[1:]
        if command in ("\\quit", "\\q", "\\exit"):
            self.finished = True
            return "bye"
        if command == "\\help":
            return "Meta-commands" + HELP_TEXT
        if command == "\\tables":
            names = self.session.catalog.names()
            if not names:
                return "(no relations registered)"
            lines = []
            for name in names:
                relation = self.session.catalog.get(name)
                lines.append(f"{name}: {len(relation)} rows")
            return "\n".join(lines)
        if command == "\\schema":
            if not args:
                return "usage: \\schema <table>"
            try:
                relation = self.session.catalog.get(args[0])
            except KeyError as exc:
                return f"error: {exc}"
            return repr(relation.schema)
        if command == "\\explain":
            sql = line[len("\\explain"):].strip()
            if not sql:
                return "usage: \\explain <sql>"
            try:
                return self.session.explain(sql)
            except Exception as exc:  # surface parser/planner errors
                return f"error: {exc}"
        if command == "\\watch":
            sql = line[len("\\watch"):].strip()
            if not sql:
                return "usage: \\watch <sql>"
            return self._watch_sql(sql)
        if command == "\\set":
            return self._set_option(args)
        if command == "\\stats":
            sql = line[len("\\stats"):].strip()
            return self._stats(sql)
        return f"unknown command {command!r}; try \\help"

    def _stats(self, sql: str) -> str:
        """EXPLAIN-ANALYZE profile: of <sql> (run now, observed), or of
        the last executed query when called bare."""
        if sql:
            execution = self.execution
            if (execution.observe or "off") == "off":
                # a profile without latencies answers nothing: observe
                # at least 'metrics' for this one run
                execution = execution.replace(observe="metrics")
            try:
                result = self.session.execute(sql, options=execution)
            except Exception as exc:
                return f"error: {exc}"
            self._last_result = result
            return result.profile()
        if self._last_result is None:
            return ("no query to profile yet; run one first or use "
                    "\\stats <sql>")
        try:
            return self._last_result.profile()
        except ValueError as exc:
            return f"error: {exc}"

    def _list_options(self) -> str:
        options = self.session.options
        execution = self.execution
        parallelism = "auto" if execution.parallelism is None else execution.parallelism
        columnar = ("auto" if execution.columnar is None
                    else ("on" if execution.columnar else "off"))
        rate = "none" if execution.rate is None else f"{execution.rate:g}"
        max_buffer = ("none" if execution.max_buffer is None
                      else execution.max_buffer)
        return "\n".join([
            f"machines = {options.machines}",
            f"scheme = {options.scheme}",
            f"mode = {options.mode}",
            f"local = {options.local_join}",
            f"batch_size = {self.batch_size}",
            f"executor = {self.executor}",
            f"parallelism = {parallelism}",
            f"columnar = {columnar}",
            f"rate = {rate}",
            f"max_buffer = {max_buffer}",
            f"on_overflow = {execution.on_overflow or 'shed'}",
            f"observe = {execution.observe or 'off'}",
        ])

    def _set_option(self, args: List[str]) -> str:
        if not args:
            return self._list_options()
        if len(args) != 2:
            return ("usage: \\set <machines|scheme|mode|local|batch_size"
                    "|executor|parallelism|columnar|rate|max_buffer"
                    "|on_overflow|observe> <value>  (\\set alone lists all)")
        option, value = args
        options = self.session.options
        if option == "machines":
            try:
                options.machines = int(value)
            except ValueError:
                return "machines must be an integer"
            return f"machines = {options.machines}"
        if option == "scheme":
            if value not in ("auto", "hash", "random", "hybrid"):
                return "scheme must be auto | hash | random | hybrid"
            options.scheme = value
            return f"scheme = {value}"
        if option == "mode":
            if value not in ("multiway", "pipeline"):
                return "mode must be multiway | pipeline"
            options.mode = value
            return f"mode = {value}"
        if option == "local":
            if value not in ("dbtoaster", "traditional"):
                return "local must be dbtoaster | traditional"
            options.local_join = value
            return f"local = {value}"
        if option == "batch_size":
            try:
                batch_size = int(value)
            except ValueError:
                return "batch_size must be an integer"
            if batch_size < 1:
                return "batch_size must be >= 1"
            self.execution = self.execution.replace(batch_size=batch_size)
            return f"batch_size = {batch_size}"
        if option == "executor":
            if value not in EXECUTOR_NAMES:
                return "executor must be " + " | ".join(EXECUTOR_NAMES)
            self.execution = self.execution.replace(executor=value)
            return f"executor = {value}"
        if option == "parallelism":
            if value == "auto":
                self.execution = self.execution.replace(parallelism=None)
                return "parallelism = auto"
            try:
                parallelism = int(value)
            except ValueError:
                return "parallelism must be an integer or auto"
            if parallelism < 1:
                return "parallelism must be >= 1"
            self.execution = self.execution.replace(parallelism=parallelism)
            return f"parallelism = {parallelism}"
        if option == "columnar":
            if value not in ("auto", "on", "off"):
                return "columnar must be auto | on | off"
            self.execution = self.execution.replace(
                columnar=None if value == "auto" else value == "on")
            return f"columnar = {value}"
        if option in ("rate", "watch_rate"):  # watch_rate: pre-1.1 name
            if value == "none":
                self.execution = self.execution.replace(rate=None)
                return "rate = none"
            try:
                rate = float(value)
            except ValueError:
                return "rate must be a number or none"
            if rate <= 0:
                return "rate must be positive"
            self.execution = self.execution.replace(rate=rate)
            return f"rate = {rate:g}"
        if option == "max_buffer":
            if value == "none":
                self.execution = self.execution.replace(max_buffer=None)
                return "max_buffer = none"
            try:
                max_buffer = int(value)
            except ValueError:
                return "max_buffer must be an integer or none"
            if max_buffer < 1:
                return "max_buffer must be >= 1"
            self.execution = self.execution.replace(max_buffer=max_buffer)
            return f"max_buffer = {max_buffer}"
        if option == "on_overflow":
            if value not in OVERFLOW_POLICIES:
                return "on_overflow must be " + " | ".join(OVERFLOW_POLICIES)
            self.execution = self.execution.replace(on_overflow=value)
            return f"on_overflow = {value}"
        if option == "observe":
            if value not in OBSERVE_LEVELS:
                return "observe must be " + " | ".join(OBSERVE_LEVELS)
            self.execution = self.execution.replace(
                observe=None if value == "off" else value)
            return f"observe = {value}"
        return f"unknown option {option!r}"

    def _watch_sql(self, sql: str) -> str:
        """Continuous execution: stream the query, render its deltas.

        The replayed sources are finite, so the watch runs to exhaustion
        and reports the final snapshot; with a real push source it would
        keep printing deltas for as long as the query lives."""
        notes = []
        execution = self.execution
        if execution.executor == "processes":
            # tell the user, don't silently ignore their \set
            notes.append("-- note: the staged 'processes' backend cannot "
                         "keep a topology resident; watching inline")
            execution = execution.replace(executor="inline")
        if execution.parallelism is not None:
            notes.append("-- note: the streaming runtime has no parallelism "
                         "knob; watching with per-task worker threads")
            execution = execution.replace(parallelism=None)
        try:
            query = self.session.stream(sql, options=execution)
            lines = list(notes)
            shown = 0
            for delta in query:
                if shown < self.max_rows:
                    sign = "+" if delta.sign > 0 else "-"
                    values = " | ".join(str(value) for value in delta.row)
                    lines.append(f"{sign} {values}")
                shown += 1
        except Exception as exc:
            return f"error: {exc}"
        if shown > self.max_rows:
            lines.append(f"... ({shown} deltas total)")
        stats = query.stats()
        snapshot = query.snapshot()
        lines.append(
            f"-- watch complete: {shown} deltas; {len(snapshot)} rows in "
            f"final snapshot; {stats['events']} events at "
            f"{stats['events_per_sec']:,.0f} events/sec"
        )
        return "\n".join(lines)

    def _run_sql(self, sql: str) -> str:
        try:
            result = self.session.execute(sql, options=self.execution)
        except Exception as exc:
            return f"error: {exc}"
        self._last_result = result
        lines = []
        for row in result.results[: self.max_rows]:
            lines.append(" | ".join(str(value) for value in row))
        if len(result.results) > self.max_rows:
            lines.append(f"... ({len(result.results)} rows total)")
        lines.append(
            f"-- {len(result.results)} rows; "
            f"input {result.query_input:,} tuples; "
            + "; ".join(
                f"{name}: {info}" for name, info in result.partitioner_info.items()
            )
        )
        return "\n".join(lines)


def main():  # pragma: no cover - interactive wrapper
    shell = SquallShell()
    print("Squall interactive shell -- \\help for commands")
    while not shell.finished:
        try:
            line = input("squall> ")
        except EOFError:
            break
        output = shell.handle_line(line)
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    main()
