"""Interactive interface: a small shell over the SQL session.

Squall offers an interactive interface built on top of the Scala REPL
that lets a user construct and run query plans interactively (paper
section 2).  This is the Python counterpart: a line-oriented shell over
:class:`~repro.sql.catalog.SqlSession` with meta-commands for inspecting
the catalog, explaining plans and tuning execution options.

Meta-commands (everything else is executed as SQL):

    \\tables                 list registered relations
    \\schema <table>         show a relation's schema
    \\explain <sql>          logical + physical plan without executing
    \\set machines <n>       joiner parallelism
    \\set scheme <name>      auto | hash | random | hybrid
    \\set mode <name>        multiway | pipeline
    \\set local <name>       dbtoaster | traditional
    \\help                   this text
    \\quit                   leave the shell
"""

from __future__ import annotations

from typing import List, Optional

from repro.sql.catalog import SqlSession

HELP_TEXT = __doc__.split("Meta-commands", 1)[1]


class SquallShell:
    """Stateful line interpreter; ``handle_line`` returns printable output.

    Kept free of input()/print() so it is fully testable; :func:`main`
    wraps it in a read-eval-print loop.
    """

    def __init__(self, session: Optional[SqlSession] = None):
        self.session = session or SqlSession()
        self.finished = False
        self.max_rows = 20

    # -- command dispatch ---------------------------------------------------

    def handle_line(self, line: str) -> str:
        line = line.strip()
        if not line:
            return ""
        if line.startswith("\\"):
            return self._meta(line)
        return self._run_sql(line)

    def _meta(self, line: str) -> str:
        parts = line.split()
        command = parts[0].lower()
        args = parts[1:]
        if command in ("\\quit", "\\q", "\\exit"):
            self.finished = True
            return "bye"
        if command == "\\help":
            return "Meta-commands" + HELP_TEXT
        if command == "\\tables":
            names = self.session.catalog.names()
            if not names:
                return "(no relations registered)"
            lines = []
            for name in names:
                relation = self.session.catalog.get(name)
                lines.append(f"{name}: {len(relation)} rows")
            return "\n".join(lines)
        if command == "\\schema":
            if not args:
                return "usage: \\schema <table>"
            try:
                relation = self.session.catalog.get(args[0])
            except KeyError as exc:
                return f"error: {exc}"
            return repr(relation.schema)
        if command == "\\explain":
            sql = line[len("\\explain"):].strip()
            if not sql:
                return "usage: \\explain <sql>"
            try:
                return self.session.explain(sql)
            except Exception as exc:  # surface parser/planner errors
                return f"error: {exc}"
        if command == "\\set":
            return self._set_option(args)
        return f"unknown command {command!r}; try \\help"

    def _set_option(self, args: List[str]) -> str:
        if len(args) != 2:
            return "usage: \\set <machines|scheme|mode|local> <value>"
        option, value = args
        options = self.session.options
        if option == "machines":
            try:
                options.machines = int(value)
            except ValueError:
                return "machines must be an integer"
            return f"machines = {options.machines}"
        if option == "scheme":
            if value not in ("auto", "hash", "random", "hybrid"):
                return "scheme must be auto | hash | random | hybrid"
            options.scheme = value
            return f"scheme = {value}"
        if option == "mode":
            if value not in ("multiway", "pipeline"):
                return "mode must be multiway | pipeline"
            options.mode = value
            return f"mode = {value}"
        if option == "local":
            if value not in ("dbtoaster", "traditional"):
                return "local must be dbtoaster | traditional"
            options.local_join = value
            return f"local = {value}"
        return f"unknown option {option!r}"

    def _run_sql(self, sql: str) -> str:
        try:
            result = self.session.execute(sql)
        except Exception as exc:
            return f"error: {exc}"
        lines = []
        for row in result.results[: self.max_rows]:
            lines.append(" | ".join(str(value) for value in row))
        if len(result.results) > self.max_rows:
            lines.append(f"... ({len(result.results)} rows total)")
        lines.append(
            f"-- {len(result.results)} rows; "
            f"input {result.query_input:,} tuples; "
            + "; ".join(
                f"{name}: {info}" for name, info in result.partitioner_info.items()
            )
        )
        return "\n".join(lines)


def main():  # pragma: no cover - interactive wrapper
    shell = SquallShell()
    print("Squall interactive shell -- \\help for commands")
    while not shell.finished:
        try:
            line = input("squall> ")
        except EOFError:
            break
        output = shell.handle_line(line)
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    main()
