"""Declarative interface: a SQL subset over the online engine.

Similarly to Hive's SQL-on-Hadoop, Squall's declarative interface runs SQL
over Storm (paper section 2).  The subset covers the paper's evaluation
queries: multi-relation FROM with aliases (self-joins), conjunctive WHERE
with equi/theta/band join conditions and constant filters, and GROUP BY
with SUM / COUNT / AVG aggregates.
"""

from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse_query, SqlError

__all__ = ["Token", "tokenize", "parse_query", "SqlError"]
