"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AS", "AND",
    "SUM", "COUNT", "AVG", "BETWEEN",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*", "+", "-", "/")


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'symbol' | 'end'
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind == "symbol" and self.value == symbol


class LexError(ValueError):
    pass


def tokenize(text: str) -> List[Token]:
    """Split SQL text into tokens; raises :class:`LexError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = text.find("'", i + 1)
            if j < 0:
                raise LexError(f"unterminated string literal at {i}")
            tokens.append(Token("string", text[i + 1:j], i))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot
                                                   and j + 1 < n and text[j + 1].isdigit())):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token("symbol", symbol, i))
                i += len(symbol)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("end", "", n))
    return tokens
