"""Recursive-descent parser: SQL subset -> :class:`LogicalPlan`.

Grammar (conjunctive queries with aggregation):

    query      := SELECT items FROM tables [WHERE conjunction] [GROUP BY cols]
    items      := item (',' item)*
    item       := agg | colref
    agg        := (SUM|AVG) '(' colref ')' | COUNT '(' '*' ')'
    tables     := table (',' table)*
    table      := ident [AS ident | ident]
    conjunction:= condition (AND condition)*
    condition  := operand op operand | colref BETWEEN literal AND literal
    operand    := [number '*'] colref | literal
    op         := '=' | '<' | '<=' | '>' | '>=' | '<>' | '!='

Column-to-column conditions become join conditions (equi or theta, with
optional scale factors such as ``2 * R.B < S.C``); column-to-literal
conditions become selections pushed down to the referencing scan.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.expressions import Comparison, col, lit
from repro.core.logical import AggItem, LogicalPlan, ScanDef, resolve_column
from repro.core.predicates import EquiCondition, ThetaCondition
from repro.core.schema import Schema
from repro.sql.lexer import Token, tokenize


class SqlError(ValueError):
    """Syntax or resolution error in a SQL query."""


class _Parser:
    def __init__(self, tokens: List[Token], schemas_by_table: Dict[str, Schema]):
        self.tokens = tokens
        self.position = 0
        self.schemas_by_table = schemas_by_table
        self.scans: List[ScanDef] = []
        self.alias_schemas: Dict[str, Schema] = {}

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.advance()
        if not token.is_keyword(word):
            raise SqlError(f"expected {word}, got {token.value!r} at {token.position}")
        return token

    def expect_symbol(self, symbol: str) -> Token:
        token = self.advance()
        if not token.is_symbol(symbol):
            raise SqlError(f"expected {symbol!r}, got {token.value!r} at {token.position}")
        return token

    def expect_ident(self) -> Token:
        token = self.advance()
        if token.kind != "ident":
            raise SqlError(f"expected identifier, got {token.value!r} at {token.position}")
        return token

    # -- grammar --------------------------------------------------------------

    def parse(self) -> LogicalPlan:
        self.expect_keyword("SELECT")
        items = self.parse_select_items()
        self.expect_keyword("FROM")
        self.parse_tables()
        conditions = []
        filters: List[Tuple[str, Comparison, str]] = []
        if self.peek().is_keyword("WHERE"):
            self.advance()
            conditions, filters = self.parse_conjunction()
        group_by: List[str] = []
        if self.peek().is_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            group_by = self.parse_column_list()
        token = self.peek()
        if token.kind != "end":
            raise SqlError(f"unexpected trailing input {token.value!r} at {token.position}")
        # attach filters to their scans
        for alias, predicate, cost_class in filters:
            scan = next(s for s in self.scans if s.alias == alias)
            scan.predicates.append(predicate)
            if cost_class == "date":
                scan.cost_class = "date"
        aggregates = [item for item in items if isinstance(item, AggItem)]
        plain = [item for item in items if not isinstance(item, AggItem)]
        resolved_group = [self.qualify(name) for name in group_by]
        resolved_plain = [self.qualify(name) for name in plain]
        if aggregates and not resolved_group:
            resolved_group = resolved_plain
        elif resolved_plain and resolved_group:
            missing = [n for n in resolved_plain if n not in resolved_group]
            if missing:
                raise SqlError(
                    f"non-aggregated columns {missing} must appear in GROUP BY"
                )
        plan = LogicalPlan(
            scans=self.scans,
            conditions=conditions,
            group_by=resolved_group,
            aggregates=aggregates,
        )
        return plan.validate(self.alias_schemas)

    def parse_select_items(self) -> List[object]:
        items = [self.parse_select_item()]
        while self.peek().is_symbol(","):
            self.advance()
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self):
        token = self.peek()
        if token.is_keyword("COUNT"):
            self.advance()
            self.expect_symbol("(")
            self.expect_symbol("*")
            self.expect_symbol(")")
            return AggItem("count")
        if token.is_keyword("SUM") or token.is_keyword("AVG"):
            kind = token.value.lower()
            self.advance()
            self.expect_symbol("(")
            column = self.parse_colref()
            self.expect_symbol(")")
            return AggItem(kind, column)
        return self.parse_colref()

    def parse_colref(self) -> str:
        first = self.expect_ident().value
        if self.peek().is_symbol("."):
            self.advance()
            second = self.expect_ident().value
            return f"{first}.{second}"
        return first

    def parse_tables(self):
        self.parse_table()
        while self.peek().is_symbol(","):
            self.advance()
            self.parse_table()

    def parse_table(self):
        table = self.expect_ident().value
        alias = table
        if self.peek().is_keyword("AS"):
            self.advance()
            alias = self.expect_ident().value
        elif self.peek().kind == "ident":
            alias = self.advance().value
        if table not in self.schemas_by_table:
            raise SqlError(f"unknown table {table!r}")
        if alias in self.alias_schemas:
            raise SqlError(f"duplicate alias {alias!r}")
        self.scans.append(ScanDef(alias=alias, table=table))
        self.alias_schemas[alias] = self.schemas_by_table[table]

    def parse_conjunction(self):
        conditions = []
        filters = []
        self.parse_condition(conditions, filters)
        while self.peek().is_keyword("AND"):
            self.advance()
            self.parse_condition(conditions, filters)
        return conditions, filters

    def parse_operand(self):
        """Returns ('column', alias, attr, scale) or ('literal', value)."""
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value = _number(token.value)
            if self.peek().is_symbol("*"):
                self.advance()
                name = self.parse_colref()
                alias, attr = resolve_column(name, self.alias_schemas)
                return ("column", alias, attr, float(value))
            return ("literal", value)
        if token.kind == "string":
            self.advance()
            return ("literal", token.value)
        name = self.parse_colref()
        alias, attr = resolve_column(name, self.alias_schemas)
        return ("column", alias, attr, 1.0)

    def parse_condition(self, conditions: list, filters: list):
        left = self.parse_operand()
        if self.peek().is_keyword("BETWEEN"):
            if left[0] != "column":
                raise SqlError("BETWEEN requires a column on the left")
            self.advance()
            low = self.parse_literal()
            self.expect_keyword("AND")
            high = self.parse_literal()
            _tag, alias, attr, _scale = left
            predicate = col(attr).ge(low) & col(attr).le(high)
            filters.append((alias, predicate, self._cost_class(alias, attr)))
            return
        op_token = self.advance()
        if not (op_token.kind == "symbol" and op_token.value in
                ("=", "<", "<=", ">", ">=", "<>", "!=")):
            raise SqlError(f"expected comparison operator at {op_token.position}")
        op = "!=" if op_token.value == "<>" else op_token.value
        right = self.parse_operand()
        if left[0] == "column" and right[0] == "column":
            _t, la, lattr, lscale = left
            _t, ra, rattr, rscale = right
            if la == ra:
                raise SqlError(
                    f"conditions within one relation ({la!r}) belong in a "
                    "selection; use a literal comparison or different aliases"
                )
            if op == "=":
                if lscale != 1.0 or rscale != 1.0:
                    raise SqlError("scaled equality conditions are not supported")
                conditions.append(EquiCondition((la, lattr), (ra, rattr)))
            else:
                conditions.append(
                    ThetaCondition((la, lattr), op, (ra, rattr),
                                   left_scale=lscale, right_scale=rscale)
                )
            return
        # column vs literal -> selection, pushed to the scan
        if left[0] == "column":
            _t, alias, attr, scale = left
            value = right[1]
            expr = col(attr) if scale == 1.0 else (lit(scale) * col(attr))
            predicate = Comparison(expr, op, lit(value))
        elif right[0] == "column":
            _t, alias, attr, scale = right
            value = left[1]
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
            expr = col(attr) if scale == 1.0 else (lit(scale) * col(attr))
            predicate = Comparison(expr, flipped[op], lit(value))
        else:
            raise SqlError("conditions between two literals are not supported")
        filters.append((alias, predicate, self._cost_class(alias, attr)))

    def parse_literal(self):
        token = self.advance()
        if token.kind == "number":
            return _number(token.value)
        if token.kind == "string":
            return token.value
        raise SqlError(f"expected literal at {token.position}")

    def parse_column_list(self) -> List[str]:
        names = [self.parse_colref()]
        while self.peek().is_symbol(","):
            self.advance()
            names.append(self.parse_colref())
        return names

    def qualify(self, name: str) -> str:
        alias, attr = resolve_column(name, self.alias_schemas)
        return f"{alias}.{attr}"

    def _cost_class(self, alias: str, attr: str) -> str:
        schema = self.alias_schemas[alias]
        return "date" if schema.field(attr).type == "date" else "int"


def _number(text: str):
    return float(text) if "." in text else int(text)


def parse_query(sql: str, schemas_by_table: Dict[str, Schema]) -> LogicalPlan:
    """Parse a SQL string against the given table schemas."""
    return _Parser(tokenize(sql), schemas_by_table).parse()
