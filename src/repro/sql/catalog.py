"""Convenience entry point: SQL string -> executed results.

Ties the parser, the optimizer and the runner together, mirroring the
paper's Figure 1 pipeline: Parser -> logical plan -> query optimizer ->
physical plan -> Squall-to-Storm translator -> execution.

A session can also be bound to a :class:`~repro.serving.broker.\
QueryBroker` (usually via :func:`repro.connect`): :meth:`SqlSession.\
stream` then returns a broker-managed subscription instead of a private
:class:`~repro.streaming.StreamingQuery`, and sessions sharing a broker
and catalog that issue the same SQL share one resident topology.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.optimizer import Catalog, Optimizer, OptimizerOptions
from repro.core.options import ExecutionOptions, merge_options
from repro.core.schema import Relation
from repro.engine.runner import RunResult, run_plan
from repro.sql.parser import parse_query


class SqlSession:
    """Run SQL over registered relations.

    ``options`` configures the *optimizer* (window clauses, machine
    budget); ``execution`` is the session's default
    :class:`~repro.core.options.ExecutionOptions` layer -- per-call
    ``options=`` overlays it, legacy knob kwargs fold in through the
    shared deprecation adapter.  ``broker`` + ``tenant`` attach the
    session to a shared serving layer (see :func:`repro.connect`).
    """

    def __init__(self, catalog: Optional[Catalog] = None,
                 options: Optional[OptimizerOptions] = None,
                 execution: Optional[ExecutionOptions] = None,
                 broker=None, tenant: str = "default"):
        self.catalog = catalog or Catalog()
        self.options = options or OptimizerOptions()
        self.execution = execution or ExecutionOptions()
        self.broker = broker
        self.tenant = tenant

    def register(self, relation: Relation):
        self.catalog.register(relation)

    def _schemas(self) -> Dict[str, object]:
        return {name: self.catalog.get(name).schema for name in self.catalog.names()}

    def plan(self, sql: str):
        """Parse and optimize a query, returning the physical plan."""
        logical = parse_query(sql, self._schemas())
        return Optimizer(self.catalog, self.options).compile(logical)

    def explain(self, sql: str) -> str:
        """Logical + physical plan description without executing."""
        logical = parse_query(sql, self._schemas())
        physical = Optimizer(self.catalog, self.options).compile(logical)
        parts = [logical.dag()]
        for join in physical.joins:
            parts.append(f"  {join.name}: scheme={join.scheme} "
                         f"local={join.local_join} machines={join.machines}")
        if physical.aggregation:
            agg = physical.aggregation
            parts.append(f"  agg: groups={list(agg.group_positions)} "
                         f"parallelism={agg.parallelism}")
        return "\n".join(parts)

    def _merged(self, options: Optional[ExecutionOptions],
                legacy: Dict[str, object]) -> ExecutionOptions:
        """Session execution defaults under the call-level knobs."""
        return self.execution.overlay(merge_options(options, legacy,
                                                    stacklevel=4))

    def execute(self, sql: str, batch_size: Optional[int] = None,
                executor: Optional[str] = None,
                parallelism: Optional[int] = None,
                columnar: Optional[bool] = None,
                options: Optional[ExecutionOptions] = None) -> RunResult:
        """Parse, optimize and run a query to completion.

        Args:
            sql: the query text (multi-way joins, predicates, GROUP BY
                aggregation -- see :mod:`repro.sql.parser`).
            options: execution knobs as one
                :class:`~repro.core.options.ExecutionOptions` -- batch
                size, backend (``'inline'`` | ``'threads'`` |
                ``'processes'``; all return the same result multiset),
                parallelism and the columnar toggle.  Overlays the
                session's ``execution`` defaults.
            batch_size / executor / parallelism / columnar: the
                deprecated per-knob spelling; warns if one conflicts
                with ``options``.

        Returns:
            A :class:`~repro.engine.runner.RunResult` -- ``results``
            (final rows), ``metrics`` (per-component counters),
            ``replication_factor`` (section-6 monitors).

        Raises:
            SqlError: on parse/name-resolution failures.
            ExecutorError: when the chosen backend cannot run the plan
                (e.g. adaptive partitioners on 'threads'/'processes').

        Example::

            import repro
            from repro.core.schema import Relation, Schema

            session = repro.connect()
            session.register(Relation("t", Schema.of("k", "v"),
                                      [(1, 10), (2, 20)]))
            result = session.execute(
                "SELECT t.k, COUNT(*) FROM t GROUP BY t.k",
                options=repro.ExecutionOptions(batch_size=64))
            assert sorted(result.results) == [(1, 1), (2, 1)]
        """
        merged = self._merged(options, dict(
            batch_size=batch_size, executor=executor,
            parallelism=parallelism, columnar=columnar))
        return run_plan(self.plan(sql), options=merged)

    def stream(self, sql: str, batch_size: Optional[int] = None,
               executor: Optional[str] = None, rate: Optional[float] = None,
               columnar: Optional[bool] = None,
               options: Optional[ExecutionOptions] = None,
               tenant: Optional[str] = None,
               track_latency: bool = False):
        """Run a query *continuously*: the registered relations are
        replayed as rate-limited push sources and the query stays
        resident, emitting live ``(+row / -row)`` result deltas.

        Args:
            sql: the query text, as for :meth:`execute`.
            options: execution knobs
                (:class:`~repro.core.options.ExecutionOptions`).  On
                top of the batch knobs: ``rate`` (replayed rows/second
                per source), ``max_buffer`` / ``on_overflow`` (this
                subscriber's delta ring, broker mode),
                ``parallelism`` and ``checkpoint_interval`` (the
                fault-tolerant ``executor='processes'`` resident
                workers -- see ``docs/FAULT_TOLERANCE.md``).  Unset
                knobs resolve exactly as in the batch engine (columnar
                on at batch_size >= 64; streaming default batch size
                64).
            tenant: overrides the session's tenant for this
                subscription (broker mode).
            track_latency: record publish-to-pop delta latencies.
            batch_size / executor / rate / columnar: the deprecated
                per-knob spelling; warns if one conflicts with
                ``options``.

        Returns:
            Without a broker: a private
            :class:`repro.streaming.StreamingQuery` -- iterate it for
            deltas, ``.run()`` to drive it to source exhaustion,
            ``.snapshot()`` for the current result multiset (which,
            once the sources are exhausted, equals
            ``execute(sql).results`` on the same data).  Bound to a
            broker: a :class:`~repro.serving.broker.BrokerSubscription`
            on the shared resident topology for this plan (started on
            first use, deduped across sessions).

        Raises:
            SqlError: on parse/name-resolution failures.
            AdmissionError: broker mode, when a serving limit is hit.
            ExecutorError: when the backend cannot run the plan
                resident.

        Window semantics come from the session options
        (``OptimizerOptions.agg_window`` / ``window``); watermarks
        follow the window's event-time column.

        Example::

            import repro
            from repro.core.schema import Relation, Schema

            session = repro.connect()
            session.register(Relation("t", Schema.of("k", "v"),
                                      [(1, 10), (1, 20)]))
            query = session.stream(
                "SELECT t.k, COUNT(*) FROM t GROUP BY t.k",
                options=repro.ExecutionOptions(batch_size=8))
            deltas = list(query)    # drain: sources are finite here
            assert query.snapshot() == [(1, 2)]
            assert [d.sign for d in deltas[-1:]] == [1]
        """
        from repro.streaming.runner import agg_window_ts_positions, stream_plan

        logical = parse_query(sql, self._schemas())
        physical = Optimizer(self.catalog, self.options).compile(logical)
        ts_positions = agg_window_ts_positions(
            self.catalog, logical.scans, self.options.agg_window)
        merged = self._merged(options, dict(
            batch_size=batch_size, executor=executor, rate=rate,
            columnar=columnar))
        if self.broker is not None:
            return self.broker.subscribe_plan(
                physical, ts_positions=ts_positions, options=merged,
                tenant=tenant if tenant is not None else self.tenant,
                track_latency=track_latency)
        return stream_plan(physical, ts_positions=ts_positions,
                           options=merged)
