"""Convenience entry point: SQL string -> executed results.

Ties the parser, the optimizer and the runner together, mirroring the
paper's Figure 1 pipeline: Parser -> logical plan -> query optimizer ->
physical plan -> Squall-to-Storm translator -> execution.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.optimizer import Catalog, Optimizer, OptimizerOptions
from repro.core.schema import Relation
from repro.engine.runner import RunResult, run_plan
from repro.sql.parser import parse_query


class SqlSession:
    """Run SQL over registered relations."""

    def __init__(self, catalog: Optional[Catalog] = None,
                 options: Optional[OptimizerOptions] = None):
        self.catalog = catalog or Catalog()
        self.options = options or OptimizerOptions()

    def register(self, relation: Relation):
        self.catalog.register(relation)

    def _schemas(self) -> Dict[str, object]:
        return {name: self.catalog.get(name).schema for name in self.catalog.names()}

    def plan(self, sql: str):
        """Parse and optimize a query, returning the physical plan."""
        logical = parse_query(sql, self._schemas())
        return Optimizer(self.catalog, self.options).compile(logical)

    def explain(self, sql: str) -> str:
        """Logical + physical plan description without executing."""
        logical = parse_query(sql, self._schemas())
        physical = Optimizer(self.catalog, self.options).compile(logical)
        parts = [logical.dag()]
        for join in physical.joins:
            parts.append(f"  {join.name}: scheme={join.scheme} "
                         f"local={join.local_join} machines={join.machines}")
        if physical.aggregation:
            agg = physical.aggregation
            parts.append(f"  agg: groups={list(agg.group_positions)} "
                         f"parallelism={agg.parallelism}")
        return "\n".join(parts)

    def execute(self, sql: str, batch_size: int = 1, executor: str = "inline",
                parallelism: Optional[int] = None,
                columnar: Optional[bool] = None) -> RunResult:
        """Parse, optimize and run a query on the local cluster.

        ``batch_size`` sets the micro-batch granularity and ``executor`` /
        ``parallelism`` the execution backend ('inline', 'threads' or
        'processes' over N shared-nothing workers); all backends return
        the same result multiset.  ``columnar`` toggles the vectorized
        execution path (default: on for batch_size >= 64)."""
        return run_plan(self.plan(sql), batch_size=batch_size,
                        executor=executor, parallelism=parallelism,
                        columnar=columnar)

    def stream(self, sql: str, batch_size: int = 64,
               executor: str = "inline", rate: Optional[float] = None,
               columnar: bool = False):
        """Run a query *continuously*: the registered relations are
        replayed as rate-limited push sources and the query stays
        resident, emitting live ``(+row / -row)`` result deltas.

        Returns a :class:`repro.streaming.StreamingQuery`: iterate it for
        deltas, ``.run()`` to drive it to source exhaustion, and
        ``.snapshot()`` for the current result multiset -- which, once
        the sources are exhausted, equals ``execute(sql).results`` on the
        same data.  Window semantics come from the session options
        (``OptimizerOptions.agg_window`` / ``window``); watermarks follow
        the window's event-time column."""
        from repro.streaming.runner import agg_window_ts_positions, stream_plan

        logical = parse_query(sql, self._schemas())
        physical = Optimizer(self.catalog, self.options).compile(logical)
        ts_positions = agg_window_ts_positions(
            self.catalog, logical.scans, self.options.agg_window)
        return stream_plan(physical, batch_size=batch_size, executor=executor,
                           rate=rate, ts_positions=ts_positions,
                           columnar=columnar)
