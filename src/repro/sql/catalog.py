"""Convenience entry point: SQL string -> executed results.

Ties the parser, the optimizer and the runner together, mirroring the
paper's Figure 1 pipeline: Parser -> logical plan -> query optimizer ->
physical plan -> Squall-to-Storm translator -> execution.

A session can also be bound to a :class:`~repro.serving.broker.\
QueryBroker` (usually via :func:`repro.connect`): :meth:`SqlSession.\
stream` then returns a broker-managed subscription instead of a private
:class:`~repro.streaming.StreamingQuery`, and sessions sharing a broker
and catalog that issue the same SQL share one resident topology.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.optimizer import Catalog, Optimizer, OptimizerOptions
from repro.core.options import ExecutionOptions, merge_options
from repro.core.schema import Relation
from repro.engine.runner import RunResult, run_plan
from repro.sql.parser import parse_query


class SqlSession:
    """Run SQL over registered relations.

    ``options`` configures the *optimizer* (window clauses, machine
    budget); ``execution`` is the session's default
    :class:`~repro.core.options.ExecutionOptions` layer -- per-call
    ``options=`` overlays it, legacy knob kwargs fold in through the
    shared deprecation adapter.  ``broker`` + ``tenant`` attach the
    session to a shared serving layer (see :func:`repro.connect`).
    """

    def __init__(self, catalog: Optional[Catalog] = None,
                 options: Optional[OptimizerOptions] = None,
                 execution: Optional[ExecutionOptions] = None,
                 broker=None, tenant: str = "default"):
        self.catalog = catalog or Catalog()
        self.options = options or OptimizerOptions()
        self.execution = execution or ExecutionOptions()
        self.broker = broker
        self.tenant = tenant

    def register(self, relation: Relation):
        self.catalog.register(relation)

    def _schemas(self) -> Dict[str, object]:
        return {name: self.catalog.get(name).schema for name in self.catalog.names()}

    def plan(self, sql: str):
        """Parse and optimize a query, returning the physical plan."""
        logical = parse_query(sql, self._schemas())
        return Optimizer(self.catalog, self.options).compile(logical)

    def explain(self, sql: str) -> str:
        """Logical + physical plan description without executing."""
        logical = parse_query(sql, self._schemas())
        physical = Optimizer(self.catalog, self.options).compile(logical)
        parts = [logical.dag()]
        for join in physical.joins:
            parts.append(f"  {join.name}: scheme={join.scheme} "
                         f"local={join.local_join} machines={join.machines}")
        if physical.aggregation:
            agg = physical.aggregation
            parts.append(f"  agg: groups={list(agg.group_positions)} "
                         f"parallelism={agg.parallelism}")
        return "\n".join(parts)

    def _merged(self, options: Optional[ExecutionOptions],
                legacy: Dict[str, object]) -> ExecutionOptions:
        """Session execution defaults under the call-level knobs."""
        return self.execution.overlay(merge_options(options, legacy,
                                                    stacklevel=4))

    def execute(self, sql: str, batch_size: Optional[int] = None,
                executor: Optional[str] = None,
                parallelism: Optional[int] = None,
                columnar: Optional[bool] = None,
                options: Optional[ExecutionOptions] = None) -> RunResult:
        """Parse, optimize and run a query on the local cluster.

        Execution knobs ride on ``options``
        (:class:`~repro.core.options.ExecutionOptions`): micro-batch
        granularity, backend ('inline', 'threads' or 'processes' over N
        shared-nothing workers -- all return the same result multiset)
        and the columnar toggle (default: on for batch_size >= 64).  The
        individual kwargs remain as the deprecated spelling."""
        merged = self._merged(options, dict(
            batch_size=batch_size, executor=executor,
            parallelism=parallelism, columnar=columnar))
        return run_plan(self.plan(sql), options=merged)

    def stream(self, sql: str, batch_size: Optional[int] = None,
               executor: Optional[str] = None, rate: Optional[float] = None,
               columnar: Optional[bool] = None,
               options: Optional[ExecutionOptions] = None,
               tenant: Optional[str] = None,
               track_latency: bool = False):
        """Run a query *continuously*: the registered relations are
        replayed as rate-limited push sources and the query stays
        resident, emitting live ``(+row / -row)`` result deltas.

        Unbound (no broker): returns a private
        :class:`repro.streaming.StreamingQuery` -- iterate it for
        deltas, ``.run()`` to drive it to source exhaustion,
        ``.snapshot()`` for the current result multiset (which, once the
        sources are exhausted, equals ``execute(sql).results`` on the
        same data).

        Bound to a broker: returns a
        :class:`~repro.serving.broker.BrokerSubscription` on the shared
        resident topology for this plan (started on first use, deduped
        across sessions); ``max_buffer`` / ``on_overflow`` in the
        options bound this subscriber's ring.

        Window semantics come from the session options
        (``OptimizerOptions.agg_window`` / ``window``); watermarks follow
        the window's event-time column.  Unset execution knobs resolve
        exactly as in the batch engine (columnar on at batch_size >= 64;
        streaming default batch size 64)."""
        from repro.streaming.runner import agg_window_ts_positions, stream_plan

        logical = parse_query(sql, self._schemas())
        physical = Optimizer(self.catalog, self.options).compile(logical)
        ts_positions = agg_window_ts_positions(
            self.catalog, logical.scans, self.options.agg_window)
        merged = self._merged(options, dict(
            batch_size=batch_size, executor=executor, rate=rate,
            columnar=columnar))
        if self.broker is not None:
            return self.broker.subscribe_plan(
                physical, ts_positions=ts_positions, options=merged,
                tenant=tenant if tenant is not None else self.tenant,
                track_latency=track_latency)
        return stream_plan(physical, ts_positions=ts_positions,
                           options=merged)
