"""The online query engine built on the Storm substrate.

Components (pipelines of co-located operators) are mapped to spouts and
bolts; partitioning schemes become stream groupings; joins run one local
join instance per task.  Both full-history (incremental view maintenance)
and window semantics are supported -- windows are implemented by adding
expiration logic on top of the full-history engine (paper section 2).
"""

from repro.engine.operators import (
    AggregateSpec,
    Aggregation,
    Projection,
    Selection,
    avg,
    count,
    total,
)
from repro.engine.windows import WindowSpec
from repro.engine.component import (
    AggComponent,
    JoinComponent,
    PhysicalPlan,
    SinkComponent,
    SourceComponent,
)
from repro.engine.runner import RunResult, run_plan

__all__ = [
    "AggregateSpec",
    "Aggregation",
    "Projection",
    "Selection",
    "total",
    "count",
    "avg",
    "WindowSpec",
    "SourceComponent",
    "JoinComponent",
    "AggComponent",
    "SinkComponent",
    "PhysicalPlan",
    "RunResult",
    "run_plan",
]
