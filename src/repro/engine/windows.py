"""Window semantics on top of the full-history engine (paper section 2).

Squall implements tumbling and sliding windows by adding expiration logic
over its full-history operators.  Timestamps are either explicit (a column
of each input relation) or implicit (global arrival order).

- **Tumbling** windows of size ``size`` partition time into fixed ranges
  ``[k*size, (k+1)*size)``; on crossing a boundary the operator state is
  reset.
- **Sliding** windows keep the last ``size`` time units: on every arrival,
  stored tuples older than ``ts - size`` are retracted via the local
  join's ``delete`` (DBToaster views handle this as a negative delta).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.joins.base import LocalJoin


@dataclass(frozen=True)
class WindowSpec:
    """Window definition shared by join and aggregation operators."""

    kind: str  # 'tumbling' | 'sliding'
    size: int
    #: per-relation timestamp column position; None = arrival order
    ts_positions: Optional[Dict[str, int]] = None

    def __post_init__(self):
        if self.kind not in ("tumbling", "sliding"):
            raise ValueError(f"unknown window kind {self.kind!r}")
        if self.size <= 0:
            raise ValueError("window size must be positive")

    @classmethod
    def tumbling(cls, size: int, ts_positions: Optional[Dict[str, int]] = None):
        return cls("tumbling", size, ts_positions)

    @classmethod
    def sliding(cls, size: int, ts_positions: Optional[Dict[str, int]] = None):
        return cls("sliding", size, ts_positions)

    def timestamp(self, rel_name: str, row: tuple, arrival_index: int):
        if self.ts_positions is None:
            return arrival_index
        return row[self.ts_positions[rel_name]]


class WindowedJoinState:
    """Wraps a :class:`LocalJoin` with window expiration logic."""

    def __init__(self, local_join: LocalJoin, window: WindowSpec):
        self.local = local_join
        self.window = window
        self._arrivals = 0
        self._stored: Deque[Tuple[object, str, tuple]] = deque()
        self._current_window: Optional[int] = None
        self.expired_tuples = 0

    def insert(self, rel_name: str, row: tuple) -> List[tuple]:
        ts = self.window.timestamp(rel_name, row, self._arrivals)
        self._arrivals += 1
        self._expire(ts)
        delta = self.local.insert(rel_name, row)
        self._stored.append((ts, rel_name, row))
        return delta

    def _expire(self, now):
        if self.window.kind == "tumbling":
            window_id = now // self.window.size
            if self._current_window is None:
                self._current_window = window_id
            elif window_id != self._current_window:
                self.expired_tuples += len(self._stored)
                self._stored.clear()
                self.local.reset()
                self._current_window = window_id
            return
        # sliding: retract everything strictly older than now - size
        horizon = now - self.window.size
        while self._stored and self._stored[0][0] <= horizon:
            _ts, rel_name, row = self._stored.popleft()
            self.local.delete(rel_name, row)
            self.expired_tuples += 1

    def state_size(self) -> int:
        return self.local.state_size()

    @property
    def work(self) -> int:
        return self.local.work


class WindowedAggregation:
    """Per-window grouped aggregation; emits a window's rows when it closes."""

    def __init__(self, aggregation_factory, window: WindowSpec):
        if window.kind != "tumbling":
            raise ValueError(
                "windowed aggregation supports tumbling windows; sliding "
                "aggregates are expressed as join-side retractions"
            )
        self._factory = aggregation_factory
        self.window = window
        self._arrivals = 0
        self._current_window: Optional[int] = None
        self._aggregation = aggregation_factory()
        self.closed_windows: List[Tuple[int, List[tuple]]] = []

    def consume(self, row: tuple, rel_name: str = "") -> Optional[Tuple[int, List[tuple]]]:
        """Feed one row; returns (window id, rows) when a window closes."""
        ts = self.window.timestamp(rel_name, row, self._arrivals)
        self._arrivals += 1
        window_id = ts // self.window.size
        closed = None
        if self._current_window is None:
            self._current_window = window_id
        elif window_id != self._current_window:
            closed = (self._current_window, self._aggregation.snapshot())
            self.closed_windows.append(closed)
            self._aggregation = self._factory()
            self._current_window = window_id
        self._aggregation.consume(row)
        return closed

    def flush(self) -> Optional[Tuple[int, List[tuple]]]:
        """Close the final window at end of stream."""
        if self._current_window is None:
            return None
        closed = (self._current_window, self._aggregation.snapshot())
        self.closed_windows.append(closed)
        self._aggregation = self._factory()
        self._current_window = None
        return closed
