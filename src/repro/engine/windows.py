"""Window semantics on top of the full-history engine (paper section 2).

Squall implements tumbling and sliding windows by adding expiration logic
over its full-history operators.  Timestamps are either explicit (a column
of each input relation) or implicit (global arrival order).

- **Tumbling** windows of size ``size`` partition time into fixed ranges
  ``[k*size, (k+1)*size)``; on crossing a boundary the operator state is
  reset.
- **Sliding** windows keep the last ``size`` time units: on every arrival,
  stored tuples older than ``ts - size`` are retracted via the local
  join's ``delete`` (DBToaster views handle this as a negative delta).
  :class:`SlidingWindowedAggregation` applies the same idea to grouped
  aggregates: expired input rows are consumed with sign -1.

Expiration is driven from two sides.  In a finite (batch) run, every
arriving tuple's own timestamp advances the clock, and the final window
closes at end of stream.  In a *continuous* run
(:class:`repro.streaming.cluster.StreamingCluster`), the watermark
punctuations of the push sources additionally advance event time through
the ``advance_time`` / ``advance_watermark`` hooks below, so windows
close and state expires with bounded lag even when a source goes quiet
-- see :mod:`repro.streaming.watermarks` for the punctuation protocol.
Watermarks only ever advance the clock to a time at or below the maximum
timestamp the sources promise not to precede, so a watermark-driven
expiration performs exactly the work the next arrival would have; final
results are identical to the batch run's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.joins.base import LocalJoin


@dataclass(frozen=True)
class WindowClause:
    """A front-end window request, by column *name*.

    What ``SqlSession`` / the functional API accept: kind, size and the
    event-time column (None = arrival order).  The optimizer resolves the
    column against the physical plan's projections and lowers it to a
    positional :class:`WindowSpec` on the aggregation component.

    Exact-answer caveat: window expiration is arrival-driven, so the
    aggregate is only independent of batching/interleaving when its input
    arrives in event-time order -- true for windows directly over a
    source, best-effort when a join sits in between (joins re-emit stored
    rows with old timestamps)."""

    kind: str  # 'tumbling' | 'sliding'
    size: int
    ts_column: Optional[str] = None

    def __post_init__(self):
        if self.kind not in ("tumbling", "sliding"):
            raise ValueError(f"unknown window kind {self.kind!r}")
        if self.size <= 0:
            raise ValueError("window size must be positive")


@dataclass(frozen=True)
class WindowSpec:
    """Window definition shared by join and aggregation operators."""

    kind: str  # 'tumbling' | 'sliding'
    size: int
    #: per-relation timestamp column position; None = arrival order
    ts_positions: Optional[Dict[str, int]] = None

    def __post_init__(self):
        if self.kind not in ("tumbling", "sliding"):
            raise ValueError(f"unknown window kind {self.kind!r}")
        if self.size <= 0:
            raise ValueError("window size must be positive")

    @classmethod
    def tumbling(cls, size: int, ts_positions: Optional[Dict[str, int]] = None):
        return cls("tumbling", size, ts_positions)

    @classmethod
    def sliding(cls, size: int, ts_positions: Optional[Dict[str, int]] = None):
        return cls("sliding", size, ts_positions)

    def timestamp(self, rel_name: str, row: tuple, arrival_index: int):
        if self.ts_positions is None:
            return arrival_index
        return row[self.ts_positions[rel_name]]


class WindowedJoinState:
    """Wraps a :class:`LocalJoin` with window expiration logic."""

    def __init__(self, local_join: LocalJoin, window: WindowSpec):
        self.local = local_join
        self.window = window
        self._arrivals = 0
        self._stored: Deque[Tuple[object, str, tuple]] = deque()
        self._current_window: Optional[int] = None
        self.expired_tuples = 0

    def insert(self, rel_name: str, row: tuple) -> List[tuple]:
        ts = self.window.timestamp(rel_name, row, self._arrivals)
        self._arrivals += 1
        self._expire(ts)
        delta = self.local.insert(rel_name, row)
        self._stored.append((ts, rel_name, row))
        return delta

    def _expire(self, now):
        if self.window.kind == "tumbling":
            window_id = now // self.window.size
            if self._current_window is None:
                self._current_window = window_id
            elif window_id != self._current_window:
                self.expired_tuples += len(self._stored)
                self._stored.clear()
                self.local.reset()
                self._current_window = window_id
            return
        # sliding: retract everything strictly older than now - size
        horizon = now - self.window.size
        while self._stored and self._stored[0][0] <= horizon:
            _ts, rel_name, row = self._stored.popleft()
            self.local.delete(rel_name, row)
            self.expired_tuples += 1

    def advance_time(self, now):
        """Watermark hook: expire state as if a tuple at ``now`` arrived.

        The continuous runtime calls this when the sources' merged
        watermark advances, so join state stays bounded even while a
        relation receives no tuples.  Performs exactly the expiration the
        next ``insert`` at time >= ``now`` would perform."""
        self._expire(now)

    def state_size(self) -> int:
        return self.local.state_size()

    @property
    def work(self) -> int:
        return self.local.work


class WindowedAggregation:
    """Per-window grouped aggregation; emits a window's rows when it closes."""

    def __init__(self, aggregation_factory, window: WindowSpec):
        if window.kind != "tumbling":
            raise ValueError(
                "windowed aggregation supports tumbling windows; sliding "
                "aggregates are expressed as join-side retractions"
            )
        self._factory = aggregation_factory
        self.window = window
        self._arrivals = 0
        self._current_window: Optional[int] = None
        self._aggregation = aggregation_factory()
        self.closed_windows: List[Tuple[int, List[tuple]]] = []

    def consume(self, row: tuple, sign: int = 1,
                rel_name: str = "") -> Optional[Tuple[int, List[tuple]]]:
        """Feed one row (sign -1 = retraction, as on ``:retract``
        streams); returns (window id, rows) when a window closes."""
        ts = self.window.timestamp(rel_name, row, self._arrivals)
        self._arrivals += 1
        window_id = ts // self.window.size
        closed = None
        if self._current_window is None:
            self._current_window = window_id
        elif window_id != self._current_window:
            closed = (self._current_window, self._aggregation.snapshot())
            self.closed_windows.append(closed)
            self._aggregation = self._factory()
            self._current_window = window_id
        self._aggregation.consume(row, sign)
        return closed

    def flush(self) -> Optional[Tuple[int, List[tuple]]]:
        """Close the final window at end of stream."""
        if self._current_window is None:
            return None
        closed = (self._current_window, self._aggregation.snapshot())
        self.closed_windows.append(closed)
        self._aggregation = self._factory()
        self._current_window = None
        return closed

    def advance_watermark(self, watermark) -> Optional[Tuple[int, List[tuple]]]:
        """Close the open window once the watermark passes its end.

        The continuous runtime's punctuation hook: with the promise that
        no tuple with timestamp <= ``watermark`` is still in flight, a
        window ending at or before it can never gain rows, so it is
        emitted now instead of waiting for the next arrival (or end of
        stream) to close it.  Returns the closed ``(window id, rows)`` or
        None if the open window is still live."""
        if self._current_window is None:
            return None
        if watermark < (self._current_window + 1) * self.window.size:
            return None
        return self.flush()


class SlidingWindowedAggregation:
    """Sliding-window grouped aggregation via input-side retractions.

    The paper expresses sliding aggregates as retractions over the
    full-history operator: an input row entering the window is consumed
    with sign +1, a row sliding out of it with sign -1 (exactly the
    mechanism the ``:retract`` streams use).  Every state change is
    reported as an ``(old output row, new output row)`` pair -- either
    side may be None for group birth/death -- which is what the
    continuous runtime's delta sinks forward to subscribers as
    ``(+row / -row)`` deltas.

    Event time advances with every arrival (batch runs) and through
    :meth:`advance_time` (watermark punctuations of the continuous
    runtime); :meth:`snapshot` is always the aggregate over rows whose
    timestamps are within ``(now - size, now]``.

    Rows are stored in arrival order and expired from the front, so the
    operator assumes event-time-ordered arrival (replayed relations, and
    any source feeding the aggregation directly).  When a join reorders
    tuples upstream, expiration becomes arrival-order dependent and the
    watermark-driven (streaming) semantics is the authoritative one --
    batch and streaming snapshots are guaranteed to coincide only for
    in-order inputs.
    """

    #: one reported state change: (old output row | None, new output row | None)
    Change = Tuple[Optional[tuple], Optional[tuple]]

    def __init__(self, aggregation_factory, window: WindowSpec):
        if window.kind != "sliding":
            raise ValueError(
                "SlidingWindowedAggregation needs a sliding window; tumbling "
                "aggregations use WindowedAggregation"
            )
        self.window = window
        self.aggregation = aggregation_factory()
        self._arrivals = 0
        self._stored: Deque[Tuple[object, tuple]] = deque()
        self._max_ts = None  # newest event time this operator has consumed
        self.expired_rows = 0

    def consume(self, row: tuple, sign: int = 1,
                rel_name: str = "") -> List["SlidingWindowedAggregation.Change"]:
        """Feed one (possibly retracted) row; returns the state changes."""
        changes: List[SlidingWindowedAggregation.Change] = []
        ts = self.window.timestamp(rel_name, row, self._arrivals)
        self._arrivals += 1
        if self._max_ts is None or ts > self._max_ts:
            self._max_ts = ts
        self._expire(ts - self.window.size, changes)
        if sign >= 0:
            self._apply(row, sign, changes)
            self._stored.append((ts, row))
        else:
            # a compensating retraction removes one stored instance so the
            # row is not retracted a second time when it expires; if no
            # instance is stored (the row already slid out of the window,
            # or was never in it) the retraction is a no-op -- applying it
            # anyway would double-subtract and leave phantom groups.
            # O(window) scan: compensation is the rare failure-recovery
            # path, and the window bounds the cost
            for i, (_stored_ts, stored_row) in enumerate(self._stored):
                if stored_row == row:
                    del self._stored[i]
                    self._apply(row, sign, changes)
                    break
        return changes

    def advance_time(self, now) -> List["SlidingWindowedAggregation.Change"]:
        """Watermark hook: expire rows older than ``now - size``.

        Expiry is capped at this operator's own newest arrival: a
        watermark reflects *global* progress, but the snapshot contract
        with the batch engine is per-partition arrival-driven expiry, and
        with in-order inputs any arrival at or past the watermark would
        expire the same rows anyway.  The cap only defers expiry for a
        partition whose stream went quiet -- it never changes what a
        later arrival (or the final snapshot) observes."""
        if self._max_ts is None:
            return []
        changes: List[SlidingWindowedAggregation.Change] = []
        self._expire(min(now, self._max_ts) - self.window.size, changes)
        return changes

    def _expire(self, horizon, changes):
        while self._stored and self._stored[0][0] <= horizon:
            _ts, row = self._stored.popleft()
            self._apply(row, -1, changes)
            self.expired_rows += 1

    def _apply(self, row, sign, changes):
        key = self.aggregation.key_of(row)
        old = self.aggregation.current(key)
        self.aggregation.consume(row, sign)
        new = self.aggregation.current(key)
        if old != new:
            changes.append((old, new))

    def snapshot(self) -> List[tuple]:
        """Current within-window groups (what the batch engine emits at
        end of stream)."""
        return self.aggregation.snapshot()

    def state_size(self) -> int:
        return len(self._stored)
