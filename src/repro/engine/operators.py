"""Relational operators: selections, projections and aggregations.

Squall currently supports sum, count and average aggregates (paper
section 2).  Aggregations are incremental: every input tuple updates the
group state, and the engine can emit either running updates (online
semantics) or a snapshot when the stream ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.expressions import Expression, Predicate
from repro.core.schema import Schema


class Selection:
    """Row filter compiled against the input schema.

    ``cost_class`` tags what the predicate touches ('int', 'date', 'noop')
    so the cost model can price it (Figure 5 prices an integer selection at
    1.6% of the run and a date selection at 16%).
    """

    def __init__(self, predicate: Predicate, schema: Schema, cost_class: str = "int"):
        self.predicate = predicate
        self.schema = schema
        self.cost_class = cost_class
        self._fn = predicate.compile(schema)
        self.seen = 0
        self.passed = 0

    def apply(self, row: tuple) -> Optional[tuple]:
        self.seen += 1
        if self._fn(row):
            self.passed += 1
            return row
        return None

    def apply_batch(self, rows: Sequence[tuple]) -> List[tuple]:
        """Filter a whole batch in one pass (counters updated in bulk)."""
        fn = self._fn
        kept = [row for row in rows if fn(row)]
        self.seen += len(rows)
        self.passed += len(kept)
        return kept

    @property
    def selectivity(self) -> float:
        return self.passed / self.seen if self.seen else 1.0

    # the compiled predicate is a closure of lambdas; drop it when a
    # parallel worker ships the operator across a process boundary and
    # recompile from the (picklable) predicate tree on arrival
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_fn"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._fn = self.predicate.compile(self.schema)


class Projection:
    """Maps rows to a new schema through compiled expressions.

    This implements Squall's *output schemes*: a component sends only the
    fields/expressions needed downstream (common subexpression
    elimination, paper section 2)."""

    def __init__(self, expressions: Sequence[Expression], schema: Schema,
                 names: Optional[Sequence[str]] = None):
        self.expressions = list(expressions)
        self.schema = schema
        self._fns = [expr.compile(schema) for expr in self.expressions]
        if names is None:
            names = [f"expr{i}" for i in range(len(self.expressions))]
        if len(names) != len(self.expressions):
            raise ValueError("one name per projected expression required")
        self.output_schema = Schema.of(*names)

    def apply(self, row: tuple) -> tuple:
        return tuple(fn(row) for fn in self._fns)

    def apply_batch(self, rows: Sequence[tuple]) -> List[tuple]:
        """Project a whole batch in one pass."""
        fns = self._fns
        if len(fns) == 1:
            fn = fns[0]
            return [(fn(row),) for row in rows]
        return [tuple(fn(row) for fn in fns) for row in rows]

    # same pickle story as Selection: recompile the expression closures
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_fns"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._fns = [expr.compile(self.schema) for expr in self.expressions]


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: kind in {'sum', 'count', 'avg'} over a column position."""

    kind: str
    position: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ("sum", "count", "avg"):
            raise ValueError(f"unsupported aggregate {self.kind!r}")
        if self.kind != "count" and self.position is None:
            raise ValueError(f"{self.kind} aggregate needs a column position")


def total(position: int) -> AggregateSpec:
    """SUM over the column at ``position``."""
    return AggregateSpec("sum", position)


def count() -> AggregateSpec:
    """COUNT(*)."""
    return AggregateSpec("count")


def avg(position: int) -> AggregateSpec:
    """AVG over the column at ``position``."""
    return AggregateSpec("avg", position)


class _GroupState:
    __slots__ = ("sums", "counts")

    def __init__(self, n: int):
        self.sums = [0] * n  # ints until a float value arrives (COUNT stays int)
        self.counts = 0


class Aggregation:
    """Incremental grouped aggregation (sum / count / avg).

    ``consume`` applies one input row (with sign -1 for retractions, so
    window expiration works); ``current`` and ``snapshot`` read results.
    """

    def __init__(self, group_positions: Sequence[int],
                 aggregates: Sequence[AggregateSpec]):
        self.group_positions = tuple(group_positions)
        self.aggregates = list(aggregates)
        self._groups: Dict[tuple, _GroupState] = {}
        self.consumed = 0

    def key_of(self, row: tuple) -> tuple:
        return tuple(row[p] for p in self.group_positions)

    def consume(self, row: tuple, sign: int = 1) -> tuple:
        """Update state; returns the group's current output row."""
        self.consumed += 1
        key = self.key_of(row)
        state = self._groups.get(key)
        if state is None:
            state = _GroupState(len(self.aggregates))
            self._groups[key] = state
        state.counts += sign
        for i, agg in enumerate(self.aggregates):
            if agg.kind == "count":
                state.sums[i] += sign
            else:
                state.sums[i] += sign * row[agg.position]
        if state.counts == 0:
            del self._groups[key]
            return key + tuple(0 for _ in self.aggregates)
        return key + self._values(state)

    def consume_batch(self, rows: Sequence[tuple], sign: int = 1,
                      collect: bool = True) -> Optional[List[tuple]]:
        """Apply a whole batch of input rows in one pass.

        With ``collect=True`` returns the group's current output row after
        each input (what per-row ``consume`` returns -- online semantics);
        with ``collect=False`` state is updated without materialising the
        per-row outputs, which is what snapshot-mode consumers want.
        """
        outputs: Optional[List[tuple]] = [] if collect else None
        groups = self._groups
        positions = self.group_positions
        aggregates = self.aggregates
        n_aggs = len(aggregates)
        for row in rows:
            key = tuple(row[p] for p in positions)
            state = groups.get(key)
            if state is None:
                state = _GroupState(n_aggs)
                groups[key] = state
            state.counts += sign
            sums = state.sums
            for i, agg in enumerate(aggregates):
                if agg.kind == "count":
                    sums[i] += sign
                else:
                    sums[i] += sign * row[agg.position]
            if state.counts == 0:
                del groups[key]
                if collect:
                    outputs.append(key + (0,) * n_aggs)
            elif collect:
                outputs.append(key + self._values(state))
        self.consumed += len(rows)
        return outputs

    def _values(self, state: _GroupState) -> tuple:
        values = []
        for i, agg in enumerate(self.aggregates):
            if agg.kind == "avg":
                values.append(state.sums[i] / state.counts if state.counts else 0.0)
            else:
                values.append(state.sums[i])
        return tuple(values)

    def current(self, key: tuple) -> Optional[tuple]:
        state = self._groups.get(key)
        if state is None:
            return None
        return key + self._values(state)

    def snapshot(self) -> List[tuple]:
        """All groups as (group columns..., aggregate values...) rows."""
        return sorted(
            key + self._values(state) for key, state in self._groups.items()
        )

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def reset(self):
        self._groups.clear()
