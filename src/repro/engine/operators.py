"""Relational operators: selections, projections and aggregations.

Squall currently supports sum, count and average aggregates (paper
section 2).  Aggregations are incremental: every input tuple updates the
group state, and the engine can emit either running updates (online
semantics) or a snapshot when the stream ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.columnar import ColumnBatch
from repro.core.expressions import ColumnarUnsupported, Expression, Predicate
from repro.core.schema import Schema


class Selection:
    """Row filter compiled against the input schema.

    ``cost_class`` tags what the predicate touches ('int', 'date', 'noop')
    so the cost model can price it (Figure 5 prices an integer selection at
    1.6% of the run and a date selection at 16%).
    """

    def __init__(self, predicate: Predicate, schema: Schema, cost_class: str = "int"):
        self.predicate = predicate
        self.schema = schema
        self.cost_class = cost_class
        self._fn = predicate.compile(schema)
        self._cfn = None
        self._cfn_resolved = False
        self.seen = 0
        self.passed = 0

    def apply(self, row: tuple) -> Optional[tuple]:
        self.seen += 1
        if self._fn(row):
            self.passed += 1
            return row
        return None

    def _columnar_fn(self):
        """Lazily compile the vectorized predicate; None = no vector form."""
        if not self._cfn_resolved:
            self._cfn_resolved = True
            try:
                self._cfn = self.predicate.compile_columnar(self.schema)
            except ColumnarUnsupported:
                self._cfn = None
        return self._cfn

    def apply_batch(self, rows: Sequence[tuple]):
        """Filter a whole batch in one pass (counters updated in bulk).

        A :class:`ColumnBatch` input is filtered as a whole-column mask
        when the predicate vectorizes and stays columnar on the way out;
        otherwise it degrades to the row path (returning a row list).
        """
        if isinstance(rows, ColumnBatch):
            fn = self._columnar_fn()
            if fn is not None:
                try:
                    mask = np.asarray(fn(rows), dtype=bool)
                except ColumnarUnsupported:
                    self._cfn = None  # runtime operands never vectorize
                else:
                    kept = rows.take(np.flatnonzero(mask))
                    self.seen += len(rows)
                    self.passed += len(kept)
                    return kept
            rows = rows.to_rows()
        fn = self._fn
        kept = [row for row in rows if fn(row)]
        self.seen += len(rows)
        self.passed += len(kept)
        return kept

    @property
    def selectivity(self) -> float:
        return self.passed / self.seen if self.seen else 1.0

    # the compiled predicate is a closure of lambdas; drop it when a
    # parallel worker ships the operator across a process boundary and
    # recompile from the (picklable) predicate tree on arrival
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_fn"]
        state["_cfn"] = None
        state["_cfn_resolved"] = False
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._fn = self.predicate.compile(self.schema)


class Projection:
    """Maps rows to a new schema through compiled expressions.

    This implements Squall's *output schemes*: a component sends only the
    fields/expressions needed downstream (common subexpression
    elimination, paper section 2)."""

    def __init__(self, expressions: Sequence[Expression], schema: Schema,
                 names: Optional[Sequence[str]] = None):
        self.expressions = list(expressions)
        self.schema = schema
        self._fns = [expr.compile(schema) for expr in self.expressions]
        self._cfns = None
        self._cfns_resolved = False
        if names is None:
            names = [f"expr{i}" for i in range(len(self.expressions))]
        if len(names) != len(self.expressions):
            raise ValueError("one name per projected expression required")
        self.output_schema = Schema.of(*names)

    def apply(self, row: tuple) -> tuple:
        return tuple(fn(row) for fn in self._fns)

    def _columnar_fns(self):
        """Lazily compile the vectorized projections; None = no vector form."""
        if not self._cfns_resolved:
            self._cfns_resolved = True
            try:
                self._cfns = [expr.compile_columnar(self.schema)
                              for expr in self.expressions]
            except ColumnarUnsupported:
                self._cfns = None
        return self._cfns

    @staticmethod
    def _as_column(value, n: int):
        """Broadcast a projected result into a column of ``n`` values."""
        if isinstance(value, (np.ndarray, list)):
            return value
        if type(value) is int:
            return np.full(n, value, dtype=np.int64)
        if type(value) is float:
            return np.full(n, value, dtype=np.float64)
        return [value] * n

    def apply_batch(self, rows: Sequence[tuple]):
        """Project a whole batch in one pass.

        Pure column references on a :class:`ColumnBatch` reuse the input
        columns zero-copy; vectorizable expressions evaluate as whole
        columns.  Anything else degrades to the row path.
        """
        if isinstance(rows, ColumnBatch):
            fns = self._columnar_fns()
            if fns is not None:
                n = len(rows)
                try:
                    columns = [self._as_column(fn(rows), n) for fn in fns]
                except ColumnarUnsupported:
                    self._cfns = None  # runtime operands never vectorize
                else:
                    return ColumnBatch(columns, n, rows.sign)
            rows = rows.to_rows()
        fns = self._fns
        if len(fns) == 1:
            fn = fns[0]
            return [(fn(row),) for row in rows]
        return [tuple(fn(row) for fn in fns) for row in rows]

    # same pickle story as Selection: recompile the expression closures
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_fns"]
        state["_cfns"] = None
        state["_cfns_resolved"] = False
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._fns = [expr.compile(self.schema) for expr in self.expressions]


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: kind in {'sum', 'count', 'avg'} over a column position."""

    kind: str
    position: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ("sum", "count", "avg"):
            raise ValueError(f"unsupported aggregate {self.kind!r}")
        if self.kind != "count" and self.position is None:
            raise ValueError(f"{self.kind} aggregate needs a column position")


def total(position: int) -> AggregateSpec:
    """SUM over the column at ``position``."""
    return AggregateSpec("sum", position)


def count() -> AggregateSpec:
    """COUNT(*)."""
    return AggregateSpec("count")


def avg(position: int) -> AggregateSpec:
    """AVG over the column at ``position``."""
    return AggregateSpec("avg", position)


class _GroupState:
    __slots__ = ("sums", "counts")

    def __init__(self, n: int):
        self.sums = [0] * n  # ints until a float value arrives (COUNT stays int)
        self.counts = 0


class Aggregation:
    """Incremental grouped aggregation (sum / count / avg).

    ``consume`` applies one input row (with sign -1 for retractions, so
    window expiration works); ``current`` and ``snapshot`` read results.
    """

    def __init__(self, group_positions: Sequence[int],
                 aggregates: Sequence[AggregateSpec]):
        self.group_positions = tuple(group_positions)
        self.aggregates = list(aggregates)
        self._groups: Dict[tuple, _GroupState] = {}
        self.consumed = 0

    def key_of(self, row: tuple) -> tuple:
        return tuple(row[p] for p in self.group_positions)

    def consume(self, row: tuple, sign: int = 1) -> tuple:
        """Update state; returns the group's current output row."""
        self.consumed += 1
        key = self.key_of(row)
        state = self._groups.get(key)
        if state is None:
            state = _GroupState(len(self.aggregates))
            self._groups[key] = state
        state.counts += sign
        for i, agg in enumerate(self.aggregates):
            if agg.kind == "count":
                state.sums[i] += sign
            else:
                state.sums[i] += sign * row[agg.position]
        if state.counts == 0:
            del self._groups[key]
            return key + tuple(0 for _ in self.aggregates)
        return key + self._values(state)

    def consume_batch(self, rows: Sequence[tuple], sign: int = 1,
                      collect: bool = True) -> Optional[List[tuple]]:
        """Apply a whole batch of input rows in one pass.

        With ``collect=True`` returns the group's current output row after
        each input (what per-row ``consume`` returns -- online semantics);
        with ``collect=False`` state is updated without materialising the
        per-row outputs, which is what snapshot-mode consumers want.

        Snapshot-mode :class:`ColumnBatch` input with a single ndarray
        group column reduces vectorized (``np.unique`` + ``bincount`` /
        ``np.add.at``) -- one dict update per distinct key instead of one
        per row.  Online mode needs per-row outputs and stays row-wise.
        """
        if isinstance(rows, ColumnBatch):
            if not collect and self._columnar_reducible(rows):
                self._consume_columnar(rows, sign)
                return None
            rows = rows.to_rows()
        outputs: Optional[List[tuple]] = [] if collect else None
        groups = self._groups
        positions = self.group_positions
        aggregates = self.aggregates
        n_aggs = len(aggregates)
        for row in rows:
            key = tuple(row[p] for p in positions)
            state = groups.get(key)
            if state is None:
                state = _GroupState(n_aggs)
                groups[key] = state
            state.counts += sign
            sums = state.sums
            for i, agg in enumerate(aggregates):
                if agg.kind == "count":
                    sums[i] += sign
                else:
                    sums[i] += sign * row[agg.position]
            if state.counts == 0:
                del groups[key]
                if collect:
                    outputs.append(key + (0,) * n_aggs)
            elif collect:
                outputs.append(key + self._values(state))
        self.consumed += len(rows)
        return outputs

    def _columnar_reducible(self, batch: ColumnBatch) -> bool:
        if len(self.group_positions) != 1:
            return False
        if not isinstance(batch.columns[self.group_positions[0]], np.ndarray):
            return False
        return all(
            agg.kind == "count"
            or isinstance(batch.columns[agg.position], np.ndarray)
            for agg in self.aggregates
        )

    def _consume_columnar(self, batch: ColumnBatch, sign: int):
        keys, inverse = np.unique(batch.columns[self.group_positions[0]],
                                  return_inverse=True)
        n_groups = len(keys)
        counts = np.bincount(inverse, minlength=n_groups)
        totals = []
        for agg in self.aggregates:
            if agg.kind == "count":
                totals.append(counts.tolist())
            else:
                col = batch.columns[agg.position]
                acc = np.zeros(n_groups, dtype=col.dtype)
                np.add.at(acc, inverse, col)
                totals.append(acc.tolist())
        counts_list = counts.tolist()
        groups = self._groups
        n_aggs = len(self.aggregates)
        # .tolist() above restores plain Python ints/floats, so group keys
        # and sums stay exactly what the row path would have produced
        for g, key_value in enumerate(keys.tolist()):
            key = (key_value,)
            state = groups.get(key)
            if state is None:
                state = _GroupState(n_aggs)
                groups[key] = state
            state.counts += sign * counts_list[g]
            sums = state.sums
            for i in range(n_aggs):
                sums[i] += sign * totals[i][g]
            if state.counts == 0:
                del groups[key]
        self.consumed += len(batch)

    def _values(self, state: _GroupState) -> tuple:
        values = []
        for i, agg in enumerate(self.aggregates):
            if agg.kind == "avg":
                values.append(state.sums[i] / state.counts if state.counts else 0.0)
            else:
                values.append(state.sums[i])
        return tuple(values)

    def current(self, key: tuple) -> Optional[tuple]:
        state = self._groups.get(key)
        if state is None:
            return None
        return key + self._values(state)

    def snapshot(self) -> List[tuple]:
        """All groups as (group columns..., aggregate values...) rows."""
        return sorted(
            key + self._values(state) for key, state in self._groups.items()
        )

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def reset(self):
        self._groups.clear()
