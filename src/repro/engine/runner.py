"""Compile physical plans to Storm topologies and execute them.

Every physical component becomes one spout or bolt; partitioning schemes
become stream groupings; joiner tasks own their local join state.  The
returned :class:`RunResult` carries the results plus every counter the
cost model and the paper's monitors need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.columnar import ColumnBatch, ColumnEmissions
from repro.core.options import ExecutionOptions, merge_options
from repro.engine.component import (
    AggComponent,
    JoinComponent,
    PhysicalPlan,
    SourceComponent,
)
from repro.engine.operators import Aggregation, Projection, Selection
from repro.engine.windows import (
    SlidingWindowedAggregation,
    WindowedAggregation,
    WindowedJoinState,
)
from repro.joins.base import LocalJoin
from repro.joins.hyld import LOCAL_JOINS, SCHEMES
from repro.partitioning.base import Partitioner
from repro.storm.cluster import LocalCluster
from repro.storm.groupings import FieldsGrouping, HypercubeGrouping, KeyMappedGrouping
from repro.storm.metrics import TopologyMetrics
from repro.storm.topology import Bolt, Spout, Topology, TopologyBuilder
from repro.util import round_robin_assignment

RETRACT_SUFFIX = ":retract"


class SourceSpout(Spout):
    """Reads a stripe of a relation, applying co-located selection/projection."""

    def __init__(self, component: SourceComponent):
        self.component = component
        self.rows = component.relation.rows
        self._position = 0
        self._step = 1
        self.read = 0
        #: columnar-path toggle, set by LocalCluster.run before draining
        self.columnar = False
        self.selection: Optional[Selection] = None
        self.projection: Optional[Projection] = None
        if component.predicate is not None:
            self.selection = Selection(
                component.predicate, component.relation.schema,
                cost_class=component.selection_cost_class,
            )
        if component.projection is not None:
            self.projection = Projection(
                component.projection, component.relation.schema,
                names=component.projection_names,
            )

    def open(self, task_index: int, parallelism: int):
        self._position = task_index
        self._step = parallelism

    def next_tuple(self):
        while self._position < len(self.rows):
            row = self.rows[self._position]
            self._position += self._step
            self.read += 1
            if self.selection is not None and self.selection.apply(row) is None:
                continue
            if self.projection is not None:
                row = self.projection.apply(row)
            return (self.component.name, row)
        return None

    # a shipped-home spout carries its counters, not the dataset: the
    # parallel backends return final task state to the coordinator for
    # result extraction, and pickling the whole input relation back over
    # the pipe would put O(dataset) serialization on that path.  A
    # round-tripped spout is therefore exhausted-by-construction (empty
    # rows) -- workers never resume a shipped spout.
    def __getstate__(self):
        import dataclasses

        state = dict(self.__dict__)
        state["rows"] = []
        state["component"] = dataclasses.replace(
            self.component,
            relation=dataclasses.replace(self.component.relation, rows=[]),
        )
        return state

    def has_more(self) -> bool:
        """Unread stripe rows remain (a columnar batch thinned by the
        selection can be short without meaning exhaustion)."""
        return self._position < len(self.rows)

    def next_batch(self, max_rows: int):
        """Read a stripe of up to ``max_rows`` *passing* tuples in one pass.

        The raw stripe is scanned with the selection predicate inlined and
        the projection applied batch-at-a-time, so per-tuple Python call
        overhead is paid once per batch instead of once per row.
        """
        if self.columnar:
            return self._next_batch_columnar(max_rows)
        rows = self.rows
        n = len(rows)
        position = self._position
        step = self._step
        stream = self.component.name
        selection = self.selection
        select = selection._fn if selection is not None else None
        out: list = []
        read = 0
        while position < n and len(out) < max_rows:
            row = rows[position]
            position += step
            read += 1
            if select is not None and not select(row):
                continue
            out.append(row)
        self._position = position
        self.read += read
        if selection is not None:
            selection.seen += read
            selection.passed += len(out)
        if self.projection is not None:
            out = self.projection.apply_batch(out)
        return [(stream, row) for row in out]

    def _next_batch_columnar(self, max_rows: int):
        """Read one stripe chunk as a :class:`ColumnBatch`.

        Selection/projection run as whole-column kernels; a chunk the
        predicate empties entirely is skipped and the scan continues, so
        an empty return still means exhaustion (the cluster's spout-drop
        contract)."""
        rows = self.rows
        n = len(rows)
        selection = self.selection
        projection = self.projection
        while self._position < n:
            position = self._position
            step = self._step
            if step == 1:
                chunk = rows[position:position + max_rows]
            else:
                chunk = rows[position:position + step * max_rows:step]
            self._position = position + step * len(chunk)
            self.read += len(chunk)
            batch = ColumnBatch.from_rows(chunk)
            if selection is not None:
                batch = selection.apply_batch(batch)
            if projection is not None:
                batch = projection.apply_batch(batch)
            if len(batch):
                if isinstance(batch, ColumnBatch):
                    return ColumnEmissions(self.component.name, batch)
                # an operator fell back to the row path (uncompilable
                # predicate/expression) -- emit row pairs
                return [(self.component.name, row) for row in batch]
        return []


class JoinBolt(Bolt):
    """One joiner task: a local join (optionally windowed) plus output scheme."""

    def __init__(self, component: JoinComponent,
                 local_join_factory: Callable[[], LocalJoin]):
        self.component = component
        local = local_join_factory()
        if component.window is not None:
            self.state: Union[WindowedJoinState, LocalJoin] = WindowedJoinState(
                local, component.window
            )
        else:
            self.state = local
        self._local = local
        self.output_positions = (
            list(component.output_positions)
            if component.output_positions is not None else None
        )
        self.emitted_outputs = 0

    def _project(self, row: tuple) -> tuple:
        if self.output_positions is None:
            return row
        return tuple(row[p] for p in self.output_positions)

    def execute(self, source: str, stream: str, values: tuple):
        if stream.endswith(RETRACT_SUFFIX):
            rel_name = stream[: -len(RETRACT_SUFFIX)]
            retracted = self._local.delete(rel_name, values)
            return [
                (self.component.name + RETRACT_SUFFIX, self._project(row))
                for row in retracted
            ]
        delta = self.state.insert(stream, values)
        self.emitted_outputs += len(delta)
        return [(self.component.name, self._project(row)) for row in delta]

    def execute_batch(self, source: str, stream: str, rows):
        if self.state is not self._local:
            # windowed joins expire per arrival -- keep per-tuple semantics
            return Bolt.execute_batch(self, source, stream, rows)
        positions = self.output_positions
        if stream.endswith(RETRACT_SUFFIX):
            rel_name = stream[: -len(RETRACT_SUFFIX)]
            retracted = self._local.delete_batch(rel_name, rows)
            out_stream = self.component.name + RETRACT_SUFFIX
            if isinstance(retracted, ColumnBatch):
                if not retracted:
                    return []
                if positions is not None:
                    retracted = retracted.take_columns(positions)
                return ColumnEmissions(out_stream, retracted)
            if positions is None:
                return [(out_stream, row) for row in retracted]
            return [(out_stream, tuple(row[p] for p in positions))
                    for row in retracted]
        delta = self._local.insert_batch(stream, rows)
        self.emitted_outputs += len(delta)
        out_stream = self.component.name
        if isinstance(delta, ColumnBatch):
            if not delta:
                return []
            if positions is not None:
                delta = delta.take_columns(positions)
            return ColumnEmissions(out_stream, delta)
        if positions is None:
            return [(out_stream, row) for row in delta]
        return [(out_stream, tuple(row[p] for p in positions)) for row in delta]

    @property
    def work(self) -> int:
        return self._local.work

    def state_size(self) -> int:
        return self._local.state_size()

    def advance_watermark(self, watermark) -> List[Tuple[str, tuple]]:
        """Punctuation hook of the continuous runtime: expire windowed
        state up to ``watermark``.  Watermarks carry *event time*, so
        arrival-order windows (no ts columns) ignore them.  Expired join
        outputs are not retracted downstream (batch parity: window
        expiration bounds state, it does not rewrite already-emitted
        results)."""
        window = self.component.window
        if (self.state is not self._local and window is not None
                and window.ts_positions is not None):
            self.state.advance_time(watermark)
        return []


class AggBolt(Bolt):
    """One aggregation task: incremental grouped sum/count/avg.

    Windowed variants: a *tumbling* window closes and emits
    ``(window id, group row)`` tuples as event time crosses boundaries; a
    *sliding* window keeps the aggregate over the trailing ``size`` time
    units by retracting expired input rows (sign -1), and emits its
    snapshot at end of stream (the continuous runtime's
    :class:`repro.streaming.runner.DeltaAggBolt` instead turns every
    state change into live ``+row/-row`` deltas).
    """

    def __init__(self, component: AggComponent):
        self.component = component
        def factory():
            return Aggregation(component.group_positions, component.aggregates)

        self.window_state: Optional[WindowedAggregation] = None
        self.sliding_state: Optional[SlidingWindowedAggregation] = None
        if component.window is not None:
            if component.window.kind == "sliding":
                if component.online:
                    raise ValueError(
                        "sliding-window aggregations run in snapshot mode; "
                        "online updates are the delta subscription's job "
                        "(repro.streaming)"
                    )
                self.sliding_state = SlidingWindowedAggregation(
                    factory, component.window)
            else:
                self.window_state = WindowedAggregation(factory, component.window)
        self.aggregation = (
            self.sliding_state.aggregation if self.sliding_state is not None
            else factory()
        )

    def execute(self, source: str, stream: str, values: tuple):
        sign = -1 if stream.endswith(RETRACT_SUFFIX) else 1
        if self.sliding_state is not None:
            self.sliding_state.consume(values, sign)
            return []
        if self.window_state is not None:
            closed = self.window_state.consume(values, sign)
            if closed is None:
                return []
            window_id, rows = closed
            return [(self.component.name, (window_id,) + row) for row in rows]
        updated = self.aggregation.consume(values, sign)
        if self.component.online:
            return [(self.component.name, updated)]
        return []

    def execute_batch(self, source: str, stream: str, rows):
        if self.window_state is not None or self.sliding_state is not None:
            # windowed aggregation expires/closes windows per arrival
            return Bolt.execute_batch(self, source, stream, rows)
        sign = -1 if stream.endswith(RETRACT_SUFFIX) else 1
        if self.component.online:
            name = self.component.name
            updated = self.aggregation.consume_batch(rows, sign)
            return [(name, row) for row in updated]
        self.aggregation.consume_batch(rows, sign, collect=False)
        return []

    def finish(self):
        if self.window_state is not None:
            closed = self.window_state.flush()
            if closed is None:
                return []
            window_id, rows = closed
            return [(self.component.name, (window_id,) + row) for row in rows]
        if self.component.online:
            return []
        return [(self.component.name, row) for row in self.aggregation.snapshot()]

    def advance_watermark(self, watermark) -> List[Tuple[str, tuple]]:
        """Punctuation hook: close/expire windows up to ``watermark``.

        Watermarks carry event time; arrival-order windows (no ts
        columns) ignore them and close per arrival / at end of stream."""
        window = self.component.window
        if window is None or window.ts_positions is None:
            return []
        if self.sliding_state is not None:
            self.sliding_state.advance_time(watermark)
            return []
        if self.window_state is not None:
            closed = self.window_state.advance_watermark(watermark)
            if closed is None:
                return []
            window_id, rows = closed
            return [(self.component.name, (window_id,) + row) for row in rows]
        return []


class SinkBolt(Bolt):
    """Collects final rows into a per-task list.

    Under the parallel backends each sink task's store lives inside the
    owning worker; ``run_plan`` gathers the stores *after* the run, when
    the cluster holds the final task state.  A shared list can still be
    injected (tests, embedding)."""

    def __init__(self, store: Optional[List[tuple]] = None):
        self.store = [] if store is None else store

    def execute(self, source: str, stream: str, values: tuple):
        if stream.endswith(RETRACT_SUFFIX):
            try:
                self.store.remove(values)
            except ValueError:
                pass
            return []
        self.store.append(values)
        return []

    def execute_batch(self, source: str, stream: str, rows):
        if stream.endswith(RETRACT_SUFFIX):
            remove = self.store.remove
            for row in rows:
                try:
                    remove(row)
                except ValueError:
                    pass
            return []
        self.store.extend(rows)
        return []


@dataclass
class RunResult:
    """Results plus the measurement surface for the cost model."""

    results: List[tuple]
    metrics: TopologyMetrics
    plan: PhysicalPlan
    #: raw rows read per source (pre-selection)
    reads: Dict[str, int]
    #: selection statistics per source: (cost class, seen, passed)
    selections: Dict[str, Tuple[str, int, int]]
    #: per join component: per-task (received handled by metrics) work & state
    join_work: Dict[str, List[int]] = field(default_factory=dict)
    join_state: Dict[str, List[int]] = field(default_factory=dict)
    partitioner_info: Dict[str, str] = field(default_factory=dict)
    #: the compiled topology (edge structure for replication-factor lookups)
    topology: Optional[Topology] = None
    #: the run's observability context (None unless the run executed
    #: with ExecutionOptions(observe='metrics') or 'trace')
    observer: Optional[object] = None

    @property
    def query_input(self) -> int:
        return sum(self.reads.values())

    @property
    def query_output(self) -> int:
        return len(self.results)

    def intermediate_network_factor(self) -> float:
        return self.metrics.intermediate_network_factor(
            self.query_input, self.query_output
        )

    def skew_degree(self, component: str) -> float:
        return self.metrics.skew_degree(component)

    def replication_factor(self, component: str) -> float:
        if self.topology is None:
            raise ValueError(
                "replication_factor needs the compiled topology; this "
                "RunResult was built without one"
            )
        upstream = [edge.source for edge in self.topology.in_edges(component)]
        return self.metrics.replication_factor(component, upstream)

    def profile(self) -> str:
        """EXPLAIN-ANALYZE-style per-operator report of this run.

        Always includes rows/batches/skew from the topology counters;
        per-operator p50/p95/p99 batch latencies (and, at the trace
        level, span counts) require the run to have executed with
        ``ExecutionOptions(observe='metrics')`` or ``'trace'``."""
        from repro.obs.profile import profile_report

        if self.topology is None:
            raise ValueError(
                "profile() needs the compiled topology; this RunResult "
                "was built without one")
        return profile_report(self.topology, self.metrics,
                              observer=self.observer)


def build_topology(
    plan: PhysicalPlan,
    spout_factory: Optional[Callable[[SourceComponent], Callable]] = None,
    agg_bolt_factory: Optional[Callable[[AggComponent], Bolt]] = None,
    sink_factory: Optional[Callable[[int, int], Bolt]] = None,
    source_parallelism: Optional[int] = None,
) -> Tuple[Topology, Dict[str, Partitioner]]:
    """Compile a physical plan into a topology (plus its partitioners).

    This is the shared Squall-to-Storm translation used by both the
    finite executor (:func:`run_plan`) and the continuous runtime
    (:mod:`repro.streaming`), which swaps in push-driven spouts, a
    delta-emitting aggregation bolt and a delta sink through the three
    factory hooks:

    - ``spout_factory(source)`` returns the per-task factory for one
      source component (default: :class:`SourceSpout` over the stored
      relation);
    - ``agg_bolt_factory(agg)`` builds one aggregation task (default
      :class:`AggBolt`);
    - ``sink_factory`` builds the sink task (default :class:`SinkBolt`);
    - ``source_parallelism`` overrides every source component's task
      count (the continuous runtime runs one pump per source).
    """
    plan.validate()
    builder = TopologyBuilder()

    for source in plan.sources:
        if spout_factory is not None:
            factory = spout_factory(source)
        else:
            def factory(task_index: int, parallelism: int,
                        source=source) -> SourceSpout:
                return SourceSpout(source)

        builder.set_spout(source.name, factory,
                          source_parallelism or source.parallelism)

    partitioners: Dict[str, Partitioner] = {}
    for join in plan.joins:
        if isinstance(join.scheme, str):
            partitioner = SCHEMES[join.scheme].build(
                join.spec, join.machines, seed=join.seed
            )
        else:
            partitioner = join.scheme
        partitioners[join.name] = partitioner
        local_factory = LOCAL_JOINS[join.local_join]

        def bolt_factory(task_index: int, parallelism: int, join=join,
                         local_factory=local_factory) -> JoinBolt:
            return JoinBolt(join, lambda: local_factory(join.spec))

        declarer = builder.set_bolt(join.name, bolt_factory, partitioner.n_machines)
        for rel_name in join.spec.relation_names:
            declarer.custom_grouping(
                rel_name,
                HypercubeGrouping(partitioner, rel_name),
                streams=[rel_name, rel_name + RETRACT_SUFFIX],
            )

    upstream_of_agg = plan.joins[-1].name if plan.joins else plan.sources[-1].name
    if plan.aggregation is not None:
        agg = plan.aggregation
        make_agg = agg_bolt_factory or AggBolt

        def agg_factory(task_index: int, parallelism: int, agg=agg,
                        make_agg=make_agg) -> Bolt:
            return make_agg(agg)

        declarer = builder.set_bolt(agg.name, agg_factory, agg.parallelism)
        streams = [upstream_of_agg, upstream_of_agg + RETRACT_SUFFIX]
        if agg.key_domain is not None and len(agg.group_positions) == 1:
            mapping = round_robin_assignment(agg.key_domain, agg.parallelism)
            declarer.custom_grouping(
                upstream_of_agg,
                KeyMappedGrouping(agg.group_positions[0], mapping),
                streams=streams,
            )
        elif agg.group_positions:
            declarer.custom_grouping(
                upstream_of_agg,
                FieldsGrouping(agg.group_positions),
                streams=streams,
            )
        else:
            declarer.global_grouping(upstream_of_agg, streams=streams)

    last = plan.last_data_component()

    if sink_factory is None:
        def sink_factory(task_index: int, parallelism: int) -> SinkBolt:
            return SinkBolt()

    builder.set_bolt(plan.sink.name, sink_factory, 1).global_grouping(
        last, streams=[last, last + RETRACT_SUFFIX]
    )

    return builder.build(), partitioners


def run_plan(plan: PhysicalPlan, max_tuples: Optional[int] = None,
             batch_size: Optional[int] = None, executor: Optional[str] = None,
             parallelism: Optional[int] = None,
             columnar: Optional[bool] = None,
             options: Optional[ExecutionOptions] = None) -> RunResult:
    """Compile a physical plan to a topology and execute it locally.

    Execution knobs are carried by ``options``
    (:class:`~repro.core.options.ExecutionOptions`); the individual
    kwargs remain as a deprecated spelling of the same thing, folded in
    through the shared adapter (a conflicting kwarg warns and loses).
    Unset knobs resolve to the finite engine's defaults: ``batch_size=1``
    (the golden per-tuple path), ``executor='inline'``.

    ``batch_size`` is the number of tuples pulled from each spout per
    round; downstream micro-batches follow from it but are not re-chunked
    (a join delta larger than ``batch_size`` travels as one batch).  The
    default of 1 reproduces the per-tuple engine's interleaving exactly;
    larger values amortize dispatch overhead without changing per-tuple
    results (the final result multiset and all per-component totals are
    identical).  Exception: *windowed* operators downstream of a join
    expire state in arrival order, and a join can re-emit stored rows
    with old event timestamps, so windowed results over join outputs are
    interleaving-sensitive -- they are only batch-size-invariant when the
    windowed operator's input arrives in event-time order (windows
    directly over a source, the common case).

    ``executor`` picks the execution backend (``"inline"``, ``"threads"``
    or ``"processes"``) and ``parallelism`` the number of shared-nothing
    workers; see :mod:`repro.storm.executor`.  Every backend yields the
    same result multiset and per-component totals; the process backend
    additionally requires pickle-safe task state (windowed components
    hold factory closures and are inline/threads-only).

    ``columnar`` selects the columnar execution path (vectorized
    selections, hashing, join probes); the default (None) turns it on
    for ``batch_size >= COLUMNAR_MIN_BATCH`` and off below.  Either
    setting yields the same result multiset.

    For *continuous* execution of the same plan over unbounded push
    sources, see :func:`repro.streaming.stream_plan`."""
    resolved = merge_options(options, dict(
        batch_size=batch_size, executor=executor, parallelism=parallelism,
        columnar=columnar)).resolve(default_batch_size=1)
    topology, partitioners = build_topology(plan)
    cluster = LocalCluster(topology)
    metrics = cluster.run(max_tuples=max_tuples,
                          batch_size=resolved.batch_size,
                          executor=resolved.executor,
                          parallelism=resolved.parallelism,
                          columnar=resolved.columnar,
                          observe=resolved.observe)

    # all measurement state is read back from the cluster's tasks *after*
    # the run: under the processes backend these are the final instances
    # shipped home from the shared-nothing workers
    spouts: Dict[str, List[SourceSpout]] = {
        source.name: cluster.tasks(source.name) for source in plan.sources
    }
    join_bolts: Dict[str, List[JoinBolt]] = {
        join.name: cluster.tasks(join.name) for join in plan.joins
    }
    results: List[tuple] = []
    for sink in cluster.tasks(plan.sink.name):
        results.extend(sink.store)

    reads = {
        name: sum(spout.read for spout in instances)
        for name, instances in spouts.items()
    }
    selections = {}
    for name, instances in spouts.items():
        with_selection = [s for s in instances if s.selection is not None]
        if with_selection:
            seen = sum(s.selection.seen for s in with_selection)
            passed = sum(s.selection.passed for s in with_selection)
            selections[name] = (with_selection[0].selection.cost_class, seen, passed)

    result = RunResult(
        results=results,
        metrics=metrics,
        plan=plan,
        reads=reads,
        selections=selections,
        join_work={
            name: [bolt.work for bolt in bolts]
            for name, bolts in join_bolts.items()
        },
        join_state={
            name: [bolt.state_size() for bolt in bolts]
            for name, bolts in join_bolts.items()
        },
        partitioner_info={
            name: partitioner.describe()
            for name, partitioner in partitioners.items()
        },
        topology=topology,
        observer=cluster.observer,
    )
    return result
