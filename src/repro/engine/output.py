"""Output schemes: send only what is needed downstream (paper section 2).

Each component decides its output scheme based on the fields/expressions
used downstream in the query plan (common subexpression elimination).  For
a join followed by an aggregation, only the group-by columns and the
aggregated columns need to cross the network.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.schema import Schema


def compute_output_scheme(
    output_schema: Schema, needed_names: Sequence[str]
) -> Tuple[List[int], Schema]:
    """Positions (and the projected schema) for the needed columns.

    ``needed_names`` are resolved against the component's full output
    schema; duplicates are collapsed, order of first use is preserved.
    """
    positions: List[int] = []
    names: List[str] = []
    for name in needed_names:
        position = output_schema.index_of(name)
        if position not in positions:
            positions.append(position)
            names.append(name)
    projected = Schema(output_schema.fields[p] for p in positions)
    return positions, projected


def remap_positions(old_positions: Sequence[int],
                    scheme_positions: Sequence[int]) -> List[int]:
    """Rewrite positions that referred to the full output row so that they
    refer to the projected (output-scheme) row instead."""
    mapping = {full: idx for idx, full in enumerate(scheme_positions)}
    remapped = []
    for position in old_positions:
        if position not in mapping:
            raise ValueError(
                f"position {position} was projected away by the output scheme"
            )
        remapped.append(mapping[position])
    return remapped
