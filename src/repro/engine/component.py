"""Physical-plan components: pipelines of co-located operators.

A *component* is Squall's execution unit: a pipeline of co-located
operators scaled out to many machines (paper section 2).  A data source
followed by a selection is one component; a multi-way joiner is another;
a final aggregation a third.  The runner maps each component to one Storm
spout or bolt with the component's parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.expressions import Expression, Predicate
from repro.core.predicates import JoinSpec
from repro.core.schema import Relation, Schema
from repro.engine.operators import AggregateSpec
from repro.engine.windows import WindowSpec
from repro.partitioning.base import Partitioner


@dataclass
class SourceComponent:
    """A data source with optionally co-located selection and projection.

    The selection/projection run inside the source tasks (no network hop),
    implementing the optimiser's push-down and co-location rules.
    """

    name: str
    relation: Relation
    predicate: Optional[Predicate] = None
    #: cost class of the selection ('int', 'date', 'noop') for the cost model
    selection_cost_class: str = "int"
    projection: Optional[Sequence[Expression]] = None
    projection_names: Optional[Sequence[str]] = None
    parallelism: int = 1

    def output_schema(self) -> Schema:
        if self.projection is None:
            return self.relation.schema
        names = self.projection_names or [
            f"expr{i}" for i in range(len(self.projection))
        ]
        return Schema.of(*names)


@dataclass
class JoinComponent:
    """A (possibly multi-way) join: partitioning scheme x local algorithm.

    ``spec`` relation names must match upstream component names (sources or
    earlier joins).  ``output_positions`` implements the output scheme: only
    those flattened columns are sent downstream."""

    name: str
    spec: JoinSpec
    machines: int
    scheme: Union[str, Partitioner] = "hybrid"
    local_join: str = "dbtoaster"
    window: Optional[WindowSpec] = None
    output_positions: Optional[Sequence[int]] = None
    seed: int = 0


@dataclass
class AggComponent:
    """Grouped aggregation over the final join output."""

    name: str
    group_positions: Sequence[int]
    aggregates: Sequence[AggregateSpec]
    parallelism: int = 1
    #: predefined small key domain: use round-robin key mapping (section 5)
    key_domain: Optional[Sequence] = None
    online: bool = False
    window: Optional[WindowSpec] = None


@dataclass
class SinkComponent:
    """Collects the final results of a plan."""

    name: str = "sink"


@dataclass
class PhysicalPlan:
    """An executable physical plan: sources -> joins... -> [aggregation]."""

    sources: List[SourceComponent]
    joins: List[JoinComponent] = field(default_factory=list)
    aggregation: Optional[AggComponent] = None
    sink: SinkComponent = field(default_factory=SinkComponent)

    def component_names(self) -> List[str]:
        names = [source.name for source in self.sources]
        names.extend(join.name for join in self.joins)
        if self.aggregation is not None:
            names.append(self.aggregation.name)
        names.append(self.sink.name)
        return names

    def validate(self):
        names = self.component_names()
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component names in plan: {names}")
        known = {source.name for source in self.sources}
        for join in self.joins:
            for rel_name in join.spec.relation_names:
                if rel_name not in known:
                    raise ValueError(
                        f"join {join.name!r} references {rel_name!r}, which is "
                        f"not an upstream component ({sorted(known)})"
                    )
            known.add(join.name)
        if self.aggregation is not None and not self.joins and not self.sources:
            raise ValueError("aggregation needs an upstream component")
        return self

    def last_data_component(self) -> str:
        if self.aggregation is not None:
            return self.aggregation.name
        if self.joins:
            return self.joins[-1].name
        return self.sources[-1].name
