"""``python -m repro.analysis`` -- the squall-lint command line.

Exit codes: 0 = clean, 1 = findings, 2 = usage or internal error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.core import RULES, analyze_paths, default_checkers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("squall-lint: domain-specific static analysis for "
                     "lock discipline, pickle safety, checkpoint "
                     "completeness, and determinism"))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)")
    parser.add_argument(
        "--rules", default=None, metavar="RULE[,RULE]",
        help="comma-separated subset of rules to run")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for checker in default_checkers():
            print(f"{checker.rule}: {checker.description}")
        return 0

    rules = None
    if args.rules:
        rules = [rule.strip() for rule in args.rules.split(",")
                 if rule.strip()]
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}; "
                  f"known: {', '.join(RULES)}", file=sys.stderr)
            return 2

    try:
        report = analyze_paths(args.paths, rules=rules)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.render())
        print(report.summary())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
