"""squall-lint: the repo's domain-specific static analysis suite.

Four AST-level checkers encode invariants that ruff and the test suite
cannot see, each grounded in a real past bug class:

- ``lock-discipline`` / ``lock-order``: fields declared in a class's
  ``GUARDED_BY`` map may only be touched while holding their lock (the
  PR 7 subscribe/fan-out race), and the cross-module lock acquisition
  graph must stay acyclic (broker RLock vs. sink locks).
- ``pickle-safety``: classes shipped over the ``processes`` pipes must
  not stash lambdas/closures/locks/generators/handles without a
  ``__getstate__`` (the Selection/Projection closure bug, previously a
  runtime-only refusal).
- ``checkpoint-completeness``: mutable routing/operator state must be
  reachable from the checkpoint protocol
  (``routing_state``/``__getstate__``), or recovery silently loses it.
- ``determinism``: unordered set iteration, wall-clock time, ``random``
  and ``id()`` in operator kernels break byte-identical batch parity.

Run it with ``python -m repro.analysis src/`` (exit 0 = clean, 1 =
findings, 2 = usage/internal error).  See ``docs/STATIC_ANALYSIS.md``
for the rule catalog and the suppression syntax.
"""

from repro.analysis.core import (
    RULES,
    Checker,
    Corpus,
    Finding,
    ModuleInfo,
    Report,
    analyze_paths,
    analyze_source,
    default_checkers,
)

__all__ = [
    "RULES",
    "Checker",
    "Corpus",
    "Finding",
    "ModuleInfo",
    "Report",
    "analyze_paths",
    "analyze_source",
    "default_checkers",
]
