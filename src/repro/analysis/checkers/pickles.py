"""Pickle-safety checker.

Classes that ride the ``processes`` executor's pipes -- bolts, spouts,
groupings, partitioners, join operators, and anything opted in with
``PIPE_PICKLED = True`` -- are pickled whole when a topology is staged
or a worker is respawned.  Assigning a lambda, a closure over a local
function, a generator, a ``threading`` primitive, or an open file handle
to ``self`` makes that pickle fail at runtime, which historically
surfaced as the "unpicklable bolt state" refusal deep inside worker
startup (the Selection/Projection closure bug, fixed by giving them
``__getstate__``/``__setstate__``).

This checker promotes that refusal to a static diagnostic: any target
class that stores such a value and defines no pickle protocol hook is an
error.  A class that is never shipped whole (coordinator-owned, like
``DeltaSink``) declares ``PIPE_PICKLED = False`` to opt out.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.core import (
    Checker,
    ClassInfo,
    Corpus,
    Finding,
    resolve_call,
)

#: corpus base classes whose subclasses cross the process pipes
PIPE_ROOTS = {"Bolt", "Spout", "Grouping", "Partitioner", "LocalJoin"}

#: defining any of these means the class controls its own pickled form
PICKLE_HOOKS = ("__getstate__", "__reduce__", "__reduce_ex__")

#: call targets whose results can never be pickled
_UNPICKLABLE_CALLS = {
    ("threading", "Lock"): "a threading.Lock",
    ("threading", "RLock"): "a threading.RLock",
    ("threading", "Condition"): "a threading.Condition",
    ("threading", "Event"): "a threading.Event",
    ("threading", "Semaphore"): "a threading.Semaphore",
    ("threading", "BoundedSemaphore"): "a threading.BoundedSemaphore",
    ("threading", "Barrier"): "a threading.Barrier",
    ("threading", "local"): "thread-local storage",
    ("builtins", "open"): "an open file handle",
    ("io", "open"): "an open file handle",
    ("socket", "socket"): "a socket",
    ("subprocess", "Popen"): "a subprocess handle",
    ("multiprocessing", "Pipe"): "a multiprocessing pipe",
    ("multiprocessing", "Queue"): "a multiprocessing queue",
    ("queue", "Queue"): "a queue.Queue (carries an internal lock)",
    ("queue", "SimpleQueue"): "a queue.SimpleQueue",
    ("queue", "LifoQueue"): "a queue.LifoQueue",
    ("queue", "PriorityQueue"): "a queue.PriorityQueue",
}


def pipe_classes(corpus: Corpus) -> List[ClassInfo]:
    """Every class the processes executor may pickle whole."""
    targets = {id(cls): cls for cls in corpus.subclasses(PIPE_ROOTS)}
    for module in corpus.modules:
        for cls in module.classes:
            if cls.pipe_pickled is True:
                targets.setdefault(id(cls), cls)
    return [cls for cls in targets.values() if cls.pipe_pickled is not False]


class PickleSafetyChecker(Checker):
    rule = "pickle-safety"
    description = ("classes shipped over process pipes must not hold "
                   "unpicklable state without a __getstate__")

    def check(self, corpus: Corpus) -> Iterable[Finding]:
        for cls in pipe_classes(corpus):
            if cls.defines_any(PICKLE_HOOKS):
                continue
            if corpus.ancestry_defines_any(cls, PICKLE_HOOKS, PIPE_ROOTS):
                continue
            for method_name, func in cls.methods.items():
                nested_defs = _nested_def_names(func)
                for node in ast.walk(func):
                    targets: List[ast.expr] = []
                    value: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign):
                        targets, value = node.targets, node.value
                    elif isinstance(node, ast.AnnAssign) and node.value:
                        targets, value = [node.target], node.value
                    if value is None:
                        continue
                    for target in _flatten_targets(targets):
                        attr = _self_attr(target)
                        if attr is None:
                            continue
                        what = _unpicklable(cls, value, nested_defs)
                        if what is None:
                            continue
                        yield Finding(
                            path=cls.module.path, line=node.lineno,
                            col=node.col_offset, rule=self.rule,
                            message=(
                                f"'{cls.name}.{attr}' is assigned {what} "
                                f"in {method_name}(), but {cls.name} is "
                                f"shipped over the processes pipes and "
                                f"defines no __getstate__; add a "
                                f"__getstate__/__setstate__ pair, or mark "
                                f"the class `PIPE_PICKLED = False` if it "
                                f"never crosses a pipe"))


def _flatten_targets(targets: Iterable[ast.expr]) -> Iterable[ast.expr]:
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flatten_targets(target.elts)
        else:
            yield target


def _self_attr(node: ast.expr) -> Optional[str]:
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _nested_def_names(func: ast.FunctionDef) -> Set[str]:
    return {node.name for node in ast.walk(func)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not func}


def _unpicklable(cls: ClassInfo, value: ast.expr,
                 nested_defs: Set[str]) -> Optional[str]:
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(value, ast.Name) and value.id in nested_defs:
        return f"the locally defined function '{value.id}' (a closure)"
    if isinstance(value, ast.Call):
        resolved = resolve_call(cls.module, value.func)
        if resolved in _UNPICKLABLE_CALLS:
            return _UNPICKLABLE_CALLS[resolved]  # type: ignore[index]
        if (isinstance(value.func, ast.Name)
                and value.func.id in nested_defs):
            return (f"the locally defined function "
                    f"'{value.func.id}' (a closure)")
    return None
