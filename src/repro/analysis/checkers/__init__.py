"""The individual squall-lint checkers (one module per rule family)."""
