"""Lock discipline and lock ordering checkers.

``lock-discipline`` enforces the ``GUARDED_BY`` contract: a class that
declares ``GUARDED_BY = {"_subscribers": "_lock"}`` promises that every
read or write of ``self._subscribers`` (outside ``__init__`` and the
pickle protocol) happens lexically inside ``with self._lock:``.  This is
the static form of the PR 7 subscribe/fan-out race, where a subscriber
list was appended outside the sink lock.  Helper methods that are only
ever called with the lock already held carry a
``# squall-lint: holds=_lock`` comment on their ``def`` line.

``lock-order`` builds a cross-module lock acquisition graph: an edge
``A.x -> B.y`` means some code path acquires ``B.y`` while holding
``A.x`` (lexically nested ``with`` blocks, calls to own methods that
acquire locks, and calls to unambiguous corpus methods on other
objects).  Cycles in that graph are potential deadlocks; re-acquiring a
non-reentrant ``threading.Lock``/``Condition`` you already hold is a
guaranteed one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Checker, ClassInfo, Corpus, Finding

#: methods where unlocked access is fine: construction and the pickle
#: protocol run before/outside any sharing
_EXEMPT_METHODS = {
    "__init__", "__new__", "__del__", "__post_init__",
    "__getstate__", "__setstate__", "__reduce__", "__reduce_ex__",
}

#: method names too generic to resolve across classes -- calling
#: ``payload.get(...)`` must not look like a call into ``Metrics.get``
_GENERIC_METHOD_NAMES = {
    "get", "set", "put", "pop", "push", "append", "appendleft", "extend",
    "add", "update", "remove", "discard", "clear", "items", "keys",
    "values", "insert", "index", "count", "sort", "reverse", "copy",
    "join", "split", "strip", "close", "open", "read", "write", "flush",
    "send", "recv", "acquire", "release", "wait", "notify", "notify_all",
    "start", "run", "result", "done", "cancel", "popleft", "popitem",
    "setdefault", "submit", "shutdown", "empty", "full", "qsize",
    "get_nowait", "put_nowait", "poll", "tick", "next", "reset",
}


@dataclass(frozen=True)
class _Access:
    """One ``self.<attr>`` touch of a guarded field."""

    attr: str
    line: int
    col: int
    held: FrozenSet[str]
    method: str


@dataclass(frozen=True)
class _Acquire:
    """One lock acquisition (``with self.<lock>:``)."""

    lock: str
    line: int
    held: FrozenSet[str]
    method: str
    nested: bool  # inside a nested def/lambda (deferred execution)


@dataclass(frozen=True)
class _MethodCall:
    """A call made while tracking lock state."""

    name: str
    on_self: bool
    line: int
    held: FrozenSet[str]
    method: str
    nested: bool


class _MethodWalk:
    """Single pass over one method body tracking held locks."""

    def __init__(self, cls: ClassInfo, method_name: str,
                 func: ast.FunctionDef, entry_held: FrozenSet[str]):
        self.cls = cls
        self.method = method_name
        self.lock_names = (set(cls.lock_attrs) | set(cls.guarded_by.values())
                           | set(cls.lock_aliases))
        self.accesses: List[_Access] = []
        self.acquires: List[_Acquire] = []
        self.calls: List[_MethodCall] = []
        body = list(func.body)
        self._visit_body(body, self._expand(entry_held), nested=False)

    def _expand(self, held: FrozenSet[str]) -> FrozenSet[str]:
        """Holding a Condition built on another lock holds that lock too."""
        out = set(held)
        for lock in held:
            alias = self.cls.lock_aliases.get(lock)
            if alias:
                out.add(alias)
        return frozenset(out)

    def _visit_body(self, stmts: Iterable[ast.stmt],
                    held: FrozenSet[str], nested: bool):
        for stmt in stmts:
            self._visit(stmt, held, nested)

    def _visit(self, node: ast.AST, held: FrozenSet[str], nested: bool):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            new_held = set(held)
            for item in node.items:
                self._visit(item.context_expr, held, nested)
                lock = self._self_attr(item.context_expr)
                if lock is not None and lock in self.lock_names:
                    self.acquires.append(_Acquire(
                        lock=lock, line=node.lineno, held=frozenset(held),
                        method=self.method, nested=nested))
                    new_held.add(lock)
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, held, nested)
            self._visit_body(node.body, self._expand(frozenset(new_held)),
                             nested)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def usually runs later; lock state at definition
            # time still applies lexically (closures capture self), so
            # keep ``held`` but mark everything inside as deferred.
            for decorator in node.decorator_list:
                self._visit(decorator, held, nested)
            self._visit_body(node.body, held, nested=True)
            return
        if isinstance(node, ast.Lambda):
            self._visit(node.body, held, nested=True)
            return
        if isinstance(node, ast.Attribute):
            self._visit(node.value, held, nested)
            attr = self._self_attr(node)
            if attr is not None and attr in self.cls.guarded_by:
                self.accesses.append(_Access(
                    attr=attr, line=node.lineno, col=node.col_offset,
                    held=held, method=self.method))
            return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver_self = (isinstance(func.value, ast.Name)
                                 and func.value.id == "self")
                self.calls.append(_MethodCall(
                    name=func.attr, on_self=receiver_self,
                    line=node.lineno, held=held, method=self.method,
                    nested=nested))
            for child in ast.iter_child_nodes(node):
                self._visit(child, held, nested)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, held, nested)

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        return None


def _walk_class(cls: ClassInfo) -> List[_MethodWalk]:
    walks = []
    for name, func in cls.methods.items():
        entry = frozenset(cls.holds_annotation(func))
        walks.append(_MethodWalk(cls, name, func, entry))
    return walks


def _lock_classes(corpus: Corpus) -> List[ClassInfo]:
    return [cls for module in corpus.modules for cls in module.classes
            if cls.lock_attrs or cls.guarded_by]


class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    description = ("GUARDED_BY fields must only be accessed while "
                   "holding their declared lock")

    def check(self, corpus: Corpus) -> Iterable[Finding]:
        for module in corpus.modules:
            for cls in module.classes:
                if not cls.guarded_by:
                    continue
                for walk in _walk_class(cls):
                    if walk.method in _EXEMPT_METHODS:
                        continue
                    for access in walk.accesses:
                        lock = cls.guarded_by[access.attr]
                        if lock in access.held:
                            continue
                        yield Finding(
                            path=module.path, line=access.line,
                            col=access.col, rule=self.rule,
                            message=(
                                f"'{cls.name}.{access.attr}' is declared "
                                f"GUARDED_BY '{lock}' but "
                                f"{cls.name}.{access.method}() accesses it "
                                f"without holding it; wrap the access in "
                                f"`with self.{lock}:` or, if every caller "
                                f"already holds the lock, annotate the def "
                                f"with `# squall-lint: holds={lock}`"))


class LockOrderChecker(Checker):
    rule = "lock-order"
    description = ("the cross-module lock acquisition graph must stay "
                   "acyclic (deadlock freedom)")

    def check(self, corpus: Corpus) -> Iterable[Finding]:
        classes = _lock_classes(corpus)
        walks: Dict[Tuple[str, str], _MethodWalk] = {}
        modules: Dict[str, str] = {}
        for cls in classes:
            modules[cls.name] = cls.module.path
            for walk in _walk_class(cls):
                walks[(cls.name, walk.method)] = walk

        # Footprint: locks a method acquires at call time (nested defs
        # excluded -- they run later, through unknown call paths).
        footprint: Dict[Tuple[str, str], Set[str]] = {}
        for key, walk in walks.items():
            footprint[key] = {acq.lock for acq in walk.acquires
                              if not acq.nested}

        # Which classes define a given (resolvable) method that acquires
        # locks -- used to resolve ``other.m()`` calls by name.
        method_owners: Dict[str, List[Tuple[str, str]]] = {}
        for (cls_name, method), locks in footprint.items():
            if locks and not method.startswith("__") \
                    and method not in _GENERIC_METHOD_NAMES:
                method_owners.setdefault(method, []).append(
                    (cls_name, method))

        # edge (held node -> acquired node) -> (line, path, via)
        edges: Dict[Tuple[Tuple[str, str], Tuple[str, str]],
                    Tuple[int, str, str]] = {}

        def add_edge(src: Tuple[str, str], dst: Tuple[str, str],
                     line: int, path: str, via: str):
            edges.setdefault((src, dst), (line, path, via))

        for cls in classes:
            path = cls.module.path
            for walk in (walks[(cls.name, m)] for m in cls.methods):
                for acq in walk.acquires:
                    if acq.nested:
                        continue
                    for held in acq.held:
                        add_edge((cls.name, held), (cls.name, acq.lock),
                                 acq.line, path, "lexical")
                for call in walk.calls:
                    if call.nested or not call.held:
                        continue
                    if call.on_self:
                        target = self._resolve_self(corpus, cls, call.name)
                        if target is None:
                            continue
                        for lock in footprint.get(target, ()):  # noqa: B007
                            for held in call.held:
                                add_edge((cls.name, held),
                                         (target[0], lock),
                                         call.line, path, "self-call")
                    else:
                        owners = method_owners.get(call.name, [])
                        for owner in owners:
                            if owner[0] == cls.name:
                                continue  # ambiguous receiver, same class
                            for lock in footprint[owner]:
                                for held in call.held:
                                    add_edge((cls.name, held),
                                             (owner[0], lock),
                                             call.line, path, "cross-call")

        yield from self._self_deadlocks(classes, edges)
        yield from self._cycles(edges, modules)

    @staticmethod
    def _resolve_self(corpus: Corpus, cls: ClassInfo,
                      method: str) -> Optional[Tuple[str, str]]:
        if method in cls.methods:
            return (cls.name, method)
        seen: Set[str] = set()
        stack = list(cls.bases)
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.add(base)
            for parent in corpus.by_name.get(base, ()):
                if method in parent.methods:
                    return (parent.name, method)
                stack.extend(parent.bases)
        return None

    def _self_deadlocks(self, classes, edges) -> Iterable[Finding]:
        kinds = {cls.name: cls.lock_attrs for cls in classes}
        paths = {cls.name: cls.module.path for cls in classes}
        for (src, dst), (line, path, via) in sorted(edges.items()):
            if src != dst or via == "cross-call":
                continue
            cls_name, lock = src
            kind = kinds.get(cls_name, {}).get(lock, "unknown")
            if kind in ("Lock", "Condition"):
                yield Finding(
                    path=paths.get(cls_name, path), line=line, col=0,
                    rule=self.rule,
                    message=(
                        f"'{cls_name}.{lock}' is a non-reentrant "
                        f"threading.{kind} but is re-acquired ({via}) "
                        f"while already held -- guaranteed self-deadlock"))

    def _cycles(self, edges, modules) -> Iterable[Finding]:
        graph: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        for (src, dst) in edges:
            if src != dst:
                graph.setdefault(src, set()).add(dst)
                graph.setdefault(dst, set())
        for component in _sccs(graph):
            if len(component) < 2:
                continue
            nodes = sorted(component)
            chain = " -> ".join(f"{c}.{lk}" for c, lk in nodes)
            witness = [(line, path)
                       for (src, dst), (line, path, _via) in edges.items()
                       if src in component and dst in component]
            line, path = min(witness)
            yield Finding(
                path=path, line=line, col=0, rule=self.rule,
                message=(
                    f"potential deadlock: lock acquisition cycle "
                    f"{chain} -> {nodes[0][0]}.{nodes[0][1]}; acquire "
                    f"these locks in one global order or drop one of "
                    f"the nested acquisitions"))


def _sccs(graph: Dict[Tuple[str, str], Set[Tuple[str, str]]]
          ) -> List[Set[Tuple[str, str]]]:
    """Tarjan strongly-connected components (iterative)."""
    index: Dict[Tuple[str, str], int] = {}
    low: Dict[Tuple[str, str], int] = {}
    on_stack: Set[Tuple[str, str]] = set()
    stack: List[Tuple[str, str]] = []
    counter = [0]
    out: List[Set[Tuple[str, str]]] = []

    def strongconnect(root):
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                out.append(component)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return out
