"""Determinism checker.

The equivalence suites pin byte-identical results across batch sizes,
executors, and row/columnar dataplanes.  Operator kernels therefore must
be deterministic functions of their input batches.  This checker flags
the classic leaks inside pipe-reachable classes (bolts, spouts,
groupings, partitioners, join operators):

- iterating an unordered ``set``/``frozenset`` where the iteration
  order can feed emissions or routing (``sorted(...)`` around it is the
  fix; plain dicts are insertion-ordered and fine);
- wall-clock reads: ``time.time()``, ``time.time_ns()``,
  ``datetime.now()`` -- note ``time.monotonic()`` is allowed, it is the
  blessed way to measure latency in metrics;
- ``random`` module calls (an explicitly seeded ``random.Random(seed)``
  instance is fine -- the module-level functions share hidden global
  state across workers);
- ``id()``-derived values: CPython addresses differ per process, so ids
  must never reach routing keys or emitted rows.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.core import (
    Checker,
    ClassInfo,
    Corpus,
    Finding,
    ModuleInfo,
    dotted_name,
    resolve_call,
)
from repro.analysis.checkers.pickles import pipe_classes

#: wall-clock call targets (module, name)
_WALL_CLOCK = {
    ("time", "time"), ("time", "time_ns"),
}

#: dotted suffixes that read the wall clock through datetime
_DATETIME_SUFFIXES = ("datetime.now", "datetime.utcnow", "date.today")


class DeterminismChecker(Checker):
    rule = "determinism"
    description = ("operator kernels must be deterministic: no unordered "
                   "set iteration, wall-clock, random, or id()")

    def check(self, corpus: Corpus) -> Iterable[Finding]:
        for cls in pipe_classes(corpus):
            module = cls.module
            for method_name, func in cls.methods.items():
                if method_name in ("__init__", "__repr__"):
                    continue
                yield from self._check_method(module, cls, method_name, func)

    def _check_method(self, module: ModuleInfo, cls: ClassInfo,
                      method_name: str,
                      func: ast.FunctionDef) -> Iterable[Finding]:
        where = f"{cls.name}.{method_name}()"
        for node in ast.walk(func):
            iterable = _unordered_iter(node)
            if iterable is not None:
                yield Finding(
                    path=module.path, line=iterable.lineno,
                    col=iterable.col_offset, rule=self.rule,
                    message=(
                        f"{where} iterates an unordered set -- iteration "
                        f"order varies across processes and breaks "
                        f"byte-identical batch parity; wrap it in "
                        f"sorted(...) or keep the data in an "
                        f"insertion-ordered dict/list"))
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(module, node.func)
            if resolved in _WALL_CLOCK:
                yield Finding(
                    path=module.path, line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=(
                        f"{where} reads the wall clock "
                        f"({resolved[1]}()); replayed batches after a "
                        f"recovery see a different value -- derive times "
                        f"from event time / watermarks, or use "
                        f"time.monotonic() for pure metrics"))
                continue
            name = dotted_name(node.func)
            if name is not None and name.endswith(_DATETIME_SUFFIXES):
                yield Finding(
                    path=module.path, line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=(
                        f"{where} reads the wall clock ({name}()); "
                        f"derive times from event time instead"))
                continue
            if resolved is not None and resolved[0] == "random" \
                    and resolved[1] != "Random":
                yield Finding(
                    path=module.path, line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=(
                        f"{where} calls random.{resolved[1]}() -- the "
                        f"module-level RNG is shared hidden state; use a "
                        f"seeded random.Random(seed) instance carried in "
                        f"checkpointed state"))
                continue
            if resolved == ("builtins", "id"):
                yield Finding(
                    path=module.path, line=node.lineno,
                    col=node.col_offset, rule=self.rule,
                    message=(
                        f"{where} uses id() -- CPython object addresses "
                        f"differ across processes and runs; id()-derived "
                        f"values must never reach routing keys or "
                        f"emitted rows"))


def _unordered_iter(node: ast.AST) -> Optional[ast.expr]:
    """The iterable expression if ``node`` iterates an unordered set."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        if _is_setlike(node.iter):
            return node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)):
        for gen in node.generators:
            if _is_setlike(gen.iter):
                return gen.iter
    return None


def _is_setlike(node: ast.expr) -> bool:
    """Whether an expression produces an unordered set.

    ``sorted(set(...))`` is fine -- ``sorted`` restores a total order --
    so only the *direct* iterable matters.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return _is_setlike(node.left) or _is_setlike(node.right)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in ("union", "intersection", "difference",
                                   "symmetric_difference"):
        return _is_setlike(node.func.value)
    return False
