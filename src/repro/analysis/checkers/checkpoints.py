"""Checkpoint-completeness checker.

Recovery replays from checkpointed state; any mutable field the
checkpoint protocol does not capture is silently reset on restore.  Two
past-incident shapes are enforced:

1. **Routing state.**  A ``Grouping``/``Partitioner`` subclass that
   mutates an instance attribute outside ``__init__`` (a round-robin
   cursor, an adaptive histogram) must expose it through
   ``routing_state()`` / ``restore_routing_state()`` -- the protocol the
   checkpoint coordinator snapshots.  ``ShuffleGrouping._next`` is the
   canonical example: without it, replayed batches after a worker
   respawn route differently than the original run.

2. **Dropped pickle keys.**  A ``__getstate__`` that removes a key from
   the state dict (``del state["_fn"]`` / ``state.pop("_fn")``) must be
   paired with a ``__setstate__`` that rebuilds that attribute,
   otherwise every recovered instance is missing it (the historical
   Selection/Projection closure bug -- their ``__setstate__`` recompiles
   the dropped closures).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.core import Checker, ClassInfo, Corpus, Finding

ROUTING_ROOTS = {"Grouping", "Partitioner"}

#: mutating container-method calls on ``self.<attr>.<m>(...)``
_MUTATORS = {
    "append", "appendleft", "extend", "extendleft", "add", "update",
    "pop", "popleft", "popitem", "remove", "discard", "clear", "insert",
    "setdefault", "sort", "reverse", "rotate",
}

#: methods whose writes do not need capturing: construction, the
#: checkpoint/pickle protocol itself (restore writes are fine)
_EXEMPT_WRITERS = {
    "__init__", "__new__", "__post_init__", "__setstate__",
    "restore_routing_state", "prepare",
}


class CheckpointCompletenessChecker(Checker):
    rule = "checkpoint-completeness"
    description = ("mutable operator/routing state must be captured by "
                   "the checkpoint protocol")

    def check(self, corpus: Corpus) -> Iterable[Finding]:
        yield from self._routing_state(corpus)
        yield from self._dropped_keys(corpus)

    # -- part 1: Grouping/Partitioner routing state ---------------------

    def _routing_state(self, corpus: Corpus) -> Iterable[Finding]:
        for cls in corpus.subclasses(ROUTING_ROOTS):
            mutated = _mutated_attrs(cls)
            if not mutated:
                continue
            has_state = corpus.ancestry_defines(
                cls, "routing_state", ROUTING_ROOTS)
            has_restore = corpus.ancestry_defines(
                cls, "restore_routing_state", ROUTING_ROOTS)
            if not has_state:
                attrs = ", ".join(sorted(mutated))
                yield Finding(
                    path=cls.module.path, line=cls.node.lineno, col=0,
                    rule=self.rule,
                    message=(
                        f"'{cls.name}' mutates routing state ({attrs}) "
                        f"but defines no routing_state()/"
                        f"restore_routing_state(); after a worker respawn "
                        f"the recovered instance re-routes from scratch"))
                continue
            if not has_restore:
                yield Finding(
                    path=cls.module.path, line=cls.node.lineno, col=0,
                    rule=self.rule,
                    message=(
                        f"'{cls.name}' defines routing_state() but no "
                        f"restore_routing_state(); checkpoints of it can "
                        f"never be applied"))
            state_fn = cls.methods.get("routing_state")
            if state_fn is None:
                continue  # inherited implementation covers the contract
            captured = _self_attrs_read(state_fn)
            for attr in sorted(set(mutated) - captured):
                line = min(mutated[attr])
                yield Finding(
                    path=cls.module.path, line=line, col=0, rule=self.rule,
                    message=(
                        f"'{cls.name}.{attr}' is mutated at runtime but "
                        f"does not appear in {cls.name}.routing_state(); "
                        f"recovery silently resets it"))

    # -- part 2: __getstate__ drops a key, __setstate__ never restores --

    def _dropped_keys(self, corpus: Corpus) -> Iterable[Finding]:
        for module in corpus.modules:
            for cls in module.classes:
                getstate = cls.methods.get("__getstate__")
                if getstate is None:
                    continue
                dropped = _dropped_state_keys(getstate)
                if not dropped:
                    continue
                setstate = cls.methods.get("__setstate__")
                restored: Set[str] = set()
                if setstate is not None:
                    restored = _restored_keys(setstate)
                for key, line in sorted(dropped.items()):
                    if key in restored:
                        continue
                    hint = ("define __setstate__ to rebuild it"
                            if setstate is None else
                            f"restore it in {cls.name}.__setstate__")
                    yield Finding(
                        path=module.path, line=line, col=0, rule=self.rule,
                        message=(
                            f"'{cls.name}.__getstate__' drops '{key}' from "
                            f"the pickled state but __setstate__ never "
                            f"restores it; every recovered instance is "
                            f"missing the attribute -- {hint}"))


def _mutated_attrs(cls: ClassInfo) -> Dict[str, List[int]]:
    """Instance attrs written/mutated outside construction & restore."""
    out: Dict[str, List[int]] = {}

    def note(attr: str, line: int):
        out.setdefault(attr, []).append(line)

    for method_name, func in cls.methods.items():
        if method_name in _EXEMPT_WRITERS or method_name.startswith("__"):
            continue
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    for attr in _store_target_attrs(target):
                        note(attr, node.lineno)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    for attr in _store_target_attrs(target):
                        note(attr, node.lineno)
            elif isinstance(node, ast.Call):
                func_node = node.func
                if (isinstance(func_node, ast.Attribute)
                        and func_node.attr in _MUTATORS):
                    attr = _self_attr(func_node.value)
                    if attr is not None:
                        note(attr, node.lineno)
    return out


def _store_target_attrs(target: ast.expr) -> Iterable[str]:
    """``self.x = ...`` / ``self.x[k] = ...`` / ``del self.x[k]`` -> 'x'."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _store_target_attrs(element)
        return
    if isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
    else:
        attr = _self_attr(target)
    if attr is not None:
        yield attr


def _self_attr(node: ast.expr) -> Optional[str]:
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _self_attrs_read(func: ast.FunctionDef) -> Set[str]:
    return {node.attr for node in ast.walk(func)
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name) and node.value.id == "self"}


def _dropped_state_keys(getstate: ast.FunctionDef) -> Dict[str, int]:
    """String keys removed from any dict inside ``__getstate__``."""
    dropped: Dict[str, int] = {}
    for node in ast.walk(getstate):
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)):
                    dropped[target.slice.value] = node.lineno
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr == "pop" and node.args
              and isinstance(node.args[0], ast.Constant)
              and isinstance(node.args[0].value, str)):
            dropped[node.args[0].value] = node.lineno
    return dropped


def _restored_keys(setstate: ast.FunctionDef) -> Set[str]:
    """Attrs assigned (``self.x = ...``) or keys written back
    (``state["x"] = ...``) inside ``__setstate__``."""
    restored: Set[str] = set()
    for node in ast.walk(setstate):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    restored.add(attr)
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)):
                    restored.add(target.slice.value)
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr == "setdefault" and node.args
              and isinstance(node.args[0], ast.Constant)
              and isinstance(node.args[0].value, str)):
            restored.add(node.args[0].value)
    return restored
