"""squall-lint core: corpus parsing, suppressions, and the check driver.

The analyzer is AST-only: it never imports the code under analysis, so
running it is safe on any tree (including fixture files that deadlock or
SIGKILL on import).  A run parses every ``.py`` file into a
:class:`ModuleInfo`, indexes the classes into a :class:`Corpus` (so
checkers can resolve base classes across modules by name), runs each
registered checker over the corpus, and filters the findings through the
per-line suppression comments.

Annotations the checkers read are **zero-runtime-cost conventions**, not
imports:

- ``GUARDED_BY = {"_attr": "_lock"}`` -- a plain dict class attribute
  declaring which lock guards which mutable field (the lock-discipline
  checker's contract).
- ``PIPE_PICKLED = False`` -- a plain bool class attribute exempting a
  class from pickle-safety (it never crosses the ``processes`` pipes)
  or, set to ``True``, opting an unrelated class in.
- ``# squall-lint: disable=<rule>[,<rule>]`` on (or directly above) a
  line suppresses those rules for that line.
- ``# squall-lint: disable-file=<rule>`` anywhere suppresses a rule for
  the whole file.
- ``# squall-lint: holds=<lock>[,<lock>]`` on a ``def`` line tells the
  lock checker the method is only ever called with those locks already
  held (documented caller contract, e.g. a private helper of a locked
  method).
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: every rule the suite knows; checkers register against one of these
RULES = (
    "lock-discipline",
    "lock-order",
    "pickle-safety",
    "checkpoint-completeness",
    "determinism",
    "parse-error",
)

_SUPPRESS = re.compile(r"#\s*squall-lint:\s*disable=([\w,\- ]+)")
_SUPPRESS_FILE = re.compile(r"#\s*squall-lint:\s*disable-file=([\w,\- ]+)")
_HOLDS = re.compile(r"#\s*squall-lint:\s*holds=([\w, ]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violated at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class ClassInfo:
    """Statically collected facts about one class definition."""

    def __init__(self, module: "ModuleInfo", node: ast.ClassDef):
        self.module = module
        self.node = node
        self.name = node.name
        self.bases: List[str] = [_dotted_tail(base) for base in node.bases]
        self.methods: Dict[str, ast.FunctionDef] = {}
        #: GUARDED_BY class-map: attribute name -> lock attribute name
        self.guarded_by: Dict[str, str] = {}
        #: PIPE_PICKLED marker (None = unmarked)
        self.pipe_pickled: Optional[bool] = None
        #: lock attributes assigned in __init__ -> kind
        #: ('Lock' | 'RLock' | 'Condition' | 'Event' | ...)
        self.lock_attrs: Dict[str, str] = {}
        #: Condition(self.X) aliases: holding the condition holds X too
        self.lock_aliases: Dict[str, str] = {}
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[item.name] = item
            elif isinstance(item, ast.Assign) and len(item.targets) == 1:
                target = item.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "GUARDED_BY":
                    self.guarded_by = _literal_str_dict(item.value)
                elif target.id == "PIPE_PICKLED":
                    if isinstance(item.value, ast.Constant) and isinstance(
                            item.value.value, bool):
                        self.pipe_pickled = item.value.value
        init = self.methods.get("__init__")
        if init is not None:
            self._collect_locks(init)

    def _collect_locks(self, init: ast.FunctionDef):
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            kind = _dotted_tail(value.func)
            if kind not in ("Lock", "RLock", "Condition", "Event",
                            "Semaphore", "BoundedSemaphore"):
                continue
            for target in stmt.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    self.lock_attrs[target.attr] = kind
                    if kind == "Condition" and value.args:
                        arg = value.args[0]
                        if (isinstance(arg, ast.Attribute)
                                and isinstance(arg.value, ast.Name)
                                and arg.value.id == "self"):
                            self.lock_aliases[target.attr] = arg.attr

    def defines_any(self, names: Iterable[str]) -> bool:
        return any(name in self.methods for name in names)

    def holds_annotation(self, func: ast.FunctionDef) -> Set[str]:
        """Locks declared held on entry via ``# squall-lint: holds=...``."""
        line = self.module.source_line(func.lineno)
        match = _HOLDS.search(line)
        if not match:
            return set()
        return {name.strip() for name in match.group(1).split(",")
                if name.strip()}


class ModuleInfo:
    """One parsed source file plus its suppression and import tables."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: line number -> rules disabled on that line
        self.suppressions: Dict[int, Set[str]] = {}
        self.file_disables: Set[str] = set()
        #: local name -> module it came from ("threading" for both
        #: ``import threading`` and ``from threading import Lock``)
        self.import_sources: Dict[str, str] = {}
        self._scan_comments()
        self._scan_imports()
        self.classes: List[ClassInfo] = [
            ClassInfo(self, node) for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)
        ]

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def _scan_comments(self):
        for index, line in enumerate(self.lines, start=1):
            match = _SUPPRESS.search(line)
            if match:
                rules = {name.strip() for name in match.group(1).split(",")}
                self.suppressions.setdefault(index, set()).update(
                    rules - {""})
            match = _SUPPRESS_FILE.search(line)
            if match:
                self.file_disables.update(
                    name.strip() for name in match.group(1).split(",")
                    if name.strip())

    def _scan_imports(self):
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    self.import_sources[name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.import_sources[alias.asname or alias.name] = node.module

    def suppressed(self, line: int, rule: str) -> bool:
        if rule in self.file_disables or "all" in self.file_disables:
            return True
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if rules and (rule in rules or "all" in rules):
                return True
        return False


class Corpus:
    """Every parsed module of one run, with a cross-module class index."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        #: class name -> definitions (same-named classes in several
        #: modules all count; base resolution unions them)
        self.by_name: Dict[str, List[ClassInfo]] = {}
        for module in self.modules:
            for cls in module.classes:
                self.by_name.setdefault(cls.name, []).append(cls)

    def subclasses(self, roots: Set[str]) -> List[ClassInfo]:
        """Classes transitively derived (by name) from any root name.

        The roots themselves are not returned -- they are interfaces, not
        implementations.  Resolution is name-based: external bases that
        are not in the corpus terminate the walk.
        """
        out = []
        for module in self.modules:
            for cls in module.classes:
                if cls.name not in roots and self._derives(cls, roots, set()):
                    out.append(cls)
        return out

    def _derives(self, cls: ClassInfo, roots: Set[str],
                 seen: Set[str]) -> bool:
        for base in cls.bases:
            if base in roots:
                return True
            if base in seen:
                continue
            seen.add(base)
            for parent in self.by_name.get(base, ()):
                if self._derives(parent, roots, seen):
                    return True
        return False

    def ancestry_defines_any(self, cls: "ClassInfo", methods: Iterable[str],
                             stop_at: Set[str]) -> bool:
        return any(self.ancestry_defines(cls, method, stop_at)
                   for method in methods)

    def ancestry_defines(self, cls: ClassInfo, method: str,
                         stop_at: Set[str],
                         _seen: Optional[Set[str]] = None) -> bool:
        """Whether ``cls`` or a corpus ancestor below ``stop_at`` defines
        ``method`` (the roots' default implementations don't count)."""
        if _seen is None:
            _seen = set()
        if method in cls.methods:
            return True
        for base in cls.bases:
            if base in stop_at or base in _seen:
                continue
            _seen.add(base)
            for parent in self.by_name.get(base, ()):
                if self.ancestry_defines(parent, method, stop_at, _seen):
                    return True
        return False


class Checker:
    """Base class of one rule's checker."""

    rule = "abstract"
    description = ""

    def check(self, corpus: Corpus) -> Iterable[Finding]:
        raise NotImplementedError


def _dotted_tail(node: ast.AST) -> str:
    """Last component of a possibly dotted expression ('storm.Bolt' -> 'Bolt')."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _dotted_tail(node.func)
    if isinstance(node, ast.Subscript):
        return _dotted_tail(node.value)
    return ""


def _literal_str_dict(node: ast.AST) -> Dict[str, str]:
    """A ``{"a": "b"}`` literal as a dict; non-literal entries are skipped."""
    out: Dict[str, str] = {}
    if isinstance(node, ast.Dict):
        for key, value in zip(node.keys, node.values):
            if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                out[key.value] = value.value
    return out


def dotted_name(node: ast.AST) -> Optional[str]:
    """Full dotted name of an expression ('threading.Lock'), or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call(module: ModuleInfo, func: ast.AST) -> Optional[Tuple[str, str]]:
    """Resolve a call target to ``(source module, name)`` via the imports.

    ``threading.Lock()`` and ``from threading import Lock; Lock()`` both
    resolve to ``("threading", "Lock")``; bare builtins resolve to
    ``("builtins", name)``; anything else (method calls on objects,
    locally defined names) returns None.
    """
    name = dotted_name(func)
    if name is None:
        return None
    head, _, tail = name.partition(".")
    source = module.import_sources.get(head)
    if source is not None:
        return (source, tail.split(".")[-1] if tail else head)
    if not tail:
        return ("builtins", head)
    return None


@dataclass
class Report:
    """The result of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> str:
        return json.dumps({
            "files_checked": self.files_checked,
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": self.summary(),
        }, indent=2)

    def summary(self) -> str:
        if not self.findings:
            return f"squall-lint: {self.files_checked} files checked, clean"
        per_rule: Dict[str, int] = {}
        for finding in self.findings:
            per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule}={count}" for rule, count in sorted(per_rule.items()))
        return (f"squall-lint: {len(self.findings)} finding(s) in "
                f"{self.files_checked} files ({breakdown})")


def default_checkers() -> List[Checker]:
    """One instance of every registered checker."""
    from repro.analysis.checkers.checkpoints import CheckpointCompletenessChecker
    from repro.analysis.checkers.determinism import DeterminismChecker
    from repro.analysis.checkers.locks import (
        LockDisciplineChecker,
        LockOrderChecker,
    )
    from repro.analysis.checkers.pickles import PickleSafetyChecker

    return [
        LockDisciplineChecker(),
        LockOrderChecker(),
        PickleSafetyChecker(),
        CheckpointCompletenessChecker(),
        DeterminismChecker(),
    ]


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs
                             if not d.startswith(".") and d != "__pycache__")
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return sorted(dict.fromkeys(out))


def analyze_paths(paths: Sequence[str],
                  rules: Optional[Sequence[str]] = None,
                  checkers: Optional[Sequence[Checker]] = None) -> Report:
    """Run the suite over files/directories; returns the filtered report."""
    report = Report()
    modules: List[ModuleInfo] = []
    for path in iter_python_files(paths):
        report.files_checked += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            modules.append(ModuleInfo(path, source))
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            report.findings.append(Finding(
                path=path, line=line, col=0, rule="parse-error",
                message=f"could not parse: {exc}"))
    report.findings.extend(_run_checkers(Corpus(modules), rules, checkers))
    report.findings.sort()
    return report


def analyze_source(source: str, path: str = "<memory>",
                   rules: Optional[Sequence[str]] = None,
                   checkers: Optional[Sequence[Checker]] = None
                   ) -> List[Finding]:
    """Analyze one in-memory source string (docs/tests convenience)."""
    module = ModuleInfo(path, source)
    return sorted(_run_checkers(Corpus([module]), rules, checkers))


def _run_checkers(corpus: Corpus,
                  rules: Optional[Sequence[str]],
                  checkers: Optional[Sequence[Checker]] = None
                  ) -> List[Finding]:
    wanted = set(rules) if rules else None
    by_path = {module.path: module for module in corpus.modules}
    findings: List[Finding] = []
    for checker in (default_checkers() if checkers is None else checkers):
        if wanted is not None and checker.rule not in wanted:
            continue
        for finding in checker.check(corpus):
            module = by_path.get(finding.path)
            if module is not None and module.suppressed(
                    finding.line, finding.rule):
                continue
            findings.append(finding)
    return findings
