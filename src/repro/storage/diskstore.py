"""A spill-to-disk hash index standing in for BerkeleyDB connectivity.

Design: the index keeps buckets in memory up to ``memory_budget`` stored
entries.  On overflow it evicts the largest bucket to an append-only log
file (one pickled record per spilled entry).  Lookups of spilled keys
scan the log -- deliberately expensive, mirroring the paper's observation
that performance is orders of magnitude better when only main memory is
used.  ``disk_writes`` / ``disk_reads`` counters feed the cost model.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Dict, Iterator, Optional, Tuple


class DiskLog:
    """Append-only log of pickled (key, row) records."""

    def __init__(self, path: Optional[str] = None):
        if path is None:
            handle = tempfile.NamedTemporaryFile(
                prefix="repro-spill-", suffix=".log", delete=False
            )
            handle.close()
            path = handle.name
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self.records = 0

    def append(self, key, row: tuple):
        with open(self.path, "ab") as handle:
            pickle.dump((key, row), handle)
        self.records += 1

    def scan(self) -> Iterator[Tuple[object, tuple]]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            while True:
                try:
                    yield pickle.load(handle)
                except EOFError:
                    return

    def close(self):
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)

    def __del__(self):  # best-effort temp file cleanup
        try:
            self.close()
        except Exception:
            pass


class SpillingHashIndex:
    """Hash multimap with a memory budget and disk spill.

    Interface-compatible with :class:`repro.joins.indexes.HashIndex` for
    insert/lookup; deletions of spilled entries are recorded as
    tombstones (the log is append-only, as in a log-structured store).
    """

    def __init__(self, memory_budget: int, log: Optional[DiskLog] = None):
        if memory_budget <= 0:
            raise ValueError("memory_budget must be positive")
        self.memory_budget = memory_budget
        self._buckets: Dict[object, Dict[tuple, int]] = {}
        self._spilled_keys: set = set()
        self._tombstones: Dict[Tuple[object, tuple], int] = {}
        self.log = log or DiskLog()
        self.in_memory = 0
        self.size = 0
        self.disk_writes = 0
        self.disk_reads = 0

    # -- core operations ----------------------------------------------------

    def insert(self, key, row: tuple):
        if key in self._spilled_keys:
            # keep spilled keys on disk: appending is cheap, reads pay
            self.log.append(key, row)
            self.disk_writes += 1
            self.size += 1
            return
        bucket = self._buckets.setdefault(key, {})
        bucket[row] = bucket.get(row, 0) + 1
        self.in_memory += 1
        self.size += 1
        if self.in_memory > self.memory_budget:
            self._evict()

    def _evict(self):
        """Spill the largest in-memory bucket to the log."""
        if not self._buckets:
            return
        victim = max(self._buckets, key=lambda k: sum(self._buckets[k].values()))
        bucket = self._buckets.pop(victim)
        for row, count in bucket.items():
            for _copy in range(count):
                self.log.append(victim, row)
                self.disk_writes += 1
        self.in_memory -= sum(bucket.values())
        self._spilled_keys.add(victim)

    def lookup(self, key) -> Iterator[Tuple[tuple, int]]:
        if key in self._spilled_keys:
            found: Dict[tuple, int] = {}
            for logged_key, row in self.log.scan():
                self.disk_reads += 1
                if logged_key == key:
                    found[row] = found.get(row, 0) + 1
            for (t_key, t_row), count in self._tombstones.items():
                if t_key == key and t_row in found:
                    found[t_row] -= count
            yield from ((row, count) for row, count in found.items() if count > 0)
            return
        bucket = self._buckets.get(key)
        if bucket:
            yield from bucket.items()

    def delete(self, key, row: tuple) -> bool:
        if key in self._spilled_keys:
            present = any(
                stored == row and count > 0 for stored, count in self.lookup(key)
            )
            if not present:
                return False
            tombstone = (key, row)
            self._tombstones[tombstone] = self._tombstones.get(tombstone, 0) + 1
            self.size -= 1
            return True
        bucket = self._buckets.get(key)
        if not bucket or row not in bucket:
            return False
        bucket[row] -= 1
        if bucket[row] == 0:
            del bucket[row]
            if not bucket:
                del self._buckets[key]
        self.in_memory -= 1
        self.size -= 1
        return True

    # -- reporting ----------------------------------------------------------

    @property
    def spilled_fraction(self) -> float:
        return 1.0 - (self.in_memory / self.size) if self.size else 0.0

    def __len__(self):
        return self.size

    def close(self):
        self.log.close()
