"""Disk-spill storage (the paper's BerkeleyDB connectivity).

Squall is a main-memory system but offers connectivity to BerkeleyDB,
which spills tuples to disk when main memory is insufficient -- at the
cost of orders-of-magnitude worse throughput and latency (paper section
2).  :class:`~repro.storage.diskstore.SpillingHashIndex` reproduces that
trade-off: a drop-in hash index that evicts cold buckets to an
append-only log file once a memory budget is exceeded, with disk
operation counters for the cost model.
"""

from repro.storage.diskstore import DiskLog, SpillingHashIndex

__all__ = ["DiskLog", "SpillingHashIndex"]
