"""The per-run observability context threaded through the dataplane.

An :class:`Observer` exists only when a run asked for it
(``ExecutionOptions(observe="metrics")`` or ``"trace"``); the off level
is represented by *no observer at all*, so the hot paths keep their
exact pre-observability shape.  The coordinator-side Observer owns the
:class:`~repro.obs.registry.MetricsRegistry` and the
:class:`~repro.obs.tracing.TraceBuffer`; shared-nothing workers carry a
:class:`WorkerObs` accumulator instead (plain lists, fork/pickle-safe)
whose payload rides back in the wave/execute reply deltas and is merged
here in worker-id order.

Instruments recorded per executed batch:

- ``operator_batch_seconds{component,task}`` -- execute-wall-time
  histogram (the profile's p50/p95/p99 source),
- ``routed_rows_total{component,task}`` -- rows delivered per task,
- ``queue_depth{queue}`` -- high-water work-queue depth,
- ``partition_skew{component}`` -- derived max/avg task imbalance
  (the paper's skew degree), computed at export time by a collector.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, Sample
from repro.obs.tracing import SpanContext, TraceBuffer, make_span

#: the ExecutionOptions(observe=...) levels, cheapest first
OBSERVE_LEVELS = ("off", "metrics", "trace")


class Observer:
    """Coordinator-side observability for one run (level metrics|trace).

    Instrument caches are plain dicts: a racing double-create resolves
    through the registry's own dedup (both threads get the same
    instrument), so the recording path never takes an extra lock."""

    def __init__(self, level: str,
                 registry: Optional[MetricsRegistry] = None,
                 traces: Optional[TraceBuffer] = None):
        if level not in OBSERVE_LEVELS[1:]:
            raise ValueError(
                f"observer level must be one of {OBSERVE_LEVELS[1:]}, "
                f"got {level!r} (level 'off' means: no Observer)")
        self.level = level
        self.trace = level == "trace"
        self.registry = registry if registry is not None else MetricsRegistry()
        self.traces = traces if traces is not None else TraceBuffer()
        # span ids: "c.N" for coordinator-recorded spans (itertools.count
        # is atomic under the GIL, so thread workers share it safely)
        self._span_seq = itertools.count(1)
        # per-(component, task) root-batch sequence: the deterministic
        # trace-id formula "<source>.<task>.<seq>" shared with WorkerObs
        self._root_seq: Dict[Tuple[str, int], "itertools.count"] = \
            defaultdict(lambda: itertools.count(1))
        self._hists: Dict[Tuple[str, int], Histogram] = {}
        self._rows: Dict[Tuple[str, int], Counter] = {}
        self._depths: Dict[str, Gauge] = {}
        #: component -> (grouping description, skew possible), installed
        #: by the cluster from the topology's edge groupings
        self._groupings: Dict[str, Tuple[str, bool]] = {}
        self.registry.register_collector(self._skew_samples)

    def set_groupings(self, groupings: Dict[str, Tuple[str, bool]]) -> None:
        """Install the per-component grouping info the skew gauge labels
        its samples with (and skips balanced-by-design edges by)."""
        self._groupings.update(groupings)

    # -- instruments -------------------------------------------------------

    def _hist(self, component: str, task: int) -> Histogram:
        key = (component, task)
        hist = self._hists.get(key)
        if hist is None:
            hist = self.registry.histogram(
                "operator_batch_seconds", component=component, task=str(task))
            self._hists[key] = hist
        return hist

    def _row_counter(self, component: str, task: int) -> Counter:
        key = (component, task)
        counter = self._rows.get(key)
        if counter is None:
            counter = self.registry.counter(
                "routed_rows_total", component=component, task=str(task))
            self._rows[key] = counter
        return counter

    def on_execute(self, component: str, task: int, rows: int,
                   seconds: float) -> None:
        """One batch of ``rows`` executed at (component, task)."""
        self._hist(component, task).observe(seconds)
        self._row_counter(component, task).inc(rows)

    def on_queue_depth(self, queue_name: str, depth: int) -> None:
        gauge = self._depths.get(queue_name)
        if gauge is None:
            gauge = self.registry.gauge("queue_depth", queue=queue_name)
            self._depths[queue_name] = gauge
        gauge.set_max(depth)

    def _skew_samples(self) -> List[Sample]:
        """Per-component imbalance of the routed-row counters: the
        paper's skew degree, max task load over mean task load.

        Only key-partitioned components report (a shuffle or broadcast
        edge is balanced by construction -- see
        :meth:`~repro.storm.groupings.Grouping.skew_possible`); each
        sample is labelled with the grouping that produced the split."""
        loads: Dict[str, List[float]] = defaultdict(list)
        for (component, _task), counter in sorted(self._rows.items()):
            loads[component].append(counter.read())
        out: List[Sample] = []
        for component, values in sorted(loads.items()):
            description, possible = self._groupings.get(
                component, ("unknown", True))
            if not possible:
                continue
            total = sum(values)
            if total <= 0:
                continue
            skew = max(values) / (total / len(values))
            out.append(("partition_skew",
                        {"component": component, "grouping": description},
                        skew, "gauge"))
        return out

    # -- spans -------------------------------------------------------------

    def next_trace_id(self, component: str, task: int) -> str:
        return f"{component}.{task}.{next(self._root_seq[(component, task)])}"

    def root(self, component: str, task: int, rows: int,
             seconds: float) -> Optional[SpanContext]:
        """Record the source hop of a new trace (metrics level: no-op)."""
        if not self.trace:
            return None
        trace_id = self.next_trace_id(component, task)
        span_id = f"c.{next(self._span_seq)}"
        self.traces.add(make_span(trace_id, span_id, None, component, task,
                                  rows, seconds))
        return SpanContext(trace_id, span_id)

    def span(self, parent: Optional[SpanContext], component: str, task: int,
             rows: int, seconds: float) -> Optional[SpanContext]:
        """Record one operator hop under ``parent``; None parent (an
        untraced punctuation/flush emission) stays untraced."""
        if parent is None or not self.trace:
            return None
        span_id = f"c.{next(self._span_seq)}"
        self.traces.add(make_span(parent.trace_id, span_id, parent.span_id,
                                  component, task, rows, seconds))
        return SpanContext(parent.trace_id, span_id)

    # -- worker payload merge ----------------------------------------------

    def merge_worker_obs(self, payload: Optional[dict]) -> None:
        """Fold one worker reply's observability payload in.

        Callers iterate replies in worker-id order, so the merged
        instrument totals are deterministic for a fixed assignment."""
        if not payload:
            return
        for component, task, rows, seconds in payload["timings"]:
            self.on_execute(component, task, rows, seconds)
        spans = payload.get("spans")
        if spans:
            self.traces.extend(spans)


class WorkerObs:
    """A shared-nothing worker's observability accumulator.

    No locks (each worker is single-threaded) and only plain lists and
    strings, so it forks and pickles cleanly with the worker state.  The
    drained payload -- ``{"timings": [(component, task, rows, seconds)],
    "spans": [span dicts]}`` -- rides the existing reply deltas; span
    ids carry the ``w<worker-id>`` prefix so reassembled traces never
    collide with coordinator-issued ids.
    """

    def __init__(self, worker_id: int, level: str):
        if level not in OBSERVE_LEVELS[1:]:
            raise ValueError(f"unexpected worker observe level {level!r}")
        self.level = level
        self.trace = level == "trace"
        self.prefix = f"w{worker_id}"
        self._span_seq = 0
        self._root_seq: Dict[Tuple[str, int], int] = {}
        self.timings: List[Tuple[str, int, int, float]] = []
        self.spans: List[dict] = []

    def _next_span_id(self) -> str:
        self._span_seq += 1
        return f"{self.prefix}.{self._span_seq}"

    def record(self, component: str, task: int, rows: int,
               seconds: float) -> None:
        self.timings.append((component, task, rows, seconds))

    def root(self, component: str, task: int, rows: int,
             seconds: float) -> Optional[SpanContext]:
        if not self.trace:
            return None
        seq = self._root_seq.get((component, task), 0) + 1
        self._root_seq[(component, task)] = seq
        trace_id = f"{component}.{task}.{seq}"
        span_id = self._next_span_id()
        self.spans.append(make_span(trace_id, span_id, None, component, task,
                                    rows, seconds))
        return SpanContext(trace_id, span_id)

    def span(self, parent: Optional[SpanContext], component: str, task: int,
             rows: int, seconds: float) -> Optional[SpanContext]:
        if parent is None or not self.trace:
            return None
        span_id = self._next_span_id()
        self.spans.append(make_span(parent.trace_id, span_id, parent.span_id,
                                    component, task, rows, seconds))
        return SpanContext(parent.trace_id, span_id)

    def drain(self) -> Optional[dict]:
        """The payload for one reply; resets the accumulators."""
        if not self.timings and not self.spans:
            return None
        payload = {"timings": self.timings, "spans": self.spans}
        self.timings = []
        self.spans = []
        return payload
