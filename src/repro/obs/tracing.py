"""Batch-level tracing: span contexts, span records, and the buffer.

A :class:`SpanContext` is the two-string tag that rides a micro-batch
through the dataplane — over the inline work stack, through the thread
executors' queues, and across the resident-process pipes (it pickles
to a tiny tuple).  Each operator hop appends one *span record* — a
plain dict, so worker replies can carry them without a custom codec —
to the :class:`TraceBuffer`, whose JSON export makes one source batch
followable spout→join→agg→sink with per-hop timings.

Trace ids are deterministic — ``"<source>.<task>.<seq>"`` for the
``seq``-th batch a source task emitted — so the *same* logical batch
gets the same trace id no matter which executor ran the plan.  Span
ids only need to be unique within a trace; each producer (the
coordinator, or worker ``N``) draws from its own prefixed sequence.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Tuple

#: default bound on retained span records
DEFAULT_TRACE_CAPACITY = 20_000


class SpanContext(NamedTuple):
    """What a batch carries: which trace it belongs to and which span
    produced it (the parent of whatever happens to it next)."""

    trace_id: str
    span_id: str


def make_span(trace_id: str, span_id: str, parent_id: Optional[str],
              component: str, task: int, rows: int,
              duration_s: float) -> Dict[str, object]:
    """One hop of one batch, as a JSON-ready record."""
    return {
        "trace": trace_id,
        "span": span_id,
        "parent": parent_id,
        "component": component,
        "task": task,
        "rows": rows,
        "duration_ms": duration_s * 1000.0,
    }


class SpanIds:
    """A prefixed span-id sequence for one single-threaded producer."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._seq = 0

    def next(self) -> str:
        self._seq += 1
        return f"{self.prefix}.{self._seq}"


class TraceBuffer:
    """Bounded, thread-safe store of span records with JSON export.

    When full, the oldest spans are evicted and counted in
    ``dropped`` — tracing must never make the engine grow without
    bound, and a profile run cares about recent batches anyway.
    """

    GUARDED_BY = {
        "_spans": "_lock",
        "dropped": "_lock",
    }

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: Deque[Dict[str, object]] = deque()
        self.dropped = 0

    def _evict_locked(self) -> None:  # squall-lint: holds=_lock
        while len(self._spans) > self.capacity:
            self._spans.popleft()
            self.dropped += 1

    def add(self, span: Dict[str, object]) -> None:
        with self._lock:
            self._spans.append(span)
            self._evict_locked()

    def extend(self, spans) -> None:
        with self._lock:
            self._spans.extend(spans)
            self._evict_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def spans(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._spans)

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in first-seen order."""
        seen: Dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(str(span["trace"]), None)
        return list(seen)

    def trace(self, trace_id: str) -> List[Dict[str, object]]:
        return [span for span in self.spans() if span["trace"] == trace_id]

    def edges(self, trace_id: str) -> List[Tuple[Tuple[str, int],
                                                 Tuple[str, int]]]:
        """The trace's shape: sorted (parent, child) ``(component,
        task)`` pairs.  Two executions of the same batch on different
        executors must agree on this even though span ids differ."""
        spans = self.trace(trace_id)
        by_id = {span["span"]: span for span in spans}
        out = []
        for span in spans:
            parent = by_id.get(span["parent"])
            if parent is not None:
                out.append(((str(parent["component"]), int(parent["task"])),
                            (str(span["component"]), int(span["task"]))))
        return sorted(out)

    def tree(self, trace_id: str) -> List[Dict[str, object]]:
        """Nested ``{"span": ..., "children": [...]}`` forest."""
        spans = self.trace(trace_id)
        nodes = {span["span"]: {"span": span, "children": []}
                 for span in spans}
        roots = []
        for span in spans:
            node = nodes[span["span"]]
            parent = nodes.get(span["parent"])
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    def to_json(self, trace_id: Optional[str] = None, indent: int = 2) -> str:
        """JSON export — every span, or one trace's spans."""
        spans = self.spans() if trace_id is None else self.trace(trace_id)
        with self._lock:
            dropped = self.dropped
        return json.dumps({"spans": spans, "dropped": dropped},
                          indent=indent, sort_keys=True)
