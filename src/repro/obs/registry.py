"""Typed metric instruments and the process-wide :class:`MetricsRegistry`.

The registry is the single rendezvous point for every number the engine
can report: typed instruments (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`) are created on demand and deduplicated by
``(name, labels)``, while the pre-existing metrics classes
(``TopologyMetrics``, ``StreamMetrics``, ``CheckpointMetrics``,
``ServingMetrics``) plug in through *collectors* — zero-cost callables
sampled only at export time, so their hot recording paths stay exactly
as cheap as before.

A sample is the 4-tuple ``(name, labels, value, kind)``; the Prometheus
renderer in :mod:`repro.obs.prometheus` and the JSON exporter both
consume that shape.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: one exported measurement: (metric name, labels, value, instrument kind)
Sample = Tuple[str, Dict[str, str], float, str]

#: fixed exponential latency bucket upper bounds, in seconds.  A shared,
#: static layout keeps histograms mergeable across tasks, workers, and
#: processes without renegotiation (the classic Prometheus trade-off).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count (rows routed, batches run)."""

    kind = "counter"

    GUARDED_BY = {"value": "_lock"}

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        with self._lock:
            self.value += amount

    def read(self) -> float:
        with self._lock:
            return self.value

    def samples(self) -> List[Sample]:
        return [(self.name, dict(self.labels), self.read(), self.kind)]


class Gauge:
    """A point-in-time level (queue depth, skew degree)."""

    kind = "gauge"

    GUARDED_BY = {"value": "_lock"}

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the high-water mark — handy for queue depths."""
        with self._lock:
            if value > self.value:
                self.value = float(value)

    def read(self) -> float:
        with self._lock:
            return self.value

    def samples(self) -> List[Sample]:
        return [(self.name, dict(self.labels), self.read(), self.kind)]


class Histogram:
    """Fixed-bucket latency histogram with percentile estimation.

    ``bounds`` are the finite bucket upper bounds; an implicit +inf
    bucket catches overflow.  ``percentile`` answers with the upper
    bound of the bucket where the cumulative count crosses the rank —
    a deliberate, conservative over-estimate, which is the standard
    behaviour for fixed-layout histograms (and what makes merged
    worker histograms meaningful without shipping raw samples).
    """

    kind = "histogram"

    GUARDED_BY = {
        "counts": "_lock",
        "total": "_lock",
        "count": "_lock",
    }

    def __init__(self, name: str, labels: Dict[str, str],
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = dict(labels)
        self.bounds = tuple(float(b) for b in bounds)
        self._lock = threading.Lock()
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    def merge(self, counts: Sequence[int], total: float, count: int) -> None:
        """Fold another histogram's ``snapshot()`` in (same bounds)."""
        if len(counts) != len(self.bounds) + 1:
            raise ValueError("cannot merge histograms with different layouts")
        with self._lock:
            for index, bucket in enumerate(counts):
                self.counts[index] += bucket
            self.total += total
            self.count += count

    def snapshot(self) -> Tuple[List[int], float, int]:
        with self._lock:
            return list(self.counts), self.total, self.count

    def percentile(self, quantile: float) -> float:
        """Upper bound of the bucket holding the q-th ranked sample.

        Returns 0.0 for an empty histogram; samples past the last
        finite bound report that bound (there is no tighter answer).
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        counts, _total, count = self.snapshot()
        if count == 0:
            return 0.0
        rank = quantile * count
        cumulative = 0
        for index, bucket in enumerate(counts):
            cumulative += bucket
            if cumulative >= rank and bucket:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]
        return self.bounds[-1]

    def mean(self) -> float:
        _counts, total, count = self.snapshot()
        return total / count if count else 0.0

    def samples(self) -> List[Sample]:
        counts, total, count = self.snapshot()
        out: List[Sample] = []
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            cumulative += counts[index]
            labels = dict(self.labels)
            labels["le"] = repr(bound)
            out.append((self.name + "_bucket", labels, float(cumulative),
                        self.kind))
        labels = dict(self.labels)
        labels["le"] = "+Inf"
        out.append((self.name + "_bucket", labels, float(count), self.kind))
        out.append((self.name + "_sum", dict(self.labels), total, self.kind))
        out.append((self.name + "_count", dict(self.labels), float(count),
                    self.kind))
        return out


class MetricsRegistry:
    """Deduplicating home for instruments plus export-time collectors.

    Instruments are keyed by ``(name, sorted labels)``; asking twice
    returns the same object, asking with a different instrument type
    for an existing name/label pair is an error.  Collectors are
    callables returning an iterable of :data:`Sample` — they let the
    existing metrics classes join the export surface without paying
    any locking on their recording paths.
    """

    GUARDED_BY = {
        "_instruments": "_lock",
        "_collectors": "_lock",
    }

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, _LabelKey], object] = {}
        self._collectors: List[Callable[[], Iterable[Sample]]] = []

    def _get_locked(self, cls, name: str,  # squall-lint: holds=_lock
                    labels: Dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}")
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        with self._lock:
            return self._get_locked(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        with self._lock:
            return self._get_locked(Gauge, name, labels)

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None,
                  **labels: str) -> Histogram:
        with self._lock:
            if bounds is None:
                return self._get_locked(Histogram, name, labels)
            return self._get_locked(Histogram, name, labels, bounds=bounds)

    def register_collector(
            self, collector: Callable[[], Iterable[Sample]]) -> None:
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def instruments(self) -> List[object]:
        with self._lock:
            items = sorted(self._instruments.items())
        return [instrument for _key, instrument in items]

    def samples(self) -> List[Sample]:
        """Every sample: instruments first (sorted), then collectors."""
        out: List[Sample] = []
        for instrument in self.instruments():
            out.extend(instrument.samples())  # type: ignore[attr-defined]
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            out.extend(collector())
        return out

    def merged_histogram(self, name: str,
                         **match: str) -> Histogram:
        """One histogram folding every ``name`` instrument whose labels
        contain ``match`` — how ``profile()`` aggregates a component's
        per-task latency histograms."""
        merged: Optional[Histogram] = None
        for instrument in self.instruments():
            if not isinstance(instrument, Histogram):
                continue
            if instrument.name != name:
                continue
            if any(instrument.labels.get(k) != v for k, v in match.items()):
                continue
            if merged is None:
                merged = Histogram(name, dict(match), bounds=instrument.bounds)
            merged.merge(*instrument.snapshot())
        if merged is None:
            merged = Histogram(name, dict(match))
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Flat ``name{label="v",...}`` -> value mapping (JSON export)."""
        out: Dict[str, float] = {}
        for name, labels, value, _kind in self.samples():
            if labels:
                rendered = ",".join(
                    f'{k}="{v}"' for k, v in sorted(labels.items()))
                out[f"{name}{{{rendered}}}"] = value
            else:
                out[name] = value
        return out
