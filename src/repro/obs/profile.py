"""EXPLAIN-ANALYZE-style per-operator profile of one (finished or
resident) topology run.

Combines the cluster's :class:`~repro.storm.metrics.TopologyMetrics`
counters (rows, batches, skew -- always available) with an
:class:`~repro.obs.observer.Observer`'s latency histograms and trace
counts (available when the run executed with ``observe='metrics'`` or
``'trace'``).  Rendered as plain text, one row per component in
topological order, with per-task row counts so imbalance is visible at
a glance.
"""

from __future__ import annotations

from typing import List, Optional

_HEADERS = ("operator", "tasks", "batches", "rows in", "rows out",
            "rows/task", "p50 ms", "p95 ms", "p99 ms", "skew")


def _per_task(values) -> str:
    values = list(values)
    if len(values) > 8:
        shown = "/".join(str(v) for v in values[:8])
        return f"{shown}/…({len(values)} tasks)"
    return "/".join(str(v) for v in values)


def _format_rows(rows: List[List[str]]) -> str:
    widths = [max(len(_HEADERS[i]), *(len(row[i]) for row in rows))
              if rows else len(_HEADERS[i]) for i in range(len(_HEADERS))]
    def line(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    out = [line(_HEADERS), line(["-" * width for width in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def profile_report(topology, metrics, observer=None,
                   title: Optional[str] = None) -> str:
    """The profile text for one topology run."""
    rows: List[List[str]] = []
    for name in topology.topological_order():
        spec = topology.components[name]
        is_spout = spec.is_spout
        received = metrics.received.get(name, ())
        emitted = metrics.emitted.get(name, ())
        batches = sum(metrics.batches.get(name, ()))
        row = [
            name,
            str(spec.parallelism),
            str(batches),
            "-" if is_spout else str(sum(received)),
            str(sum(emitted)),
            _per_task(emitted if is_spout else received),
        ]
        if observer is not None:
            hist = observer.registry.merged_histogram(
                "operator_batch_seconds", component=name)
            if hist.count:
                for quantile in (0.50, 0.95, 0.99):
                    row.append(f"{hist.percentile(quantile) * 1000:.3f}")
            else:
                row.extend(["-", "-", "-"])
        else:
            row.extend(["-", "-", "-"])
        skew = metrics.skew_degree(name)
        row.append(f"{skew:.2f}" if not is_spout and sum(received) else "-")
        rows.append(row)
    lines = []
    if title:
        lines.append(title)
    lines.append(_format_rows(rows))
    footer = []
    if metrics.elapsed:
        footer.append(f"elapsed: {metrics.elapsed:.3f}s")
    footer.append(metrics.path_summary())
    if observer is None:
        footer.append(
            "latencies unavailable: run with "
            "ExecutionOptions(observe='metrics') or 'trace'")
    elif observer.trace:
        footer.append(
            f"traces: {len(observer.traces.trace_ids())} recorded "
            f"({len(observer.traces)} spans, "
            f"{observer.traces.dropped} dropped)")
    lines.append("; ".join(footer))
    return "\n".join(lines)
