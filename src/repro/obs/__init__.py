"""repro.obs: the unified observability layer.

One registry for typed instruments and export-time collectors
(:mod:`repro.obs.registry`), batch-level tracing with deterministic
trace ids across executors (:mod:`repro.obs.tracing`), the per-run
:class:`Observer` / worker-side :class:`WorkerObs` pair threaded
through every dataplane (:mod:`repro.obs.observer`), Prometheus text
render/parse (:mod:`repro.obs.prometheus`), and the EXPLAIN-ANALYZE
profile renderer (:mod:`repro.obs.profile`).

Controlled by ``ExecutionOptions(observe=...)``: ``'off'`` (default;
no observer exists and hot paths keep their exact prior shape),
``'metrics'`` (histograms + counters + gauges), ``'trace'`` (metrics
plus span records per micro-batch hop).
"""

from repro.obs.observer import OBSERVE_LEVELS, Observer, WorkerObs
from repro.obs.profile import profile_report
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import SpanContext, TraceBuffer, make_span

__all__ = [
    "OBSERVE_LEVELS",
    "Observer",
    "WorkerObs",
    "profile_report",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanContext",
    "TraceBuffer",
    "make_span",
]
