"""Prometheus text exposition: render samples, and parse them back.

The renderer emits the v0.0.4 text format (``# TYPE`` per family,
``name{label="value"} number`` per sample); the parser inverts it
exactly, which gives the test suite a true round-trip check and gives
REPL/debug users a dependency-free scrape reader.  Only what the
registry produces is supported -- no exemplars, no timestamps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.obs.registry import Sample

#: a parsed scrape: (name, sorted label pairs) -> value
Parsed = Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]

_ESCAPES = (("\\", "\\\\"), ("\n", "\\n"), ('"', '\\"'))


def _escape(value: str) -> str:
    for char, escaped in _ESCAPES:
        value = value.replace(char, escaped)
    return value


def _unescape(value: str) -> str:
    for char, escaped in reversed(_ESCAPES):
        value = value.replace(escaped, char)
    return value


def _family(name: str, kind: str) -> str:
    """The metric family a sample line belongs to (histogram samples
    ``x_bucket``/``x_sum``/``x_count`` all belong to family ``x``)."""
    if kind == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
    return name


def render(samples: Iterable[Sample]) -> str:
    """Samples -> Prometheus text, one ``# TYPE`` line per family."""
    lines: List[str] = []
    typed: set = set()
    for name, labels, value, kind in samples:
        family = _family(name, kind)
        if family not in typed:
            typed.add(family)
            lines.append(f"# TYPE {family} {kind}")
        if labels:
            rendered = ",".join(
                f'{key}="{_escape(str(val))}"'
                for key, val in sorted(labels.items()))
            lines.append(f"{name}{{{rendered}}} {value!r}")
        else:
            lines.append(f"{name} {value!r}")
    return "\n".join(lines) + "\n"


def parse(text: str) -> Parsed:
    """Prometheus text -> ``{(name, sorted labels): value}``.

    Comments and blank lines are skipped; a malformed sample line
    raises ``ValueError`` with the offending line.
    """
    out: Parsed = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, value = _parse_sample(line)
        out[(name, labels)] = value
    return out


def _parse_sample(line: str) -> Tuple[str, Tuple[Tuple[str, str], ...], float]:
    if "{" in line:
        name, rest = line.split("{", 1)
        body, tail = _split_label_body(rest)
        labels = tuple(sorted(_parse_labels(body)))
        value_text = tail.strip()
    else:
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"malformed sample line: {line!r}")
        name, value_text = parts
        labels = ()
    return name.strip(), labels, float(value_text)


def _split_label_body(rest: str) -> Tuple[str, str]:
    """Split ``k="v",...} value`` at the closing brace, respecting
    escaped quotes inside label values."""
    in_quotes = False
    escaped = False
    for index, char in enumerate(rest):
        if escaped:
            escaped = False
        elif char == "\\":
            escaped = True
        elif char == '"':
            in_quotes = not in_quotes
        elif char == "}" and not in_quotes:
            return rest[:index], rest[index + 1:]
    raise ValueError(f"unterminated label set: {{{rest!r}")


def _parse_labels(body: str) -> List[Tuple[str, str]]:
    labels: List[Tuple[str, str]] = []
    index = 0
    while index < len(body):
        equals = body.index("=", index)
        key = body[index:equals].strip().lstrip(",").strip()
        if body[equals + 1] != '"':
            raise ValueError(f"unquoted label value in: {body!r}")
        end = equals + 2
        escaped = False
        while end < len(body):
            char = body[end]
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                break
            end += 1
        else:
            raise ValueError(f"unterminated label value in: {body!r}")
        labels.append((key, _unescape(body[equals + 2:end])))
        index = end + 1
    return labels
