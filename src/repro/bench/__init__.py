"""Local throughput benchmarking: ``python -m repro.bench``.

Reproduces the CI bench job's numbers on your machine: runs the
CPU-bound multi-way join workload through the ``inline`` and
``processes`` execution backends and prints a speedup table, so
contributors can sanity-check a perf change without waiting for CI.

The workload is the paper's running example R(x,y) >< S(y,z) >< T(z,t)
with a final grouped aggregation: the joiner tasks carry almost all of
the compute (hypercube routing, index maintenance, delta joins), the
aggregation keeps the sink traffic tiny, so the process backend's
speedup measures real scale-out of join work across cores rather than
serialization throughput.
"""

from __future__ import annotations

import argparse
import os
import random
import time
from typing import List, Optional, Tuple

from repro.engine import (
    AggComponent,
    JoinComponent,
    PhysicalPlan,
    SourceComponent,
    count,
    run_plan,
)

DEFAULT_ROWS = 4000
DEFAULT_MACHINES = 8
DEFAULT_BATCH_SIZE = 512
DEFAULT_PARALLELISM = 4
DEFAULT_REPEATS = 3
#: group-by key domain of the final aggregation (keeps sink traffic tiny)
KEY_DOMAIN = 64


def multiway_join_plan(n_rows: int = DEFAULT_ROWS,
                       machines: int = DEFAULT_MACHINES,
                       seed: int = 7) -> PhysicalPlan:
    """The CPU-bound R-S-T chain join + aggregation used by the benchmarks.

    Key domains of ``n/2`` give every probe a small expected match count,
    so the joiners do real index work per tuple; ``output_positions``
    projects the join output to one column and the grouped count keeps
    the result (and the cross-worker traffic behind it) small.
    """
    rng = random.Random(seed)
    from repro.core.predicates import EquiCondition, JoinSpec, RelationInfo
    from repro.core.schema import Relation, Schema

    n = n_rows
    R = Relation("R", Schema.of("x", "y"),
                 [(rng.randrange(n), rng.randrange(n // 2)) for _ in range(n)])
    S = Relation("S", Schema.of("y", "z"),
                 [(rng.randrange(n // 2), rng.randrange(n // 2))
                  for _ in range(n)])
    T = Relation("T", Schema.of("z", "t"),
                 [(rng.randrange(n // 2), rng.randrange(KEY_DOMAIN))
                  for _ in range(n)])
    spec = JoinSpec(
        [RelationInfo("R", R.schema, n), RelationInfo("S", S.schema, n),
         RelationInfo("T", T.schema, n)],
        [EquiCondition(("R", "y"), ("S", "y")),
         EquiCondition(("S", "z"), ("T", "z"))],
    )
    return PhysicalPlan(
        sources=[SourceComponent("R", R), SourceComponent("S", S),
                 SourceComponent("T", T)],
        joins=[JoinComponent("J", spec, machines=machines,
                             output_positions=[5])],  # T.t only
        aggregation=AggComponent("agg", group_positions=[0],
                                 aggregates=[count()], parallelism=4,
                                 key_domain=list(range(KEY_DOMAIN))),
    )


def measure_backend(executor: str, parallelism: Optional[int] = None,
                    batch_size: int = DEFAULT_BATCH_SIZE,
                    n_rows: int = DEFAULT_ROWS,
                    machines: int = DEFAULT_MACHINES,
                    repeats: int = DEFAULT_REPEATS,
                    columnar: Optional[bool] = None,
                    observe: Optional[str] = None):
    """Best-of-``repeats`` runtime (seconds), the sorted result rows, and
    the last run's :class:`~repro.storm.metrics.TopologyMetrics` (path
    counters + per-component throughput).  ``observe`` runs the workload
    under the observability layer (``"metrics"`` or ``"trace"``) so its
    overhead can be priced against the unobserved row."""
    from repro.core.options import ExecutionOptions

    options = ExecutionOptions(observe=observe) if observe else None
    best = float("inf")
    results: list = []
    metrics = None
    for _ in range(repeats):
        plan = multiway_join_plan(n_rows=n_rows, machines=machines)
        start = time.perf_counter()
        result = run_plan(plan, batch_size=batch_size, executor=executor,
                          parallelism=parallelism, columnar=columnar,
                          options=options)
        best = min(best, time.perf_counter() - start)
        results = sorted(result.results)
        metrics = result.metrics
    return best, results, metrics


def export_sample_trace(path: str, n_rows: int = 500,
                        machines: int = 4,
                        batch_size: int = 64) -> int:
    """Run the workload once at ``observe='trace'`` and write the trace
    buffer's JSON export to ``path`` (the CI bench job uploads this as
    an artifact); returns the number of spans exported."""
    from repro.core.options import ExecutionOptions

    plan = multiway_join_plan(n_rows=n_rows, machines=machines)
    result = run_plan(plan, options=ExecutionOptions(
        batch_size=batch_size, observe="trace"))
    with open(path, "w") as handle:
        handle.write(result.observer.traces.to_json())
        handle.write("\n")
    return len(result.observer.traces)


def measure_streaming(batch_size: int = DEFAULT_BATCH_SIZE,
                      n_rows: int = DEFAULT_ROWS,
                      machines: int = DEFAULT_MACHINES,
                      repeats: int = DEFAULT_REPEATS) -> Tuple[float, list]:
    """The same workload through the continuous runtime.

    Every input relation is replayed as a push source and the resident
    topology emits live result deltas; the final snapshot must equal the
    batch engines' answer, so the row doubles as an equivalence check.
    Measures the cost of running *online* (delta maintenance + watermark
    bookkeeping) against the finite inline loop."""
    from repro.streaming import stream_plan

    best = float("inf")
    results: list = []
    for _ in range(repeats):
        plan = multiway_join_plan(n_rows=n_rows, machines=machines)
        start = time.perf_counter()
        query = stream_plan(plan, batch_size=batch_size).run()
        best = min(best, time.perf_counter() - start)
        results = query.snapshot()
    return best, results


def measure_serving(batch_size: int = DEFAULT_BATCH_SIZE,
                    n_rows: int = DEFAULT_ROWS,
                    machines: int = DEFAULT_MACHINES,
                    repeats: int = DEFAULT_REPEATS,
                    subscribers: int = 8) -> Tuple[float, list]:
    """The same workload through the multi-tenant serving layer.

    ``subscribers`` sessions submit the identical plan to a
    :class:`~repro.serving.QueryBroker`; the broker dedupes them onto
    one resident topology and fans the delta feed out to every
    subscriber ring.  The snapshot must still equal the batch answer,
    and the runtime measures the full serving path (admission +
    fingerprinting + fan-out) against the bare streaming row."""
    from repro.core.options import ExecutionOptions
    from repro.serving import QueryBroker

    best = float("inf")
    results: list = []
    for _ in range(repeats):
        plan = multiway_join_plan(n_rows=n_rows, machines=machines)
        broker = QueryBroker(max_topologies=1,
                             max_subscribers_per_topology=subscribers)
        options = ExecutionOptions(batch_size=batch_size)
        start = time.perf_counter()
        subscriptions = [
            broker.subscribe_plan(plan, options=options, tenant=f"tenant{i}")
            for i in range(subscribers)
        ]
        for _ in subscriptions[-1]:  # drain one ring to exhaustion
            pass
        best = min(best, time.perf_counter() - start)
        results = subscriptions[-1].snapshot()
        broker.close()
    return best, results


def speedup_table(timings: List[Tuple[str, float]], n_rows: int,
                  machines: int) -> str:
    """ASCII table of runtime / throughput / speedup vs the first entry."""
    baseline = timings[0][1]
    total_rows = 3 * n_rows
    header = f"{'backend':<14}{'runtime (ms)':>14}{'rows/sec':>14}{'speedup':>10}"
    lines = [
        f"Multi-way join throughput ({n_rows} rows/relation, "
        f"{machines} joiners)",
        header,
        "-" * len(header),
    ]
    for label, seconds in timings:
        lines.append(
            f"{label:<14}{seconds * 1000:>14.1f}"
            f"{total_rows / seconds:>14,.0f}"
            f"{baseline / seconds:>9.2f}x"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the throughput benchmarks locally and print an "
                    "inline vs processes speedup table (the CI bench "
                    "job's numbers, reproduced on this machine).",
    )
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS,
                        help="rows per input relation (default %(default)s)")
    parser.add_argument("--machines", type=int, default=DEFAULT_MACHINES,
                        help="joiner parallelism (default %(default)s)")
    parser.add_argument("--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
                        help="micro-batch size (default %(default)s)")
    parser.add_argument("--parallelism", type=int, default=DEFAULT_PARALLELISM,
                        help="parallel workers (default %(default)s)")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="best-of repeats per backend (default %(default)s)")
    parser.add_argument("--threads", action="store_true",
                        help="also measure the threads backend (GIL-bound "
                             "for this pure-Python workload)")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="also run once at observe='trace' and write "
                             "the trace buffer's JSON export to FILE")
    args = parser.parse_args(argv)

    # inline is measured on both paths: row (columnar=False) first as the
    # speedup baseline, then columnar -- their result multisets must match
    backends: List[Tuple[str, Optional[int], Optional[bool]]] = [
        ("inline/row", None, False),
        ("inline/col", None, True),
    ]
    if args.threads:
        backends.append(("threads", args.parallelism, None))
    backends.append(("processes", args.parallelism, None))

    timings: List[Tuple[str, float]] = []
    paths: List[Tuple[str, str]] = []
    reference: Optional[list] = None
    for label, parallelism, columnar in backends:
        executor = label.split("/")[0].split(" ")[0]
        if parallelism is not None:
            label = f"{label} x{parallelism}"
        seconds, results, metrics = measure_backend(
            executor, parallelism=parallelism, batch_size=args.batch_size,
            n_rows=args.rows, machines=args.machines, repeats=args.repeats,
            columnar=columnar)
        if reference is None:
            reference = results
        elif results != reference:
            print(f"ERROR: {label} results differ from inline")
            return 1
        timings.append((label, seconds))
        if metrics is not None:
            joiner_rate = metrics.rows_per_second("J")
            paths.append((label, f"{metrics.path_summary()}; "
                                 f"joiner input {joiner_rate:,.0f} rows/sec"))

    seconds, results = measure_streaming(
        batch_size=args.batch_size, n_rows=args.rows,
        machines=args.machines, repeats=args.repeats)
    if results != reference:
        print("ERROR: streaming snapshot differs from inline")
        return 1
    timings.append(("streaming", seconds))

    seconds, results = measure_serving(
        batch_size=args.batch_size, n_rows=args.rows,
        machines=args.machines, repeats=args.repeats)
    if results != reference:
        print("ERROR: serving snapshot differs from inline")
        return 1
    timings.append(("serving x8", seconds))

    # observability overhead vs the unobserved inline/row baseline
    obs_overheads: List[Tuple[str, float]] = []
    for level in ("metrics", "trace"):
        seconds, results, _metrics = measure_backend(
            "inline", batch_size=args.batch_size, n_rows=args.rows,
            machines=args.machines, repeats=args.repeats, columnar=False,
            observe=level)
        if results != reference:
            print(f"ERROR: observe={level} results differ from inline")
            return 1
        timings.append((f"obs={level}", seconds))
        obs_overheads.append((level, seconds))

    print(speedup_table(timings, args.rows, args.machines))
    print()
    row_seconds = timings[0][1]
    print("Observability overhead (vs inline/row): " + ", ".join(
        f"{level} {seconds / row_seconds - 1.0:+.1%}"
        for level, seconds in obs_overheads))
    print()
    print("Execution paths (which kernel actually ran):")
    for label, summary in paths:
        print(f"  {label:<14}{summary}")
    if args.trace_out:
        spans = export_sample_trace(args.trace_out)
        print(f"wrote {spans} spans (observe='trace' sample run) to "
              f"{args.trace_out}")
    cores = os.cpu_count() or 1
    if cores < 2:
        print(f"(single-core machine: the process backend cannot beat "
              f"inline here; CI runs this on {DEFAULT_PARALLELISM}+ cores)")
    return 0
