"""An in-process simulator of the Storm substrate Squall runs on.

Storm executes *topologies*: graphs of spouts (data sources) and bolts
(computation).  An edge is a *stream grouping* -- the partitioning of a
stream among the tasks of the downstream bolt.  Squall maps every physical
query-plan component to a spout or bolt and builds its partitioning schemes
as stream groupings (paper section 2).

The simulator preserves exactly what the paper's results depend on: which
task receives which tuples (load, replication, skew degree) and how many
tuples cross the network, while running in a single process.
"""

from repro.storm.topology import (
    Bolt,
    ListSpout,
    Spout,
    Topology,
    TopologyBuilder,
    TopologyError,
)
from repro.storm.groupings import (
    AllGrouping,
    CustomGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    HypercubeGrouping,
    KeyMappedGrouping,
    ShuffleGrouping,
)
from repro.storm.cluster import LocalCluster
from repro.storm.executor import (
    EXECUTOR_NAMES,
    ExecutorError,
    ProcessExecutor,
    Router,
    StagedExecutor,
    ThreadExecutor,
)
from repro.storm.metrics import TopologyMetrics

__all__ = [
    "EXECUTOR_NAMES",
    "ExecutorError",
    "ProcessExecutor",
    "Router",
    "StagedExecutor",
    "ThreadExecutor",
    "Bolt",
    "ListSpout",
    "Spout",
    "Topology",
    "TopologyBuilder",
    "TopologyError",
    "Grouping",
    "ShuffleGrouping",
    "FieldsGrouping",
    "AllGrouping",
    "GlobalGrouping",
    "CustomGrouping",
    "HypercubeGrouping",
    "KeyMappedGrouping",
    "LocalCluster",
    "TopologyMetrics",
]
