"""Fault tolerance: peer recovery, checkpoint planning, fault injection.

Two recovery mechanisms, per the paper (section 5):

- **Peer recovery**: if the partitioning scheme replicates tuples, a
  failed node recovers its state from peers instead of a disk checkpoint
  -- network accesses are several times faster than disk.  A peer of
  machine ``m`` for relation ``R`` is any machine that agrees with ``m``
  on every dimension ``R`` owns: those machines hold identical replicas
  of ``R``'s slice.
- **Checkpointing**: when the scheme replicates only part of the
  operator state, Squall checkpoints exactly the non-replicated part --
  :func:`checkpoint_plan` computes which relations need it, and
  :func:`recovery_strategy` names the mechanism per relation.  The
  streaming ``processes`` executor implements the checkpoint side end to
  end (:mod:`repro.checkpoint`, ``docs/FAULT_TOLERANCE.md``).

:class:`FaultInjector` is the test harness for the checkpoint path: it
arms deterministic worker crashes (a resident worker SIGKILLs itself
after N executed micro-batches), resolved against the supervisor's task
assignment so a test can kill exactly the worker owning a chosen
operator partition.
"""

from __future__ import annotations

import signal as _signal
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.partitioning.hypercube import HypercubePartitioner


@dataclass
class RecoveryReport:
    """Outcome of recovering one failed machine."""

    machine: int
    recovered: Dict[str, List[tuple]]
    peer_used: Dict[str, int]
    #: relations with no peer replica (must come from a checkpoint)
    unrecoverable: List[str] = field(default_factory=list)
    #: tuples moved over the network during recovery
    network_tuples: int = 0

    @property
    def fully_recovered(self) -> bool:
        return not self.unrecoverable


class ReplicatedStateTracker:
    """Tracks which tuples live on which machine, per relation.

    The engine's joiner tasks own the real state; this tracker mirrors the
    placement decisions of a :class:`HypercubePartitioner` so recovery can
    be exercised and verified deterministically.
    """

    def __init__(self, partitioner: HypercubePartitioner):
        self.partitioner = partitioner
        self.state: Dict[int, Dict[str, List[tuple]]] = {
            machine: {} for machine in range(partitioner.n_machines)
        }

    def insert(self, rel_name: str, row: tuple):
        for machine in self.partitioner.destinations(rel_name, row):
            self.state[machine].setdefault(rel_name, []).append(row)

    def slice_of(self, machine: int, rel_name: str) -> List[tuple]:
        return list(self.state[machine].get(rel_name, ()))

    def fail_and_recover(self, machine: int) -> RecoveryReport:
        """Simulate failure of ``machine`` and rebuild its state from peers."""
        lost = self.state[machine]
        report = RecoveryReport(machine=machine, recovered={}, peer_used={})
        for rel_name in sorted(lost):
            peers = self.partitioner.peer_machines(machine, rel_name)
            source = None
            for peer in peers:
                peer_slice = self.state[peer].get(rel_name, [])
                if sorted(peer_slice) == sorted(lost[rel_name]):
                    source = peer
                    break
            if source is None:
                report.unrecoverable.append(rel_name)
                continue
            recovered = self.slice_of(source, rel_name)
            report.recovered[rel_name] = recovered
            report.peer_used[rel_name] = source
            report.network_tuples += len(recovered)
        return report


def checkpoint_plan(partitioner: HypercubePartitioner) -> Dict[str, bool]:
    """Which relations need explicit checkpointing (no peer replicas).

    A relation owns every dimension exactly when its replication factor is
    1 -- then no other machine holds its slice and the scheme alone cannot
    recover it.  Squall replicates only those parts of the operator state
    (section 5, 'Fault tolerance').
    """
    plan = {}
    for rel_name in partitioner.relation_names():
        plan[rel_name] = partitioner.expected_replication(rel_name) == 1
    return plan


def recovery_strategy(partitioner: HypercubePartitioner) -> Dict[str, str]:
    """Recovery mechanism per relation: ``'peer'`` or ``'checkpoint'``.

    The decision rule of the paper's section 5, spelled out: a relation
    whose scheme replication factor exceeds 1 has identical replicas on
    peer machines -- recover it over the network (:class:`ReplicatedState\
Tracker.fail_and_recover`).  A relation owning every dimension has no
    replica anywhere; only a checkpoint (:mod:`repro.checkpoint`) can
    bring it back.
    """
    return {
        rel_name: "checkpoint" if needs_checkpoint else "peer"
        for rel_name, needs_checkpoint in checkpoint_plan(partitioner).items()
    }


@dataclass(frozen=True)
class WorkerKill:
    """One armed crash: SIGKILL the worker owning a partition.

    ``component``/``task_index`` pick the operator partition whose
    *owning resident worker* is the victim; ``after_batches`` is the
    number of micro-batches that worker executes (across all its owned
    tasks) before killing itself -- a deterministic kill point in the
    stream rather than a racy timer.
    """

    component: str
    task_index: int = 0
    after_batches: int = 1
    signal: int = _signal.SIGKILL


class FaultInjector:
    """Deterministic worker-crash injection for the resident executor.

    Collects :class:`WorkerKill` specs and resolves them against a
    supervisor's task assignment (``{(component, task_index): worker_id}``)
    into the per-worker kill plan the forked workers arm at startup.
    A spec naming a coordinator-owned partition (a delta sink, a source
    pump) is rejected: those live in the supervising process, which is
    outside the worker failure domain this harness exercises.
    """

    def __init__(self, kills: List[WorkerKill] = ()):
        self.kills: List[WorkerKill] = list(kills)

    def kill_worker_of(self, component: str, task_index: int = 0,
                       after_batches: int = 1) -> "FaultInjector":
        """Arm one kill; returns self for chaining."""
        self.kills.append(WorkerKill(component, task_index, after_batches))
        return self

    def kill_plan(self, assignment: Dict[Tuple[str, int], int]
                  ) -> Dict[int, List[Tuple[int, int]]]:
        """Resolve the armed specs to ``{worker_id: [(after, signal)]}``."""
        plan: Dict[int, List[Tuple[int, int]]] = {}
        for kill in self.kills:
            key = (kill.component, kill.task_index)
            owner = assignment.get(key)
            if owner is None:
                raise ValueError(
                    f"cannot arm a kill for {key}: not a worker-owned "
                    f"partition (sinks and sources live in the "
                    f"coordinator; pick a join or aggregation task)"
                )
            plan.setdefault(owner, []).append(
                (kill.after_batches, kill.signal))
        return plan
