"""Fault tolerance through scheme-aware peer recovery (paper section 5).

If the partitioning scheme replicates tuples, a failed node can recover
its state from peers instead of a disk checkpoint -- network accesses are
several times faster than disk.  A peer of machine ``m`` for relation
``R`` is any machine that agrees with ``m`` on every dimension ``R`` owns:
those machines hold identical replicas of ``R``'s slice.

When the scheme replicates only part of the operator state, Squall
checkpoints exactly the non-replicated part -- :func:`checkpoint_plan`
computes which relations need it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.partitioning.hypercube import HypercubePartitioner


@dataclass
class RecoveryReport:
    """Outcome of recovering one failed machine."""

    machine: int
    recovered: Dict[str, List[tuple]]
    peer_used: Dict[str, int]
    #: relations with no peer replica (must come from a checkpoint)
    unrecoverable: List[str] = field(default_factory=list)
    #: tuples moved over the network during recovery
    network_tuples: int = 0

    @property
    def fully_recovered(self) -> bool:
        return not self.unrecoverable


class ReplicatedStateTracker:
    """Tracks which tuples live on which machine, per relation.

    The engine's joiner tasks own the real state; this tracker mirrors the
    placement decisions of a :class:`HypercubePartitioner` so recovery can
    be exercised and verified deterministically.
    """

    def __init__(self, partitioner: HypercubePartitioner):
        self.partitioner = partitioner
        self.state: Dict[int, Dict[str, List[tuple]]] = {
            machine: {} for machine in range(partitioner.n_machines)
        }

    def insert(self, rel_name: str, row: tuple):
        for machine in self.partitioner.destinations(rel_name, row):
            self.state[machine].setdefault(rel_name, []).append(row)

    def slice_of(self, machine: int, rel_name: str) -> List[tuple]:
        return list(self.state[machine].get(rel_name, ()))

    def fail_and_recover(self, machine: int) -> RecoveryReport:
        """Simulate failure of ``machine`` and rebuild its state from peers."""
        lost = self.state[machine]
        report = RecoveryReport(machine=machine, recovered={}, peer_used={})
        for rel_name in sorted(lost):
            peers = self.partitioner.peer_machines(machine, rel_name)
            source = None
            for peer in peers:
                peer_slice = self.state[peer].get(rel_name, [])
                if sorted(peer_slice) == sorted(lost[rel_name]):
                    source = peer
                    break
            if source is None:
                report.unrecoverable.append(rel_name)
                continue
            recovered = self.slice_of(source, rel_name)
            report.recovered[rel_name] = recovered
            report.peer_used[rel_name] = source
            report.network_tuples += len(recovered)
        return report


def checkpoint_plan(partitioner: HypercubePartitioner) -> Dict[str, bool]:
    """Which relations need explicit checkpointing (no peer replicas).

    A relation owns every dimension exactly when its replication factor is
    1 -- then no other machine holds its slice and the scheme alone cannot
    recover it.  Squall replicates only those parts of the operator state
    (section 5, 'Fault tolerance').
    """
    plan = {}
    for rel_name in partitioner.relation_names():
        plan[rel_name] = partitioner.expected_replication(rel_name) == 1
    return plan
