"""Topology execution metrics: the monitors of the paper's demo (section 6).

- **Replication factor** of a component: its number of input tuples divided
  by the total number of tuples produced by the immediate upstream
  components (the online counterpart of the MapReduce replication rate).
- **Skew degree**: largest partition size divided by the average partition
  size.
- **Intermediate network factor** of a query plan: the sum of all component
  tasks' input and output divided by the sum of the query input and query
  output -- the amount of intermediate network shuffling.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple


@dataclass
class TopologyMetrics:
    """Per-task and per-edge counters collected by the LocalCluster."""

    received: Dict[str, List[int]] = field(default_factory=dict)
    emitted: Dict[str, List[int]] = field(default_factory=dict)
    edge_transfers: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: micro-batches handled per task: spout pulls and bolt deliveries.
    #: The load-balance signal of the parallel backends -- per-task *tuple*
    #: counts alone cannot tell an idle spout task from a starved one.
    batches: Dict[str, List[int]] = field(default_factory=dict)
    #: execution-path counters: rows/batches delivered to bolts as columnar
    #: ColumnBatch payloads vs. plain row lists -- so a bench run can prove
    #: which kernel actually ran instead of inferring it from the knobs
    columnar_rows: int = 0
    columnar_batches: int = 0
    row_rows: int = 0
    row_batches: int = 0
    #: wall-clock seconds of the run that produced these counters (set by
    #: LocalCluster.run); basis for the per-component rows/sec monitor
    elapsed: float = 0.0

    def register(self, component: str, parallelism: int):
        self.received[component] = [0] * parallelism
        self.emitted[component] = [0] * parallelism
        self.batches[component] = [0] * parallelism

    def record_emit(self, component: str, task: int, count: int = 1):
        self.emitted[component][task] += count

    def record_receive(self, source: str, target: str, task: int, count: int = 1):
        self.received[target][task] += count
        key = (source, target)
        self.edge_transfers[key] = self.edge_transfers.get(key, 0) + count

    def record_batch(self, component: str, task: int, count: int = 1):
        """One micro-batch pulled from a spout task or delivered to a bolt
        task.  Spout tasks have no ``received`` counters, so this is the
        only per-task activity signal they get."""
        self.batches[component][task] += count

    def batch_counts(self, component: str) -> List[int]:
        return list(self.batches.get(component, ()))

    def record_path(self, columnar: bool, rows: int):
        """One bolt delivery took the columnar (or row) execution path."""
        if columnar:
            self.columnar_rows += rows
            self.columnar_batches += 1
        else:
            self.row_rows += rows
            self.row_batches += 1

    def merge_path_counts(self, columnar_rows: int, columnar_batches: int,
                          row_rows: int, row_batches: int):
        """Fold in path counters collected by a parallel worker."""
        self.columnar_rows += columnar_rows
        self.columnar_batches += columnar_batches
        self.row_rows += row_rows
        self.row_batches += row_batches

    def rows_per_second(self, component: str) -> float:
        """Input rows of ``component`` over the run's wall-clock time."""
        if not self.elapsed:
            return 0.0
        return self.component_input(component) / self.elapsed

    def path_summary(self) -> str:
        """Which execution path the run's bolt deliveries actually took."""
        total = self.columnar_rows + self.row_rows
        if not total:
            return "no bolt deliveries"
        share = 100.0 * self.columnar_rows / total
        return (f"columnar {self.columnar_rows}/{total} rows ({share:.0f}%) "
                f"in {self.columnar_batches} batches; "
                f"row {self.row_rows} rows in {self.row_batches} batches")

    # -- component-level monitors -----------------------------------------

    def component_input(self, component: str) -> int:
        return sum(self.received.get(component, ()))

    def component_output(self, component: str) -> int:
        return sum(self.emitted.get(component, ()))

    def max_load(self, component: str) -> int:
        loads = self.received.get(component, ())
        return max(loads) if loads else 0

    def avg_load(self, component: str) -> float:
        loads = self.received.get(component, ())
        return sum(loads) / len(loads) if loads else 0.0

    def skew_degree(self, component: str) -> float:
        """Largest partition size over average partition size."""
        avg = self.avg_load(component)
        return self.max_load(component) / avg if avg else 0.0

    def replication_factor(self, component: str, upstream: List[str]) -> float:
        """Input tuples of ``component`` / output tuples of its upstreams."""
        produced = sum(self.component_output(up) for up in upstream)
        if produced == 0:
            return 0.0
        return self.component_input(component) / produced

    # -- plan-level monitors ------------------------------------------------

    def total_network_tuples(self) -> int:
        return sum(self.edge_transfers.values())

    def intermediate_network_factor(self, query_input: int, query_output: int) -> float:
        """(sum of task inputs and outputs) / (query input + query output)."""
        denominator = query_input + query_output
        if denominator == 0:
            return 0.0
        task_io = sum(sum(v) for v in self.received.values()) + sum(
            sum(v) for v in self.emitted.values()
        )
        return task_io / denominator

    def summary(self) -> str:
        lines = []
        for component in sorted(self.received):
            lines.append(
                f"{component}: in={self.component_input(component)} "
                f"out={self.component_output(component)} "
                f"skew={self.skew_degree(component):.2f}"
            )
        lines.append(f"network tuples: {self.total_network_tuples()}")
        return "\n".join(lines)

    def collect(self, labels: Optional[Dict[str, str]] = None) -> List[tuple]:
        """Registry-collector view: export-time samples, zero cost on the
        recording path (see :class:`repro.obs.registry.MetricsRegistry`)."""
        base = dict(labels or {})
        out = []
        for component in sorted(self.batches):
            for task, count in enumerate(self.received.get(component, ())):
                out.append(("topology_rows_received_total",
                            {**base, "component": component,
                             "task": str(task)}, float(count), "counter"))
            for task, count in enumerate(self.emitted.get(component, ())):
                out.append(("topology_rows_emitted_total",
                            {**base, "component": component,
                             "task": str(task)}, float(count), "counter"))
            for task, count in enumerate(self.batches.get(component, ())):
                out.append(("topology_batches_total",
                            {**base, "component": component,
                             "task": str(task)}, float(count), "counter"))
            if self.component_input(component):
                out.append(("topology_skew_degree",
                            {**base, "component": component},
                            self.skew_degree(component), "gauge"))
        out.append(("topology_network_tuples_total", dict(base),
                    float(self.total_network_tuples()), "counter"))
        return out


class StreamMetrics:
    """Live progress monitors of a *continuous* run (repro.streaming).

    A long-lived query has no final RunResult to inspect, so the
    streaming cluster keeps a rolling view instead: event throughput over
    a trailing wall-clock window, the current event-time watermark, and
    the **event-time lag** (newest event timestamp seen minus the
    watermark -- how far window results trail the stream's own clock).
    All methods are thread-safe; the threads executor's pump and workers
    record concurrently.
    """

    #: squall-lint lock-discipline contract: the rolling counters only
    #: move under the metrics lock (pump thread vs. \watch reader)
    GUARDED_BY = {
        "_events": "_lock",
        "total_events": "_lock",
        "watermark": "_lock",
        "watermark_updated_at": "_lock",
        "max_event_time": "_lock",
    }

    def __init__(self, clock=time.monotonic, horizon: float = 5.0):
        self._clock = clock
        self.horizon = horizon
        self._lock = threading.Lock()
        #: (wall time, count) of recent source polls, pruned to `horizon`
        self._events: Deque[Tuple[float, int]] = deque()
        self.total_events = 0
        self.watermark: Optional[float] = None
        #: wall-clock instant (per `clock`) of the last watermark advance
        self.watermark_updated_at: Optional[float] = None
        self.max_event_time: Optional[float] = None
        self.started_at = clock()

    def record_events(self, count: int, event_time=None):
        """Record ``count`` source rows entering the dataplane."""
        now = self._clock()
        with self._lock:
            self.total_events += count
            self._events.append((now, count))
            self._prune(now)
            if event_time is not None and (
                    self.max_event_time is None
                    or event_time > self.max_event_time):
                self.max_event_time = event_time

    def record_watermark(self, watermark):
        with self._lock:
            if self.watermark is None or watermark > self.watermark:
                self.watermark = watermark
                self.watermark_updated_at = self._clock()

    def _prune(self, now: float):  # squall-lint: holds=_lock
        horizon = now - self.horizon
        events = self._events
        while events and events[0][0] < horizon:
            events.popleft()

    # -- snapshots ---------------------------------------------------------

    def events_per_second(self) -> float:
        """Throughput over the trailing ``horizon`` seconds."""
        now = self._clock()
        with self._lock:
            self._prune(now)
            if not self._events:
                return 0.0
            span = max(now - self._events[0][0], 1e-9)
            return sum(count for _ts, count in self._events) / span

    def watermark_age(self) -> Optional[float]:
        """Wall-clock seconds since the watermark last advanced.

        The serving layer's staleness monitor: a growing age on a live
        topology means window results have stopped moving forward (a
        stalled source, or no event-time at all).  None until the first
        watermark."""
        with self._lock:
            if self.watermark_updated_at is None:
                return None
            return max(0.0, self._clock() - self.watermark_updated_at)

    def event_time_lag(self) -> Optional[float]:
        """Newest event timestamp minus the watermark (event-time units).

        None until both are known.  Zero means window results are fully
        caught up with everything the sources have emitted."""
        with self._lock:
            if self.watermark is None or self.max_event_time is None:
                return None
            return max(0, self.max_event_time - self.watermark)

    def snapshot(self) -> Dict[str, object]:
        """One live progress snapshot (the REPL's \\watch footer).

        The streaming cluster's ``stats_snapshot`` adds a ``deltas``
        entry read off its sinks."""
        # the derived views take the (non-reentrant) lock themselves, so
        # compute them before entering it; the raw counters are then read
        # together rather than torn across a concurrent record_events
        events_per_sec = round(self.events_per_second(), 1)
        event_time_lag = self.event_time_lag()
        with self._lock:
            return {
                "events": self.total_events,
                "events_per_sec": events_per_sec,
                "watermark": self.watermark,
                "event_time_lag": event_time_lag,
                "uptime_sec": round(self._clock() - self.started_at, 3),
            }

    def collect(self, labels: Optional[Dict[str, str]] = None) -> List[tuple]:
        """Registry-collector view of the live stream monitors."""
        base = dict(labels or {})
        snap = self.snapshot()
        out = [
            ("stream_events_total", dict(base),
             float(snap["events"]), "counter"),
            ("stream_events_per_second", dict(base),
             float(snap["events_per_sec"]), "gauge"),
        ]
        if snap["watermark"] is not None:
            out.append(("stream_watermark", dict(base),
                        float(snap["watermark"]), "gauge"))
        if snap["event_time_lag"] is not None:
            out.append(("stream_event_time_lag", dict(base),
                        float(snap["event_time_lag"]), "gauge"))
        age = self.watermark_age()
        if age is not None:
            out.append(("stream_watermark_age_seconds", dict(base),
                        float(age), "gauge"))
        return out


class CheckpointMetrics:
    """Checkpoint and recovery accounting of a resident topology.

    Fed by the streaming ``processes`` coordinator: one record per
    committed epoch (what the snapshot actually cost -- the incremental
    checkpointing assertion surface) and one per completed recovery.
    ``partitions_skipped`` counts partitions whose state hash matched the
    previous manifest, so zero bytes moved for them; a steady-state
    topology where only one partition changes per epoch should show
    ``bytes_persisted`` growing by roughly one partition's blob, not the
    full operator state.  Thread-safe: the serving layer may snapshot
    while the coordinator commits.
    """

    #: squall-lint lock-discipline contract
    GUARDED_BY = {
        "commits": "_lock",
        "last_epoch": "_lock",
        "partitions_persisted": "_lock",
        "partitions_skipped": "_lock",
        "bytes_persisted": "_lock",
        "last_commit_bytes": "_lock",
        "recoveries": "_lock",
        "workers_respawned": "_lock",
        "replayed_entries": "_lock",
        "replayed_rows": "_lock",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self.commits = 0
        self.last_epoch: Optional[int] = None
        self.partitions_persisted = 0
        self.partitions_skipped = 0
        self.bytes_persisted = 0
        #: bytes of the last commit alone (steady-state cost probe)
        self.last_commit_bytes = 0
        self.recoveries = 0
        self.workers_respawned = 0
        self.replayed_entries = 0
        self.replayed_rows = 0

    def record_commit(self, result) -> None:
        """Fold in one :class:`repro.checkpoint.store.CommitResult`."""
        with self._lock:
            self.commits += 1
            self.last_epoch = result.epoch
            self.partitions_persisted += result.persisted
            self.partitions_skipped += result.skipped
            self.bytes_persisted += result.bytes_persisted
            self.last_commit_bytes = result.bytes_persisted

    def record_recovery(self, dead_workers: List[int],
                        replayed_entries: int, replayed_rows: int) -> None:
        """One completed crash recovery (respawn + restore + replay)."""
        with self._lock:
            self.recoveries += 1
            self.workers_respawned += len(dead_workers)
            self.replayed_entries += replayed_entries
            self.replayed_rows += replayed_rows

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "commits": self.commits,
                "last_epoch": self.last_epoch,
                "partitions_persisted": self.partitions_persisted,
                "partitions_skipped": self.partitions_skipped,
                "bytes_persisted": self.bytes_persisted,
                "last_commit_bytes": self.last_commit_bytes,
                "recoveries": self.recoveries,
                "workers_respawned": self.workers_respawned,
                "replayed_entries": self.replayed_entries,
                "replayed_rows": self.replayed_rows,
            }

    def summary(self) -> str:
        snap = self.snapshot()
        return (
            f"checkpoints: {snap['commits']} commits "
            f"(epoch {snap['last_epoch']}), "
            f"{snap['partitions_persisted']} partitions persisted / "
            f"{snap['partitions_skipped']} skipped by hash-diff, "
            f"{snap['bytes_persisted']} bytes; "
            f"recoveries: {snap['recoveries']} "
            f"({snap['workers_respawned']} workers respawned, "
            f"{snap['replayed_rows']} rows replayed)"
        )

    def collect(self, labels: Optional[Dict[str, str]] = None) -> List[tuple]:
        """Registry-collector view of the checkpoint/recovery counters."""
        base = dict(labels or {})
        snap = self.snapshot()
        return [
            (f"checkpoint_{name}_total", dict(base), float(snap[name]),
             "counter")
            for name in ("commits", "partitions_persisted",
                         "partitions_skipped", "bytes_persisted",
                         "recoveries", "workers_respawned",
                         "replayed_entries", "replayed_rows")
        ]


class ServingMetrics:
    """Per-tenant accounting of the multi-tenant serving layer.

    The :class:`~repro.serving.broker.QueryBroker` records every
    admission decision and delivery outcome here, keyed by tenant, so an
    operator can answer "who is being shed?" without touching per-query
    state.  Counters are monotonic -- ``published`` is the number of
    deltas that entered the tenant's subscription rings (a shed
    subscriber's dropped buffer is still counted: the pipeline did the
    work), settled when each seat is released; the live gauges
    (subscriber count, delta lag, watermark age) are read off the
    broker's resident topologies at snapshot time, not stored here.
    Thread-safe: broker calls and sink detach hooks record concurrently.
    """

    _COUNTERS = ("admitted", "refused", "shed", "detached", "published")

    #: squall-lint lock-discipline contract
    GUARDED_BY = {"_tenants": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._tenants: Dict[str, Dict[str, int]] = {}

    def _bucket(self, tenant: str) -> Dict[str, int]:  # squall-lint: holds=_lock
        bucket = self._tenants.get(tenant)
        if bucket is None:
            bucket = self._tenants[tenant] = {
                name: 0 for name in self._COUNTERS}
        return bucket

    def record(self, tenant: str, counter: str, count: int = 1):
        if counter not in self._COUNTERS:
            raise ValueError(
                f"unknown serving counter {counter!r}; "
                f"choose one of {self._COUNTERS}")
        with self._lock:
            self._bucket(tenant)[counter] += count

    def get(self, tenant: str, counter: str) -> int:
        with self._lock:
            return self._tenants.get(tenant, {}).get(counter, 0)

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def snapshot(self, tenant: Optional[str] = None) -> Dict[str, Dict[str, int]]:
        """Counter table ``{tenant: {counter: value}}`` (one tenant or all)."""
        with self._lock:
            if tenant is not None:
                return {tenant: dict(self._tenants.get(
                    tenant, {name: 0 for name in self._COUNTERS}))}
            return {name: dict(bucket)
                    for name, bucket in sorted(self._tenants.items())}

    def summary(self) -> str:
        lines = []
        for tenant, bucket in sorted(self.snapshot().items()):
            parts = " ".join(f"{k}={bucket[k]}" for k in self._COUNTERS)
            lines.append(f"{tenant}: {parts}")
        return "\n".join(lines) or "no tenants"

    def collect(self, labels: Optional[Dict[str, str]] = None) -> List[tuple]:
        """Registry-collector view of the per-tenant counters."""
        base = dict(labels or {})
        return [
            (f"serving_{counter}_total", {**base, "tenant": tenant},
             float(bucket[counter]), "counter")
            for tenant, bucket in sorted(self.snapshot().items())
            for counter in self._COUNTERS
        ]
