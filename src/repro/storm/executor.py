"""Execution backends: shared-nothing parallel workers over micro-batches.

The :class:`~repro.storm.cluster.LocalCluster` runs a topology through one
of three interchangeable backends:

- ``inline`` -- the cluster's own single-threaded loop (the default;
  byte-identical to the seed per-tuple engine at ``batch_size=1``).
- ``threads`` -- staged shared-nothing workers as threads.  Each worker
  owns a disjoint set of tasks and its own routing state; barriers keep
  flush/finish semantics exact.  The GIL serializes pure-Python compute,
  so this backend is mostly useful for I/O-bound spouts and for testing
  the parallel protocol without process overhead.
- ``processes`` -- forked worker processes exchanging *serialized*
  micro-batches over pipes: true shared-nothing scale-out across cores,
  the execution model of the paper's Storm deployment.  Requires the
  ``fork`` start method (Linux/macOS) and pickle-safe rows and task
  state.

Execution is *staged*: components are grouped into topological levels
(every edge goes from a lower to a strictly higher level), and each level
runs as one parallel wave with a barrier after it.  Within a wave every
worker drains or executes only the tasks it owns, routes the emissions
task-locally through its own copy of the stream groupings, and hands the
routed micro-batches back to the coordinator, which delivers them to the
owning workers in later waves.  The barrier guarantees what the inline
loop gets for free: a component's ``finish()`` runs only after every
upstream tuple has been delivered, so snapshot aggregations and
retractions stay correct.

Workers merge deterministically (worker-id order), so a run is
reproducible; result *multisets* and per-component totals are identical
across backends, only the tuple interleaving differs (the operators are
order-insensitive up to the final multiset, exactly as for ``batch_size``
in the inline loop).
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import ColumnBatch, ColumnEmissions
from repro.obs import WorkerObs
from repro.storm.topology import Topology, TopologyError

#: one routed unit of work: rows of `stream` (emitted by `source`)
#: awaiting execution at task `task` of component `target`; under the
#: columnar path the rows payload is a ColumnBatch instead of a row list
WorkItem = Tuple[str, int, str, str, List[tuple]]

EXECUTOR_NAMES = ("inline", "threads", "processes")


class ExecutorError(RuntimeError):
    """A parallel backend could not run the topology."""


def default_parallelism() -> int:
    """Worker count used when ``parallelism`` is not given: the machine's
    cores, capped at 4 (diminishing returns for coordinator-relayed IPC)."""
    return max(1, min(4, os.cpu_count() or 1))


def ensure_task_local_routing(topology: Topology, executor: str):
    """Refuse topologies whose routing cannot be replicated per worker.

    A grouping backed by a partitioner that *adapts to the globally
    observed stream* (e.g. :class:`~repro.partitioning.adaptive.\
AdaptiveOneBucket`) cannot be deep-copied into shared-nothing workers:
    each copy would see only its slice of the stream, reshape differently,
    and silently lose join matches.  Raises a dedicated
    :class:`ExecutorError` naming the offending partitioner and the
    executor that can still run the plan.
    """
    for edge in topology.edges:
        if not edge.grouping.supports_task_local_routing():
            raise ExecutorError(
                f"the {executor!r} executor cannot run this topology: edge "
                f"{edge.source}->{edge.target} routes through "
                f"{edge.grouping.routing_description()}, whose decisions "
                f"adapt to the globally observed stream; worker-local "
                f"copies would diverge and silently lose matches -- run "
                f"this plan with executor='inline'"
            )


def topological_levels(topology: Topology) -> List[List[str]]:
    """Components grouped by longest-path depth from the sources.

    Every edge goes from a lower level to a strictly higher one, so all
    components of one level can execute concurrently, and by the time
    level ``k`` runs, everything its components will ever receive has
    already been routed.
    """
    order = topology.topological_order()
    depth: Dict[str, int] = {}
    for name in order:
        upstream = [edge.source for edge in topology.in_edges(name)]
        depth[name] = max((depth[up] + 1 for up in upstream), default=0)
    levels: List[List[str]] = [[] for _ in range(max(depth.values()) + 1)]
    for name in order:  # topological order keeps each level deterministic
        levels[depth[name]].append(name)
    return levels


def assign_tasks(topology: Topology, n_workers: int) -> Dict[Tuple[str, int], int]:
    """Disjoint task ownership: global round-robin over (component, task).

    A single counter walks components in topological order and tasks in
    index order, so singleton components (sources, sinks) spread across
    workers instead of piling onto worker 0.
    """
    assignment: Dict[Tuple[str, int], int] = {}
    counter = 0
    for name in topology.topological_order():
        for task_index in range(topology.components[name].parallelism):
            assignment[(name, task_index)] = counter % n_workers
            counter += 1
    return assignment


class Router:
    """Task-local routing: one component's emissions -> routed work items.

    Every worker builds its *own* Router (``clone=True`` deep-copies each
    edge's grouping via :meth:`Grouping.task_local`), so stateful routing
    -- shuffle counters, random replica choices -- lives inside the
    owning worker and never needs cross-worker synchronization.  The
    inline backend uses a single Router over the original groupings,
    preserving the seed engine's exact routing sequence.
    """

    def __init__(self, topology: Topology, clone: bool = False):
        # one deepcopy memo for the whole routing table: objects shared by
        # several groupings (a partitioner driving all input edges of one
        # join) stay shared *within* this worker's copies, so routing of
        # the join's relations remains mutually consistent
        memo: dict = {}
        self._edges: Dict[str, List] = {}
        for name in topology.components:
            edges = []
            for edge in topology.out_edges(name):
                grouping = edge.grouping.task_local(memo) if clone \
                    else edge.grouping
                edges.append((edge, grouping))
            self._edges[name] = edges
        self._parallelism = {
            name: spec.parallelism for name, spec in topology.components.items()
        }

    def routing_state(self) -> Dict[str, List[object]]:
        """Mutable grouping state per component's out-edges (checkpoint).

        Recovery replays the post-checkpoint stream through this router;
        rewinding stateful groupings (shuffle cursors) to the checkpoint
        makes the replayed routing identical to the original delivery.
        """
        return {
            name: [grouping.routing_state() for _edge, grouping in edges]
            for name, edges in self._edges.items()
        }

    def restore_routing_state(self, state: Dict[str, List[object]]):
        for name, per_edge in state.items():
            for (_edge, grouping), edge_state in zip(
                    self._edges.get(name, ()), per_edge):
                if edge_state is not None:
                    grouping.restore_routing_state(edge_state)

    def route(self, source: str, emissions: List[Tuple[str, tuple]],
              coalesce: bool = True) -> List[WorkItem]:
        """Partition one component's emissions across subscriber tasks.

        With ``coalesce`` consecutive emissions on the same stream travel
        as one micro-batch; without it every emission is routed
        individually (the seed engine's per-tuple dispatch order).
        """
        items: List[WorkItem] = []
        if isinstance(emissions, ColumnEmissions):
            if coalesce:
                # already a single-stream batch: route it columnar, no
                # coalescing scan and no row materialization
                self._route_one(items, source, emissions.stream,
                                emissions.batch)
                return items
            emissions = list(emissions)  # per-tuple dispatch order
        if not coalesce:
            for stream, values in emissions:
                self._route_one(items, source, stream, [values])
            return items
        i = 0
        n = len(emissions)
        while i < n:
            stream = emissions[i][0]
            j = i + 1
            while j < n and emissions[j][0] == stream:
                j += 1
            self._route_one(items, source, stream,
                            [values for _stream, values in emissions[i:j]])
            i = j
        return items

    def _route_one(self, items: List[WorkItem], source: str, stream: str,
                   rows: List[tuple]):
        for edge, grouping in self._edges[source]:
            if not edge.subscribes(stream):
                continue
            parallelism = self._parallelism[edge.target]
            for target_task, sub_rows in grouping.targets_batch(
                    stream, rows, parallelism):
                if not 0 <= target_task < parallelism:
                    raise TopologyError(
                        f"grouping for {edge.source}->{edge.target} returned "
                        f"task {target_task} outside [0, {parallelism})"
                    )
                items.append((edge.target, target_task, source, stream, sub_rows))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: counter deltas one worker accumulated during a wave:
#: (emits, receives, batches) as lists of argument tuples for
#: TopologyMetrics, the worker's execution-path counters
#: [columnar_rows, columnar_batches, row_rows, row_batches], and the
#: worker's observability payload (a WorkerObs.drain() dict, or None
#: when the run is unobserved)
MetricDeltas = Tuple[List[tuple], List[tuple], List[tuple], List[int],
                     Optional[dict]]


class WorkerState:
    """Everything one shared-nothing worker owns: tasks + routing state."""

    #: forked into (and for resident workers, shipped to) worker
    #: processes whole -- opt into squall-lint's pickle-safety and
    #: determinism rules even though this is not a Bolt subclass
    PIPE_PICKLED = True

    def __init__(self, worker_id: int, topology: Topology,
                 tasks: Dict[str, List[object]],
                 assignment: Dict[Tuple[str, int], int], batch_size: int,
                 observe: str = "off"):
        self.worker_id = worker_id
        self.batch_size = batch_size
        #: worker-side observability accumulator (None = observe='off':
        #: the wave loop keeps its exact unobserved shape)
        self.obs = None if observe == "off" else WorkerObs(worker_id, observe)
        self.is_spout = {
            name: spec.is_spout for name, spec in topology.components.items()
        }
        self.router = Router(topology, clone=True)
        # owned tasks only -- the shared-nothing contract: nothing else of
        # the (forked or shared) task table is ever touched
        self.owned: Dict[str, Dict[int, object]] = {}
        for (name, task_index), owner in assignment.items():
            if owner == worker_id:
                self.owned.setdefault(name, {})[task_index] = tasks[name][task_index]

    def run_wave(self, components: Sequence[str],
                 delivered: Dict[Tuple[str, int], List[Tuple[str, str, List[tuple]]]],
                 ) -> Tuple[List[WorkItem], MetricDeltas]:
        """Execute one topological level on this worker's owned tasks.

        Spout components are drained to exhaustion in ``batch_size``
        micro-batches; bolt components execute their delivered batches in
        arrival order and then flush (``finish``) -- the coordinator's
        barrier guarantees every input batch has already been delivered.

        Observed runs take :meth:`_run_wave_observed` instead -- same
        scheduling, plus per-batch timings (and spans at the trace
        level, where delivered entries and routed items grow a trailing
        span-context element).
        """
        if self.obs is not None:
            return self._run_wave_observed(components, delivered)
        out: List[WorkItem] = []
        emits: List[tuple] = []
        receives: List[tuple] = []
        batches: List[tuple] = []
        paths = [0, 0, 0, 0]  # columnar rows/batches, row rows/batches
        route = self.router.route
        for name in components:
            owned = self.owned.get(name)
            if not owned:
                continue
            if self.is_spout[name]:
                for task_index in sorted(owned):
                    spout = owned[task_index]
                    has_more = getattr(spout, "has_more", None)
                    while True:
                        emissions = spout.next_batch(self.batch_size)
                        if not emissions:
                            break
                        emits.append((name, task_index, len(emissions)))
                        batches.append((name, task_index))
                        out.extend(route(name, emissions))
                        # a short batch means exhaustion unless the spout
                        # says otherwise (a columnar spout's selection can
                        # thin a mid-stream chunk below batch_size)
                        if len(emissions) < self.batch_size and not (
                                has_more is not None and has_more()):
                            break
            else:
                for task_index in sorted(owned):
                    bolt = owned[task_index]
                    for source, stream, rows in delivered.get((name, task_index), ()):
                        receives.append((source, name, task_index, len(rows)))
                        batches.append((name, task_index))
                        if isinstance(rows, ColumnBatch):
                            paths[0] += len(rows)
                            paths[1] += 1
                        else:
                            paths[2] += len(rows)
                            paths[3] += 1
                        emissions = bolt.execute_batch(source, stream, rows)
                        if emissions:
                            emits.append((name, task_index, len(emissions)))
                            out.extend(route(name, emissions))
                    emissions = bolt.finish()
                    if emissions:
                        emits.append((name, task_index, len(emissions)))
                        out.extend(route(name, emissions))
        return out, (emits, receives, batches, paths, None)

    def _run_wave_observed(self, components, delivered):
        """The observed twin of :meth:`run_wave`."""
        obs = self.obs
        trace = obs.trace
        out: List[tuple] = []
        emits: List[tuple] = []
        receives: List[tuple] = []
        batches: List[tuple] = []
        paths = [0, 0, 0, 0]
        route = self.router.route
        perf = time.perf_counter
        for name in components:
            owned = self.owned.get(name)
            if not owned:
                continue
            if self.is_spout[name]:
                for task_index in sorted(owned):
                    spout = owned[task_index]
                    has_more = getattr(spout, "has_more", None)
                    while True:
                        started = perf()
                        emissions = spout.next_batch(self.batch_size)
                        elapsed = perf() - started
                        if not emissions:
                            break
                        emits.append((name, task_index, len(emissions)))
                        batches.append((name, task_index))
                        obs.record(name, task_index, len(emissions), elapsed)
                        items = route(name, emissions)
                        if trace:
                            ctx = obs.root(name, task_index, len(emissions),
                                           elapsed)
                            out.extend(item + (ctx,) for item in items)
                        else:
                            out.extend(items)
                        if len(emissions) < self.batch_size and not (
                                has_more is not None and has_more()):
                            break
            else:
                for task_index in sorted(owned):
                    bolt = owned[task_index]
                    for entry in delivered.get((name, task_index), ()):
                        if trace:
                            source, stream, rows, ctx = entry
                        else:
                            source, stream, rows = entry
                            ctx = None
                        receives.append((source, name, task_index, len(rows)))
                        batches.append((name, task_index))
                        if isinstance(rows, ColumnBatch):
                            paths[0] += len(rows)
                            paths[1] += 1
                        else:
                            paths[2] += len(rows)
                            paths[3] += 1
                        started = perf()
                        emissions = bolt.execute_batch(source, stream, rows)
                        elapsed = perf() - started
                        obs.record(name, task_index, len(rows), elapsed)
                        child = obs.span(ctx, name, task_index, len(rows),
                                         elapsed)
                        if emissions:
                            emits.append((name, task_index, len(emissions)))
                            items = route(name, emissions)
                            if trace:
                                out.extend(item + (child,) for item in items)
                            else:
                                out.extend(items)
                    emissions = bolt.finish()
                    if emissions:
                        emits.append((name, task_index, len(emissions)))
                        items = route(name, emissions)
                        if trace:
                            # flush emissions are punctuations, untraced
                            out.extend(item + (None,) for item in items)
                        else:
                            out.extend(items)
        return out, (emits, receives, batches, paths, obs.drain())

    def exports(self) -> Dict[Tuple[str, int], object]:
        """Final owned task instances, for post-run state extraction."""
        return {
            (name, task_index): instance
            for name, tasks in self.owned.items()
            for task_index, instance in tasks.items()
        }


def worker_loop(state: WorkerState, recv, send):
    """Command loop shared by the thread and process backends.

    ``recv()`` yields coordinator commands; ``send(reply)`` must raise in
    the *caller* on serialization failure (queue.Queue and Connection.send
    both do) so errors surface as ``("error", traceback)`` replies instead
    of hangs.
    """
    while True:
        message = recv()
        kind = message[0]
        if kind == "wave":
            _kind, components, delivered = message
            try:
                send(("ok", state.run_wave(components, delivered)))
            except Exception:
                send(("error", traceback.format_exc()))
        elif kind == "collect":
            try:
                send(("ok", state.exports()))
            except Exception:
                send(("error", traceback.format_exc()))
        elif kind == "stop":
            return
        else:  # pragma: no cover - protocol bug
            send(("error", f"unknown command {kind!r}"))


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class _ThreadWorker:
    """A worker thread fed through in-memory queues (no serialization)."""

    def __init__(self, state: WorkerState):
        self._inbox: "queue.Queue" = queue.Queue()
        self._outbox: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=worker_loop,
            args=(state, self._inbox.get, self._outbox.put),
            daemon=True,
        )
        self._thread.start()

    def send(self, message):
        self._inbox.put(message)

    def recv(self):
        return self._outbox.get()

    def stop(self):
        self._inbox.put(("stop",))
        self._thread.join(timeout=30)


class _ProcessWorker:
    """A forked worker process fed through pipes (pickled micro-batches).

    ``fork`` copies the whole task table into the child; the worker then
    touches only its owned slice, so state lives inside the owning worker
    and only serialized batches and final task exports cross the pipe.
    ``Connection.send`` pickles in the caller, so a pickle-unsafe reply
    becomes an ``("error", ...)`` message instead of a silent hang.
    """

    def __init__(self, context, state: WorkerState):
        self._parent_conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_process_worker_main, args=(state, child_conn), daemon=True
        )
        self._process.start()
        child_conn.close()

    def send(self, message):
        self._parent_conn.send(message)

    def recv(self):
        return self._parent_conn.recv()

    def stop(self):
        try:
            self._parent_conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5)
        self._parent_conn.close()


def _process_worker_main(state: WorkerState, conn):
    def send(reply):
        try:
            conn.send(reply)
        except Exception:
            # reply not pickle-safe: report instead of dropping the message
            conn.send(("error", traceback.format_exc()))

    try:
        worker_loop(state, conn.recv, send)
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - shutdown races
        pass
    finally:
        conn.close()


class StagedExecutor:
    """Coordinator for the parallel backends: waves, barriers, merging.

    Subclasses only decide how workers run (threads vs forked processes)
    and whether final task state must be shipped back.
    """

    name = "staged"
    needs_fork = False
    reimports_tasks = False

    def __init__(self, cluster, parallelism: Optional[int] = None):
        self.cluster = cluster
        n_tasks = sum(
            spec.parallelism for spec in cluster.topology.components.values()
        )
        requested = default_parallelism() if parallelism is None else parallelism
        if requested < 1:
            raise ExecutorError(f"parallelism must be >= 1, got {requested}")
        self.n_workers = min(requested, n_tasks)
        self.assignment = assign_tasks(cluster.topology, self.n_workers)
        ensure_task_local_routing(cluster.topology, self.name)

    # -- backend hooks -----------------------------------------------------

    def _start_workers(self, batch_size: int) -> List[object]:
        raise NotImplementedError

    def _make_state(self, worker_id: int, batch_size: int) -> WorkerState:
        observer = self.cluster.observer
        return WorkerState(worker_id, self.cluster.topology, self.cluster._tasks,
                           self.assignment, batch_size,
                           observe="off" if observer is None
                           else observer.level)

    # -- the run -----------------------------------------------------------

    def run(self, batch_size: int = 1):
        """Execute the topology to completion; returns the cluster metrics."""
        if batch_size < 1:
            raise ExecutorError(f"batch_size must be >= 1, got {batch_size}")
        cluster = self.cluster
        metrics = cluster.metrics
        observer = cluster.observer
        trace = observer is not None and observer.trace
        levels = topological_levels(cluster.topology)
        workers = self._start_workers(batch_size)
        try:
            pending: Dict[Tuple[str, int], List[tuple]] = {}
            for level in levels:
                for worker_id, worker in enumerate(workers):
                    delivered = {}
                    for name in level:
                        for task_index in range(
                                cluster.topology.components[name].parallelism):
                            key = (name, task_index)
                            if self.assignment[key] != worker_id:
                                continue
                            items = pending.pop(key, None)
                            if items:
                                delivered[key] = items
                    worker.send(("wave", level, delivered))
                # barrier: collect every worker's wave in worker-id order,
                # so the merged delivery order is deterministic
                for worker in workers:
                    routed, deltas = self._reply(worker)
                    emits, receives, batches, paths, obs_payload = deltas
                    for name, task_index, count in emits:
                        metrics.record_emit(name, task_index, count)
                    for source, target, task_index, count in receives:
                        metrics.record_receive(source, target, task_index, count)
                    for name, task_index in batches:
                        metrics.record_batch(name, task_index)
                    metrics.merge_path_counts(*paths)
                    if observer is not None:
                        observer.merge_worker_obs(obs_payload)
                    if trace:
                        for target, task_index, source, stream, rows, ctx \
                                in routed:
                            pending.setdefault((target, task_index), []).append(
                                (source, stream, rows, ctx)
                            )
                    else:
                        for target, task_index, source, stream, rows in routed:
                            pending.setdefault((target, task_index), []).append(
                                (source, stream, rows)
                            )
                if observer is not None and pending:
                    observer.on_queue_depth(
                        "staged",
                        sum(len(items) for items in pending.values()))
            if pending:  # pragma: no cover - level invariant violated
                raise ExecutorError(
                    f"undelivered batches after final wave: {sorted(pending)}"
                )
            self._finalize(workers)
        finally:
            for worker in workers:
                worker.stop()
        return metrics

    def _reply(self, worker):
        status, payload = worker.recv()
        if status != "ok":
            raise ExecutorError(
                f"{self.name} worker failed:\n{payload}"
            )
        return payload

    def _finalize(self, workers):
        """Ship final task state back into the cluster (process backend)."""
        if not self.reimports_tasks:
            return
        for worker in workers:
            worker.send(("collect",))
        for worker in workers:
            for (name, task_index), instance in self._reply(worker).items():
                self.cluster._tasks[name][task_index] = instance


class ThreadExecutor(StagedExecutor):
    """Staged workers as threads sharing the cluster's task instances.

    Ownership is still disjoint and routing still task-local, so the
    execution protocol is identical to the process backend -- only the
    transport (in-memory queues) and the memory model (shared heap, no
    pickling) differ.
    """

    name = "threads"

    def _start_workers(self, batch_size):
        return [
            _ThreadWorker(self._make_state(worker_id, batch_size))
            for worker_id in range(self.n_workers)
        ]


class ProcessExecutor(StagedExecutor):
    """Staged workers as forked processes: shared-nothing across cores."""

    name = "processes"
    reimports_tasks = True

    def _start_workers(self, batch_size):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise ExecutorError(
                "the 'processes' backend needs the fork start method "
                "(component factories are closures and cannot be pickled); "
                "use executor='threads' or 'inline' on this platform"
            )
        context = multiprocessing.get_context("fork")
        return [
            _ProcessWorker(context, self._make_state(worker_id, batch_size))
            for worker_id in range(self.n_workers)
        ]


# ---------------------------------------------------------------------------
# Resident workers (the streaming 'processes' executor)
# ---------------------------------------------------------------------------


class WorkerDied(ExecutorError):
    """A resident worker process is gone (crash, SIGKILL, lost pipe).

    Raised by :class:`ResidentWorkerPool` commands; carries the dead
    worker ids so the supervisor (the streaming coordinator) can respawn
    exactly those workers and run the recovery protocol.
    """

    def __init__(self, worker_ids: List[int]):
        super().__init__(f"resident worker(s) {sorted(worker_ids)} died")
        self.worker_ids = sorted(worker_ids)


class ResidentWorkerState:
    """Everything one resident worker owns: bolt tasks + armed faults.

    Unlike the staged :class:`WorkerState`, a resident worker does *no*
    routing: it executes delivered micro-batches on its owned tasks and
    returns the raw emissions for the coordinator to route centrally.
    Central routing keeps all grouping state in the coordinator -- the
    process that survives worker crashes -- so recovery never has to
    reconcile diverged per-worker routing state.

    ``kill_after`` arms deterministic fault injection
    (:class:`repro.storm.failures.FaultInjector`): after the worker has
    executed that many micro-batches *in this incarnation*, it SIGKILLs
    itself mid-protocol -- the test harness for the recovery path.
    """

    #: shipped whole to freshly spawned workers on respawn -- opt into
    #: squall-lint's pickle-safety and determinism rules
    PIPE_PICKLED = True

    def __init__(self, worker_id: int, owned: Dict[Tuple[str, int], object],
                 kill_after: Optional[List[Tuple[int, int]]] = None,
                 observe: str = "off"):
        self.worker_id = worker_id
        self.owned = owned  # (component, task_index) -> task instance
        self.batches_executed = 0
        #: [(after_batches, signal), ...], sorted; consumed front to back
        self.kill_after = sorted(kill_after or [])
        #: worker-side observability accumulator (None = observe='off')
        self.obs = None if observe == "off" else WorkerObs(worker_id, observe)

    def _maybe_die(self):
        if not self.kill_after:
            return
        after, signal = self.kill_after[0]
        if self.batches_executed >= after:
            os.kill(os.getpid(), signal)  # SIGKILL: never returns

    def execute(self, items: List[WorkItem]):
        """Run delivered batches in order; return raw emissions + metrics."""
        if self.obs is not None:
            return self._execute_observed(items)
        outputs: List[Tuple[str, int, object]] = []
        emits: List[tuple] = []
        receives: List[tuple] = []
        batches: List[tuple] = []
        paths = [0, 0, 0, 0]
        for target, task_index, source, stream, rows in items:
            bolt = self.owned[(target, task_index)]
            receives.append((source, target, task_index, len(rows)))
            batches.append((target, task_index))
            if isinstance(rows, ColumnBatch):
                paths[0] += len(rows)
                paths[1] += 1
            else:
                paths[2] += len(rows)
                paths[3] += 1
            emissions = bolt.execute_batch(source, stream, rows)
            self.batches_executed += 1
            if emissions:
                emits.append((target, task_index, len(emissions)))
                outputs.append((target, task_index, emissions))
            self._maybe_die()
        return outputs, (emits, receives, batches, paths, None)

    def _execute_observed(self, items: List[WorkItem]):
        """``execute`` with per-batch timings and (at 'trace') spans.

        Trace-level items carry a trailing span context (6-tuples) and
        trace-level outputs grow a trailing child context (4-tuples) so
        the coordinator can parent downstream hops; 'metrics' keeps the
        off-level wire shapes and only ships timings in the deltas.
        """
        obs = self.obs
        trace = obs.trace
        perf = time.perf_counter
        outputs: List[tuple] = []
        emits: List[tuple] = []
        receives: List[tuple] = []
        batches: List[tuple] = []
        paths = [0, 0, 0, 0]
        for item in items:
            if trace:
                target, task_index, source, stream, rows, ctx = item
            else:
                target, task_index, source, stream, rows = item
                ctx = None
            bolt = self.owned[(target, task_index)]
            receives.append((source, target, task_index, len(rows)))
            batches.append((target, task_index))
            if isinstance(rows, ColumnBatch):
                paths[0] += len(rows)
                paths[1] += 1
            else:
                paths[2] += len(rows)
                paths[3] += 1
            started = perf()
            emissions = bolt.execute_batch(source, stream, rows)
            elapsed = perf() - started
            self.batches_executed += 1
            obs.record(target, task_index, len(rows), elapsed)
            child = obs.span(ctx, target, task_index, len(rows), elapsed)
            if emissions:
                emits.append((target, task_index, len(emissions)))
                if trace:
                    outputs.append((target, task_index, emissions, child))
                else:
                    outputs.append((target, task_index, emissions))
            self._maybe_die()
        return outputs, (emits, receives, batches, paths, obs.drain())

    def advance_watermark(self, watermark: float):
        """Apply one watermark punctuation to every owned windowed task."""
        outputs: List[Tuple[str, int, object]] = []
        for (name, task_index) in sorted(self.owned):
            hook = getattr(self.owned[(name, task_index)],
                           "advance_watermark", None)
            if hook is None:
                continue
            emissions = hook(watermark)
            if emissions:
                outputs.append((name, task_index, emissions))
        return outputs

    def finish_component(self, component: str):
        """End-of-stream flush for one component's owned tasks."""
        outputs: List[Tuple[str, int, object]] = []
        for (name, task_index) in sorted(self.owned):
            if name != component:
                continue
            emissions = self.owned[(name, task_index)].finish()
            if emissions:
                outputs.append((name, task_index, emissions))
        return outputs

    def checkpoint(self, known: Dict[Tuple[str, int], str]):
        """Hash-diff snapshot of every owned task.

        Returns ``{key: (digest, blob-or-None)}`` -- the blob travels
        over the pipe only when the digest differs from the store's
        latest manifest (``known``), so an unchanged partition costs one
        pickle + hash and zero IPC bytes.
        """
        from repro.checkpoint.store import hash_blob, snapshot_blob

        snapshots = {}
        for key in sorted(self.owned):
            blob = snapshot_blob(self.owned[key])
            digest = hash_blob(blob)
            snapshots[key] = (
                digest, None if known.get(key) == digest else blob)
        return snapshots

    def restore(self, blobs: Dict[Tuple[str, int], bytes]):
        """Replace owned task instances with unpickled snapshot state."""
        for key, blob in blobs.items():
            if key in self.owned:
                self.owned[key] = pickle.loads(blob)
        return len(blobs)


def resident_worker_loop(state: ResidentWorkerState, recv, send):
    """Command loop of one resident worker process.

    Commands: ``execute`` (micro-batches), ``watermark`` (punctuation),
    ``finish`` (per-component end-of-stream flush), ``checkpoint``
    (hash-diff snapshot), ``restore`` (load snapshot state), ``ping``
    (liveness), ``stop``.  Every command gets exactly one reply, so the
    coordinator's pipe protocol stays in lock-step; a worker death
    between command and reply surfaces as EOF on the coordinator side.
    """
    while True:
        message = recv()
        kind = message[0]
        try:
            if kind == "execute":
                send(("ok", state.execute(message[1])))
            elif kind == "watermark":
                send(("ok", state.advance_watermark(message[1])))
            elif kind == "finish":
                send(("ok", state.finish_component(message[1])))
            elif kind == "checkpoint":
                send(("ok", state.checkpoint(message[1])))
            elif kind == "restore":
                send(("ok", state.restore(message[1])))
            elif kind == "ping":
                send(("ok", state.worker_id))
            elif kind == "stop":
                return
            else:  # pragma: no cover - protocol bug
                send(("error", f"unknown command {kind!r}"))
        except Exception:
            send(("error", traceback.format_exc()))


class ResidentWorker:
    """One long-lived forked worker process behind a duplex pipe."""

    def __init__(self, context, state: ResidentWorkerState):
        self.worker_id = state.worker_id
        self._parent_conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_resident_worker_main, args=(state, child_conn),
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid

    def alive(self) -> bool:
        return self._process.is_alive()

    def send(self, message):
        self._parent_conn.send(message)

    def recv(self):
        return self._parent_conn.recv()

    def stop(self):
        try:
            self._parent_conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5)
        self._parent_conn.close()

    def reap(self):
        """Release a dead worker's process + pipe resources."""
        self._process.join(timeout=5)
        try:
            self._parent_conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def _resident_worker_main(state: ResidentWorkerState, conn):
    def send(reply):
        try:
            conn.send(reply)
        except Exception:
            conn.send(("error", traceback.format_exc()))

    try:
        resident_worker_loop(state, conn.recv, send)
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - shutdown
        pass
    finally:
        conn.close()


class ResidentWorkerPool:
    """Supervisor for the streaming ``processes`` backend.

    Owns the fork/assignment/respawn lifecycle of N resident workers,
    each holding a disjoint slice of the topology's bolt tasks
    (``exclude`` names coordinator-owned components -- the delta sinks,
    whose subscriptions must live in the parent).  All commands detect
    worker death (EOF / broken pipe / liveness probe) and raise
    :class:`WorkerDied` with the dead ids; the streaming coordinator
    reacts by respawning (:meth:`respawn`) and running the
    checkpoint-restore + replay recovery protocol.
    """

    def __init__(self, topology: Topology,
                 tasks: Dict[str, List[object]],
                 parallelism: Optional[int] = None,
                 exclude: Optional[set] = None,
                 kill_plan: Optional[Dict[int, List[Tuple[int, int]]]] = None,
                 observe: str = "off"):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise ExecutorError(
                "the resident 'processes' backend needs the fork start "
                "method; use executor='threads' or 'inline' on this platform"
            )
        self._context = multiprocessing.get_context("fork")
        self._topology = topology
        self._tasks = tasks
        exclude = exclude or set()
        worker_keys = [
            (name, task_index)
            for name in topology.topological_order()
            if not topology.components[name].is_spout and name not in exclude
            for task_index in range(topology.components[name].parallelism)
        ]
        requested = default_parallelism() if parallelism is None else parallelism
        if requested < 1:
            raise ExecutorError(f"parallelism must be >= 1, got {requested}")
        self.n_workers = max(1, min(requested, len(worker_keys)))
        #: (component, task_index) -> owning worker id (round-robin)
        self.assignment: Dict[Tuple[str, int], int] = {
            key: index % self.n_workers
            for index, key in enumerate(worker_keys)
        }
        #: armed fault-injection kills per worker (consumed on death)
        self._kill_plan = {w: list(specs)
                           for w, specs in (kill_plan or {}).items()}
        self._workers: Dict[int, ResidentWorker] = {}
        self.respawn_count = 0
        #: observability level shipped into every worker incarnation
        self._observe = observe

    # -- lifecycle ---------------------------------------------------------

    def arm_kills(self, kill_plan: Dict[int, List[Tuple[int, int]]]):
        """Install per-worker fault-injection kills (call before start():
        the specs ride into the workers at fork time)."""
        self._kill_plan = {worker_id: list(specs)
                           for worker_id, specs in kill_plan.items()}

    def owner(self, component: str, task_index: int) -> Optional[int]:
        """Owning worker id, or None for coordinator-owned tasks."""
        return self.assignment.get((component, task_index))

    def owned_keys(self, worker_id: int) -> List[Tuple[str, int]]:
        return sorted(key for key, owner in self.assignment.items()
                      if owner == worker_id)

    def _make_state(self, worker_id: int) -> ResidentWorkerState:
        owned = {key: self._tasks[key[0]][key[1]]
                 for key in self.owned_keys(worker_id)}
        return ResidentWorkerState(
            worker_id, owned, kill_after=self._kill_plan.get(worker_id),
            observe=self._observe)

    def start(self):
        if not self.assignment:
            return
        for worker_id in range(self.n_workers):
            self._workers[worker_id] = ResidentWorker(
                self._context, self._make_state(worker_id))

    def stop(self):
        for worker in self._workers.values():
            if worker.alive():
                worker.stop()
            else:
                worker.reap()
        self._workers.clear()

    def pids(self) -> Dict[int, Optional[int]]:
        """Live worker pids (the kill-a-worker demo's target list)."""
        return {worker_id: worker.pid
                for worker_id, worker in self._workers.items()}

    def reap_dead(self) -> List[int]:
        """Liveness sweep: ids of workers found dead (not yet respawned)."""
        return [worker_id for worker_id, worker in self._workers.items()
                if not worker.alive()]

    def respawn(self, worker_ids: List[int]):
        """Replace dead workers with fresh forks (initial task state).

        The new incarnation starts from the parent's pristine task
        instances; the supervisor is expected to follow up with a
        ``restore`` command carrying the latest checkpoint blobs.  The
        armed fault that killed the dead incarnation (its lowest kill
        point) is consumed; later armed kills re-arm against the new
        incarnation's batch counter, so multi-kill scenarios stay
        deterministic.
        """
        for worker_id in worker_ids:
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker.reap()
            remaining = sorted(self._kill_plan.pop(worker_id, []))[1:]
            if remaining:
                self._kill_plan[worker_id] = remaining
            self._workers[worker_id] = ResidentWorker(
                self._context, self._make_state(worker_id))
            self.respawn_count += 1

    # -- command fan-out ---------------------------------------------------

    def _command(self, recipients: Dict[int, tuple]) -> Dict[int, object]:
        """Send one command per recipient, then collect every reply.

        The reply phase always drains every worker that was sent a
        command (otherwise a stale reply would desynchronize the next
        command round); any send/recv failure or error reply marks that
        worker dead and the whole round raises :class:`WorkerDied` after
        draining -- the caller abandons the round and recovers.
        """
        dead: List[int] = []
        errors: List[str] = []
        sent: List[int] = []
        for worker_id, message in recipients.items():
            try:
                self._workers[worker_id].send(message)
                sent.append(worker_id)
            except (BrokenPipeError, EOFError, OSError):
                dead.append(worker_id)
        replies: Dict[int, object] = {}
        for worker_id in sent:
            try:
                status, payload = self._workers[worker_id].recv()
            except (BrokenPipeError, EOFError, OSError):
                dead.append(worker_id)
                continue
            if status != "ok":
                errors.append(f"worker {worker_id} failed:\n{payload}")
                continue
            replies[worker_id] = payload
        if errors:
            raise ExecutorError("resident worker error:\n" + "\n".join(errors))
        if dead:
            raise WorkerDied(dead)
        return replies

    def execute(self, per_worker: Dict[int, List[WorkItem]]):
        """Deliver routed micro-batches; returns (outputs, metric deltas).

        Workers execute their slices concurrently (each in its own
        process); outputs are merged in worker-id order so delivery
        stays deterministic for a fixed assignment.
        """
        replies = self._command({
            worker_id: ("execute", items)
            for worker_id, items in per_worker.items() if items
        })
        outputs: List[Tuple[str, int, object]] = []
        deltas: List[MetricDeltas] = []
        for worker_id in sorted(replies):
            worker_outputs, worker_deltas = replies[worker_id]
            outputs.extend(worker_outputs)
            deltas.append(worker_deltas)
        return outputs, deltas

    def broadcast_watermark(self, watermark: float):
        """Punctuate every worker; returns merged hook emissions."""
        replies = self._command({
            worker_id: ("watermark", watermark)
            for worker_id in self._workers
        })
        return [output for worker_id in sorted(replies)
                for output in replies[worker_id]]

    def finish_component(self, component: str):
        """Flush one component's tasks across the owning workers."""
        owners = sorted({
            owner for (name, _i), owner in self.assignment.items()
            if name == component
        })
        replies = self._command({
            worker_id: ("finish", component) for worker_id in owners
        })
        return [output for worker_id in sorted(replies)
                for output in replies[worker_id]]

    def checkpoint(self, known: Dict[Tuple[str, int], str]):
        """Collect one hash-diff snapshot from every worker."""
        replies = self._command({
            worker_id: ("checkpoint", {
                key: digest for key, digest in known.items()
                if self.assignment.get(key) == worker_id
            })
            for worker_id in self._workers
        })
        snapshots: Dict[Tuple[str, int], Tuple[str, Optional[bytes]]] = {}
        for worker_id in sorted(replies):
            snapshots.update(replies[worker_id])
        return snapshots

    def restore(self, blobs: Dict[Tuple[str, int], bytes]):
        """Load snapshot state into every worker (survivors included)."""
        self._command({
            worker_id: ("restore", {
                key: blob for key, blob in blobs.items()
                if self.assignment.get(key) == worker_id
            })
            for worker_id in self._workers
        })


_BACKENDS = {
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}


def create_executor(name: str, cluster, parallelism: Optional[int] = None):
    """Instantiate a parallel backend by name ('threads' or 'processes').

    The 'inline' backend is the LocalCluster's own loop and never reaches
    this factory.
    """
    try:
        backend = _BACKENDS[name]
    except KeyError:
        raise ExecutorError(
            f"unknown executor {name!r}; choose one of {EXECUTOR_NAMES}"
        ) from None
    return backend(cluster, parallelism)


def pickle_roundtrip(obj):
    """Helper used by tests and docs to check worker pickle-safety."""
    return pickle.loads(pickle.dumps(obj))
