"""Execution backends: shared-nothing parallel workers over micro-batches.

The :class:`~repro.storm.cluster.LocalCluster` runs a topology through one
of three interchangeable backends:

- ``inline`` -- the cluster's own single-threaded loop (the default;
  byte-identical to the seed per-tuple engine at ``batch_size=1``).
- ``threads`` -- staged shared-nothing workers as threads.  Each worker
  owns a disjoint set of tasks and its own routing state; barriers keep
  flush/finish semantics exact.  The GIL serializes pure-Python compute,
  so this backend is mostly useful for I/O-bound spouts and for testing
  the parallel protocol without process overhead.
- ``processes`` -- forked worker processes exchanging *serialized*
  micro-batches over pipes: true shared-nothing scale-out across cores,
  the execution model of the paper's Storm deployment.  Requires the
  ``fork`` start method (Linux/macOS) and pickle-safe rows and task
  state.

Execution is *staged*: components are grouped into topological levels
(every edge goes from a lower to a strictly higher level), and each level
runs as one parallel wave with a barrier after it.  Within a wave every
worker drains or executes only the tasks it owns, routes the emissions
task-locally through its own copy of the stream groupings, and hands the
routed micro-batches back to the coordinator, which delivers them to the
owning workers in later waves.  The barrier guarantees what the inline
loop gets for free: a component's ``finish()`` runs only after every
upstream tuple has been delivered, so snapshot aggregations and
retractions stay correct.

Workers merge deterministically (worker-id order), so a run is
reproducible; result *multisets* and per-component totals are identical
across backends, only the tuple interleaving differs (the operators are
order-insensitive up to the final multiset, exactly as for ``batch_size``
in the inline loop).
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import ColumnBatch, ColumnEmissions
from repro.storm.topology import Topology, TopologyError

#: one routed unit of work: rows of `stream` (emitted by `source`)
#: awaiting execution at task `task` of component `target`; under the
#: columnar path the rows payload is a ColumnBatch instead of a row list
WorkItem = Tuple[str, int, str, str, List[tuple]]

EXECUTOR_NAMES = ("inline", "threads", "processes")


class ExecutorError(RuntimeError):
    """A parallel backend could not run the topology."""


def default_parallelism() -> int:
    """Worker count used when ``parallelism`` is not given: the machine's
    cores, capped at 4 (diminishing returns for coordinator-relayed IPC)."""
    return max(1, min(4, os.cpu_count() or 1))


def ensure_task_local_routing(topology: Topology, executor: str):
    """Refuse topologies whose routing cannot be replicated per worker.

    A grouping backed by a partitioner that *adapts to the globally
    observed stream* (e.g. :class:`~repro.partitioning.adaptive.\
AdaptiveOneBucket`) cannot be deep-copied into shared-nothing workers:
    each copy would see only its slice of the stream, reshape differently,
    and silently lose join matches.  Raises a dedicated
    :class:`ExecutorError` naming the offending partitioner and the
    executor that can still run the plan.
    """
    for edge in topology.edges:
        if not edge.grouping.supports_task_local_routing():
            raise ExecutorError(
                f"the {executor!r} executor cannot run this topology: edge "
                f"{edge.source}->{edge.target} routes through "
                f"{edge.grouping.routing_description()}, whose decisions "
                f"adapt to the globally observed stream; worker-local "
                f"copies would diverge and silently lose matches -- run "
                f"this plan with executor='inline'"
            )


def topological_levels(topology: Topology) -> List[List[str]]:
    """Components grouped by longest-path depth from the sources.

    Every edge goes from a lower level to a strictly higher one, so all
    components of one level can execute concurrently, and by the time
    level ``k`` runs, everything its components will ever receive has
    already been routed.
    """
    order = topology.topological_order()
    depth: Dict[str, int] = {}
    for name in order:
        upstream = [edge.source for edge in topology.in_edges(name)]
        depth[name] = max((depth[up] + 1 for up in upstream), default=0)
    levels: List[List[str]] = [[] for _ in range(max(depth.values()) + 1)]
    for name in order:  # topological order keeps each level deterministic
        levels[depth[name]].append(name)
    return levels


def assign_tasks(topology: Topology, n_workers: int) -> Dict[Tuple[str, int], int]:
    """Disjoint task ownership: global round-robin over (component, task).

    A single counter walks components in topological order and tasks in
    index order, so singleton components (sources, sinks) spread across
    workers instead of piling onto worker 0.
    """
    assignment: Dict[Tuple[str, int], int] = {}
    counter = 0
    for name in topology.topological_order():
        for task_index in range(topology.components[name].parallelism):
            assignment[(name, task_index)] = counter % n_workers
            counter += 1
    return assignment


class Router:
    """Task-local routing: one component's emissions -> routed work items.

    Every worker builds its *own* Router (``clone=True`` deep-copies each
    edge's grouping via :meth:`Grouping.task_local`), so stateful routing
    -- shuffle counters, random replica choices -- lives inside the
    owning worker and never needs cross-worker synchronization.  The
    inline backend uses a single Router over the original groupings,
    preserving the seed engine's exact routing sequence.
    """

    def __init__(self, topology: Topology, clone: bool = False):
        # one deepcopy memo for the whole routing table: objects shared by
        # several groupings (a partitioner driving all input edges of one
        # join) stay shared *within* this worker's copies, so routing of
        # the join's relations remains mutually consistent
        memo: dict = {}
        self._edges: Dict[str, List] = {}
        for name in topology.components:
            edges = []
            for edge in topology.out_edges(name):
                grouping = edge.grouping.task_local(memo) if clone \
                    else edge.grouping
                edges.append((edge, grouping))
            self._edges[name] = edges
        self._parallelism = {
            name: spec.parallelism for name, spec in topology.components.items()
        }

    def route(self, source: str, emissions: List[Tuple[str, tuple]],
              coalesce: bool = True) -> List[WorkItem]:
        """Partition one component's emissions across subscriber tasks.

        With ``coalesce`` consecutive emissions on the same stream travel
        as one micro-batch; without it every emission is routed
        individually (the seed engine's per-tuple dispatch order).
        """
        items: List[WorkItem] = []
        if isinstance(emissions, ColumnEmissions):
            if coalesce:
                # already a single-stream batch: route it columnar, no
                # coalescing scan and no row materialization
                self._route_one(items, source, emissions.stream,
                                emissions.batch)
                return items
            emissions = list(emissions)  # per-tuple dispatch order
        if not coalesce:
            for stream, values in emissions:
                self._route_one(items, source, stream, [values])
            return items
        i = 0
        n = len(emissions)
        while i < n:
            stream = emissions[i][0]
            j = i + 1
            while j < n and emissions[j][0] == stream:
                j += 1
            self._route_one(items, source, stream,
                            [values for _stream, values in emissions[i:j]])
            i = j
        return items

    def _route_one(self, items: List[WorkItem], source: str, stream: str,
                   rows: List[tuple]):
        for edge, grouping in self._edges[source]:
            if not edge.subscribes(stream):
                continue
            parallelism = self._parallelism[edge.target]
            for target_task, sub_rows in grouping.targets_batch(
                    stream, rows, parallelism):
                if not 0 <= target_task < parallelism:
                    raise TopologyError(
                        f"grouping for {edge.source}->{edge.target} returned "
                        f"task {target_task} outside [0, {parallelism})"
                    )
                items.append((edge.target, target_task, source, stream, sub_rows))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: counter deltas one worker accumulated during a wave:
#: (emits, receives, batches) as lists of argument tuples for
#: TopologyMetrics, plus the worker's execution-path counters
#: [columnar_rows, columnar_batches, row_rows, row_batches]
MetricDeltas = Tuple[List[tuple], List[tuple], List[tuple], List[int]]


class WorkerState:
    """Everything one shared-nothing worker owns: tasks + routing state."""

    def __init__(self, worker_id: int, topology: Topology,
                 tasks: Dict[str, List[object]],
                 assignment: Dict[Tuple[str, int], int], batch_size: int):
        self.worker_id = worker_id
        self.batch_size = batch_size
        self.is_spout = {
            name: spec.is_spout for name, spec in topology.components.items()
        }
        self.router = Router(topology, clone=True)
        # owned tasks only -- the shared-nothing contract: nothing else of
        # the (forked or shared) task table is ever touched
        self.owned: Dict[str, Dict[int, object]] = {}
        for (name, task_index), owner in assignment.items():
            if owner == worker_id:
                self.owned.setdefault(name, {})[task_index] = tasks[name][task_index]

    def run_wave(self, components: Sequence[str],
                 delivered: Dict[Tuple[str, int], List[Tuple[str, str, List[tuple]]]],
                 ) -> Tuple[List[WorkItem], MetricDeltas]:
        """Execute one topological level on this worker's owned tasks.

        Spout components are drained to exhaustion in ``batch_size``
        micro-batches; bolt components execute their delivered batches in
        arrival order and then flush (``finish``) -- the coordinator's
        barrier guarantees every input batch has already been delivered.
        """
        out: List[WorkItem] = []
        emits: List[tuple] = []
        receives: List[tuple] = []
        batches: List[tuple] = []
        paths = [0, 0, 0, 0]  # columnar rows/batches, row rows/batches
        route = self.router.route
        for name in components:
            owned = self.owned.get(name)
            if not owned:
                continue
            if self.is_spout[name]:
                for task_index in sorted(owned):
                    spout = owned[task_index]
                    has_more = getattr(spout, "has_more", None)
                    while True:
                        emissions = spout.next_batch(self.batch_size)
                        if not emissions:
                            break
                        emits.append((name, task_index, len(emissions)))
                        batches.append((name, task_index))
                        out.extend(route(name, emissions))
                        # a short batch means exhaustion unless the spout
                        # says otherwise (a columnar spout's selection can
                        # thin a mid-stream chunk below batch_size)
                        if len(emissions) < self.batch_size and not (
                                has_more is not None and has_more()):
                            break
            else:
                for task_index in sorted(owned):
                    bolt = owned[task_index]
                    for source, stream, rows in delivered.get((name, task_index), ()):
                        receives.append((source, name, task_index, len(rows)))
                        batches.append((name, task_index))
                        if isinstance(rows, ColumnBatch):
                            paths[0] += len(rows)
                            paths[1] += 1
                        else:
                            paths[2] += len(rows)
                            paths[3] += 1
                        emissions = bolt.execute_batch(source, stream, rows)
                        if emissions:
                            emits.append((name, task_index, len(emissions)))
                            out.extend(route(name, emissions))
                    emissions = bolt.finish()
                    if emissions:
                        emits.append((name, task_index, len(emissions)))
                        out.extend(route(name, emissions))
        return out, (emits, receives, batches, paths)

    def exports(self) -> Dict[Tuple[str, int], object]:
        """Final owned task instances, for post-run state extraction."""
        return {
            (name, task_index): instance
            for name, tasks in self.owned.items()
            for task_index, instance in tasks.items()
        }


def worker_loop(state: WorkerState, recv, send):
    """Command loop shared by the thread and process backends.

    ``recv()`` yields coordinator commands; ``send(reply)`` must raise in
    the *caller* on serialization failure (queue.Queue and Connection.send
    both do) so errors surface as ``("error", traceback)`` replies instead
    of hangs.
    """
    while True:
        message = recv()
        kind = message[0]
        if kind == "wave":
            _kind, components, delivered = message
            try:
                send(("ok", state.run_wave(components, delivered)))
            except Exception:
                send(("error", traceback.format_exc()))
        elif kind == "collect":
            try:
                send(("ok", state.exports()))
            except Exception:
                send(("error", traceback.format_exc()))
        elif kind == "stop":
            return
        else:  # pragma: no cover - protocol bug
            send(("error", f"unknown command {kind!r}"))


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class _ThreadWorker:
    """A worker thread fed through in-memory queues (no serialization)."""

    def __init__(self, state: WorkerState):
        self._inbox: "queue.Queue" = queue.Queue()
        self._outbox: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=worker_loop,
            args=(state, self._inbox.get, self._outbox.put),
            daemon=True,
        )
        self._thread.start()

    def send(self, message):
        self._inbox.put(message)

    def recv(self):
        return self._outbox.get()

    def stop(self):
        self._inbox.put(("stop",))
        self._thread.join(timeout=30)


class _ProcessWorker:
    """A forked worker process fed through pipes (pickled micro-batches).

    ``fork`` copies the whole task table into the child; the worker then
    touches only its owned slice, so state lives inside the owning worker
    and only serialized batches and final task exports cross the pipe.
    ``Connection.send`` pickles in the caller, so a pickle-unsafe reply
    becomes an ``("error", ...)`` message instead of a silent hang.
    """

    def __init__(self, context, state: WorkerState):
        self._parent_conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_process_worker_main, args=(state, child_conn), daemon=True
        )
        self._process.start()
        child_conn.close()

    def send(self, message):
        self._parent_conn.send(message)

    def recv(self):
        return self._parent_conn.recv()

    def stop(self):
        try:
            self._parent_conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5)
        self._parent_conn.close()


def _process_worker_main(state: WorkerState, conn):
    def send(reply):
        try:
            conn.send(reply)
        except Exception:
            # reply not pickle-safe: report instead of dropping the message
            conn.send(("error", traceback.format_exc()))

    try:
        worker_loop(state, conn.recv, send)
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - shutdown races
        pass
    finally:
        conn.close()


class StagedExecutor:
    """Coordinator for the parallel backends: waves, barriers, merging.

    Subclasses only decide how workers run (threads vs forked processes)
    and whether final task state must be shipped back.
    """

    name = "staged"
    needs_fork = False
    reimports_tasks = False

    def __init__(self, cluster, parallelism: Optional[int] = None):
        self.cluster = cluster
        n_tasks = sum(
            spec.parallelism for spec in cluster.topology.components.values()
        )
        requested = default_parallelism() if parallelism is None else parallelism
        if requested < 1:
            raise ExecutorError(f"parallelism must be >= 1, got {requested}")
        self.n_workers = min(requested, n_tasks)
        self.assignment = assign_tasks(cluster.topology, self.n_workers)
        ensure_task_local_routing(cluster.topology, self.name)

    # -- backend hooks -----------------------------------------------------

    def _start_workers(self, batch_size: int) -> List[object]:
        raise NotImplementedError

    def _make_state(self, worker_id: int, batch_size: int) -> WorkerState:
        return WorkerState(worker_id, self.cluster.topology, self.cluster._tasks,
                           self.assignment, batch_size)

    # -- the run -----------------------------------------------------------

    def run(self, batch_size: int = 1):
        """Execute the topology to completion; returns the cluster metrics."""
        if batch_size < 1:
            raise ExecutorError(f"batch_size must be >= 1, got {batch_size}")
        cluster = self.cluster
        metrics = cluster.metrics
        levels = topological_levels(cluster.topology)
        workers = self._start_workers(batch_size)
        try:
            pending: Dict[Tuple[str, int], List[Tuple[str, str, List[tuple]]]] = {}
            for level in levels:
                for worker_id, worker in enumerate(workers):
                    delivered = {}
                    for name in level:
                        for task_index in range(
                                cluster.topology.components[name].parallelism):
                            key = (name, task_index)
                            if self.assignment[key] != worker_id:
                                continue
                            items = pending.pop(key, None)
                            if items:
                                delivered[key] = items
                    worker.send(("wave", level, delivered))
                # barrier: collect every worker's wave in worker-id order,
                # so the merged delivery order is deterministic
                for worker in workers:
                    routed, deltas = self._reply(worker)
                    emits, receives, batches, paths = deltas
                    for name, task_index, count in emits:
                        metrics.record_emit(name, task_index, count)
                    for source, target, task_index, count in receives:
                        metrics.record_receive(source, target, task_index, count)
                    for name, task_index in batches:
                        metrics.record_batch(name, task_index)
                    metrics.merge_path_counts(*paths)
                    for target, task_index, source, stream, rows in routed:
                        pending.setdefault((target, task_index), []).append(
                            (source, stream, rows)
                        )
            if pending:  # pragma: no cover - level invariant violated
                raise ExecutorError(
                    f"undelivered batches after final wave: {sorted(pending)}"
                )
            self._finalize(workers)
        finally:
            for worker in workers:
                worker.stop()
        return metrics

    def _reply(self, worker):
        status, payload = worker.recv()
        if status != "ok":
            raise ExecutorError(
                f"{self.name} worker failed:\n{payload}"
            )
        return payload

    def _finalize(self, workers):
        """Ship final task state back into the cluster (process backend)."""
        if not self.reimports_tasks:
            return
        for worker in workers:
            worker.send(("collect",))
        for worker in workers:
            for (name, task_index), instance in self._reply(worker).items():
                self.cluster._tasks[name][task_index] = instance


class ThreadExecutor(StagedExecutor):
    """Staged workers as threads sharing the cluster's task instances.

    Ownership is still disjoint and routing still task-local, so the
    execution protocol is identical to the process backend -- only the
    transport (in-memory queues) and the memory model (shared heap, no
    pickling) differ.
    """

    name = "threads"

    def _start_workers(self, batch_size):
        return [
            _ThreadWorker(self._make_state(worker_id, batch_size))
            for worker_id in range(self.n_workers)
        ]


class ProcessExecutor(StagedExecutor):
    """Staged workers as forked processes: shared-nothing across cores."""

    name = "processes"
    reimports_tasks = True

    def _start_workers(self, batch_size):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise ExecutorError(
                "the 'processes' backend needs the fork start method "
                "(component factories are closures and cannot be pickled); "
                "use executor='threads' or 'inline' on this platform"
            )
        context = multiprocessing.get_context("fork")
        return [
            _ProcessWorker(context, self._make_state(worker_id, batch_size))
            for worker_id in range(self.n_workers)
        ]


_BACKENDS = {
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
}


def create_executor(name: str, cluster, parallelism: Optional[int] = None):
    """Instantiate a parallel backend by name ('threads' or 'processes').

    The 'inline' backend is the LocalCluster's own loop and never reaches
    this factory.
    """
    try:
        backend = _BACKENDS[name]
    except KeyError:
        raise ExecutorError(
            f"unknown executor {name!r}; choose one of {EXECUTOR_NAMES}"
        ) from None
    return backend(cluster, parallelism)


def pickle_roundtrip(obj):
    """Helper used by tests and docs to check worker pickle-safety."""
    return pickle.loads(pickle.dumps(obj))
