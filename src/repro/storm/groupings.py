"""Stream groupings: how a stream is partitioned among a bolt's tasks.

Mirrors Storm's grouping vocabulary (shuffle, fields, all, global, custom)
plus two Squall-specific groupings: the hypercube grouping that implements
the partitioning schemes, and the key-mapped grouping that round-robins a
small predefined key domain to avoid hash imperfections (paper section 5).
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.columnar import ColumnBatch, bucket_by_task, hash_key_columns
from repro.partitioning.base import Partitioner
from repro.util import stable_hash

#: ordered per-task sub-batches produced by :meth:`Grouping.targets_batch`;
#: under the columnar path the per-task rows are ``ColumnBatch`` instances
TaskBatches = List[Tuple[int, List[tuple]]]


def _bucket_append(buckets: Dict[int, List[tuple]], order: List[int],
                   task: int, row: tuple):
    bucket = buckets.get(task)
    if bucket is None:
        buckets[task] = [row]
        order.append(task)
    else:
        bucket.append(row)


class Grouping:
    """Chooses target task indices for each tuple of a stream."""

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        raise NotImplementedError

    def targets_batch(self, stream: str, rows: Sequence[tuple],
                      n_tasks: int) -> TaskBatches:
        """Partition a whole batch into per-task sub-batches in one pass.

        Returns ``[(task, rows), ...]``: row order is preserved within each
        sub-batch and tasks appear in order of first assignment, so for a
        single-row batch the task order equals ``targets``.  The base
        implementation falls back to per-tuple ``targets``; subclasses
        override it with a vectorized single pass.
        """
        buckets: Dict[int, List[tuple]] = {}
        order: List[int] = []
        for row in rows:
            for task in self.targets(stream, row, n_tasks):
                _bucket_append(buckets, order, task, row)
        return [(task, buckets[task]) for task in order]

    def is_content_sensitive(self) -> bool:
        """Content-sensitive groupings route by value and are prone to
        temporal skew (section 5); content-insensitive ones are not."""
        return True

    def task_local(self, memo: Optional[dict] = None) -> "Grouping":
        """An independent copy for one shared-nothing worker.

        Parallel backends route task-locally: every worker owns its own
        grouping state (shuffle counters, random replica choices), so
        routing needs no cross-worker synchronization.  Content-sensitive
        groupings are pure functions of the tuple and copy trivially;
        content-insensitive ones diverge per worker, which only changes
        the interleaving, never the result multiset.  Groupings must be
        deep-copyable and pickle-safe (no open handles, no lambdas) to be
        usable under the 'threads' and 'processes' executors.

        ``memo`` is the deepcopy memo shared across one worker's whole
        routing table, so objects referenced by several groupings (a
        partitioner shared by a join's input edges) stay *shared within
        the worker* instead of silently splitting into diverging copies.
        """
        return copy.deepcopy(self, memo if memo is not None else {})

    def supports_task_local_routing(self) -> bool:
        """Whether per-worker copies of this grouping route consistently.

        False for groupings whose routing *adapts to the globally
        observed stream* (e.g. a reshaping adaptive partitioner): worker
        copies would each see only a slice of the stream, diverge, and
        silently drop join matches.  The parallel backends refuse such
        topologies up front; the inline executor runs them exactly.
        """
        return True

    def routing_description(self) -> str:
        """What routes this edge, for human-readable refusal messages.

        Groupings that delegate to another object (a partitioner) override
        this to name the delegate, so errors point at the actual culprit
        rather than the grouping wrapper."""
        return type(self).__name__

    def skew_possible(self) -> bool:
        """Whether per-task load can diverge under this grouping.

        Key-partitioned (content-sensitive) edges concentrate hot keys
        on single tasks -- the signal the observability layer's
        ``partition_skew`` gauge reports and the paper's adaptive
        repartitioning consumes.  Round-robin, broadcast and single-task
        edges are balanced (or trivially equal) by construction, so a
        skew gauge over them would only report batching noise; the
        observer skips those components.
        """
        return self.is_content_sensitive()

    def routing_state(self):
        """Mutable routing state to include in a checkpoint, or None.

        Exactly-once recovery replays the post-checkpoint delta stream
        through the *same* routing decisions as the original delivery;
        stateful groupings (the shuffle round-robin counter) expose their
        cursor here so :meth:`restore_routing_state` can rewind it.
        Stateless groupings -- pure functions of the tuple -- return
        None and need no rewind.
        """
        return None

    def restore_routing_state(self, state) -> None:
        """Rewind routing state captured by :meth:`routing_state`."""


class ShuffleGrouping(Grouping):
    """Round-robin distribution -- content-insensitive."""

    def __init__(self):
        self._next = 0

    def routing_state(self):
        return self._next

    def restore_routing_state(self, state) -> None:
        self._next = state

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        target = self._next % n_tasks
        self._next += 1
        return [target]

    def targets_batch(self, stream: str, rows: Sequence[tuple],
                      n_tasks: int) -> TaskBatches:
        start = self._next
        self._next += len(rows)
        if isinstance(rows, ColumnBatch):
            tasks = (start + np.arange(len(rows))) % n_tasks
            return bucket_by_task(rows, tasks)
        buckets: Dict[int, List[tuple]] = {}
        order: List[int] = []
        for offset, row in enumerate(rows):
            _bucket_append(buckets, order, (start + offset) % n_tasks, row)
        return [(task, buckets[task]) for task in order]

    def is_content_sensitive(self) -> bool:
        return False


class FieldsGrouping(Grouping):
    """Hash partitioning on selected field positions."""

    def __init__(self, positions: Sequence[int]):
        if not positions:
            raise ValueError("fields grouping needs at least one position")
        self.positions = tuple(positions)

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        key = tuple(values[p] for p in self.positions)
        return [stable_hash(key) % n_tasks]

    def targets_batch(self, stream: str, rows: Sequence[tuple],
                      n_tasks: int) -> TaskBatches:
        positions = self.positions
        if isinstance(rows, ColumnBatch):
            tasks = (hash_key_columns(rows, positions)
                     % np.uint64(n_tasks)).astype(np.int64)
            return bucket_by_task(rows, tasks)
        buckets: Dict[int, List[tuple]] = {}
        order: List[int] = []
        for row in rows:
            key = tuple(row[p] for p in positions)
            _bucket_append(buckets, order, stable_hash(key) % n_tasks, row)
        return [(task, buckets[task]) for task in order]


class AllGrouping(Grouping):
    """Broadcast to every task (dimension replication, small dimension tables)."""

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        return list(range(n_tasks))

    def targets_batch(self, stream: str, rows: Sequence[tuple],
                      n_tasks: int) -> TaskBatches:
        if isinstance(rows, ColumnBatch):
            # batches are immutable downstream, so replicas share columns
            return [(task, rows) for task in range(n_tasks)]
        return [(task, list(rows)) for task in range(n_tasks)]

    def is_content_sensitive(self) -> bool:
        return False


class GlobalGrouping(Grouping):
    """Everything to task 0 (final single-task aggregation)."""

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        return [0]

    def targets_batch(self, stream: str, rows: Sequence[tuple],
                      n_tasks: int) -> TaskBatches:
        if isinstance(rows, ColumnBatch):
            return [(0, rows)]
        return [(0, list(rows))]

    def is_content_sensitive(self) -> bool:
        return False


class CustomGrouping(Grouping):
    """Delegates to a user function ``fn(stream, values, n_tasks) -> [task]``."""

    def __init__(self, fn: Callable[[str, tuple, int], List[int]],
                 content_sensitive: bool = True):
        self.fn = fn
        self._content_sensitive = content_sensitive

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        return self.fn(stream, values, n_tasks)

    def is_content_sensitive(self) -> bool:
        return self._content_sensitive


class HypercubeGrouping(Grouping):
    """Routes one join input relation through a partitioning scheme.

    The edge from relation ``rel_name``'s source component to the joiner
    asks the shared partitioner for the destination machines of each tuple
    -- this is how Squall builds its schemes from Storm stream groupings.
    """

    def __init__(self, partitioner: Partitioner, rel_name: str):
        self.partitioner = partitioner
        self.rel_name = rel_name

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        if n_tasks != self.partitioner.n_machines:
            raise ValueError(
                f"joiner parallelism {n_tasks} does not match the scheme's "
                f"{self.partitioner.n_machines} machines"
            )
        return self.partitioner.destinations(self.rel_name, values)

    def targets_batch(self, stream: str, rows: Sequence[tuple],
                      n_tasks: int) -> TaskBatches:
        if n_tasks != self.partitioner.n_machines:
            raise ValueError(
                f"joiner parallelism {n_tasks} does not match the scheme's "
                f"{self.partitioner.n_machines} machines"
            )
        rel_name = self.rel_name
        if isinstance(rows, ColumnBatch):
            matrix = self.partitioner.destination_matrix(rel_name, rows)
            if matrix is not None:
                if matrix.shape[1] == 1:
                    return bucket_by_task(rows, matrix[:, 0])
                out: TaskBatches = []
                for task in range(n_tasks):
                    idx = np.flatnonzero((matrix == task).any(axis=1))
                    if len(idx):
                        out.append((task, rows.take(idx)))
                return out
            rows = rows.to_rows()
        destinations = self.partitioner.destinations
        buckets: Dict[int, List[tuple]] = {}
        order: List[int] = []
        for row in rows:
            for task in destinations(rel_name, row):
                _bucket_append(buckets, order, task, row)
        return [(task, buckets[task]) for task in order]

    def is_content_sensitive(self) -> bool:
        return self.partitioner.is_content_sensitive()

    def supports_task_local_routing(self) -> bool:
        return self.partitioner.supports_task_local_routing()

    def routing_description(self) -> str:
        return (f"the {type(self.partitioner).__name__} partitioner "
                f"(relation {self.rel_name!r})")


class KeyMappedGrouping(Grouping):
    """Round-robin assignment of a small predefined key domain.

    When the number of distinct GROUP BY / join keys is close to the
    parallelism, hash imperfections easily give one task twice its fair
    share.  Squall instead fixes an optimal key->task mapping up front
    (paper section 5, 'Skew due to hash imperfections').
    """

    def __init__(self, position: int, mapping: Dict[object, int]):
        self.position = position
        self.mapping = dict(mapping)

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        key = values[self.position]
        try:
            return [self.mapping[key] % n_tasks]
        except KeyError:
            # unseen key: fall back to hashing rather than dropping data
            return [stable_hash(key) % n_tasks]

    def targets_batch(self, stream: str, rows: Sequence[tuple],
                      n_tasks: int) -> TaskBatches:
        position = self.position
        mapping = self.mapping
        if isinstance(rows, ColumnBatch):
            values = rows.column_list(position)
            tasks = np.fromiter(
                ((mapping[key] if key in mapping else stable_hash(key))
                 % n_tasks for key in values),
                dtype=np.int64, count=len(values))
            return bucket_by_task(rows, tasks)
        buckets: Dict[int, List[tuple]] = {}
        order: List[int] = []
        for row in rows:
            key = row[position]
            assigned = mapping.get(key)
            if assigned is None and key not in mapping:
                assigned = stable_hash(key)
            _bucket_append(buckets, order, assigned % n_tasks, row)
        return [(task, buckets[task]) for task in order]
