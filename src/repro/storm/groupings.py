"""Stream groupings: how a stream is partitioned among a bolt's tasks.

Mirrors Storm's grouping vocabulary (shuffle, fields, all, global, custom)
plus two Squall-specific groupings: the hypercube grouping that implements
the partitioning schemes, and the key-mapped grouping that round-robins a
small predefined key domain to avoid hash imperfections (paper section 5).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.partitioning.base import Partitioner
from repro.util import stable_hash


class Grouping:
    """Chooses target task indices for each tuple of a stream."""

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        raise NotImplementedError

    def is_content_sensitive(self) -> bool:
        """Content-sensitive groupings route by value and are prone to
        temporal skew (section 5); content-insensitive ones are not."""
        return True


class ShuffleGrouping(Grouping):
    """Round-robin distribution -- content-insensitive."""

    def __init__(self):
        self._next = 0

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        target = self._next % n_tasks
        self._next += 1
        return [target]

    def is_content_sensitive(self) -> bool:
        return False


class FieldsGrouping(Grouping):
    """Hash partitioning on selected field positions."""

    def __init__(self, positions: Sequence[int]):
        if not positions:
            raise ValueError("fields grouping needs at least one position")
        self.positions = tuple(positions)

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        key = tuple(values[p] for p in self.positions)
        return [stable_hash(key) % n_tasks]


class AllGrouping(Grouping):
    """Broadcast to every task (dimension replication, small dimension tables)."""

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        return list(range(n_tasks))

    def is_content_sensitive(self) -> bool:
        return False


class GlobalGrouping(Grouping):
    """Everything to task 0 (final single-task aggregation)."""

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        return [0]

    def is_content_sensitive(self) -> bool:
        return False


class CustomGrouping(Grouping):
    """Delegates to a user function ``fn(stream, values, n_tasks) -> [task]``."""

    def __init__(self, fn: Callable[[str, tuple, int], List[int]],
                 content_sensitive: bool = True):
        self.fn = fn
        self._content_sensitive = content_sensitive

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        return self.fn(stream, values, n_tasks)

    def is_content_sensitive(self) -> bool:
        return self._content_sensitive


class HypercubeGrouping(Grouping):
    """Routes one join input relation through a partitioning scheme.

    The edge from relation ``rel_name``'s source component to the joiner
    asks the shared partitioner for the destination machines of each tuple
    -- this is how Squall builds its schemes from Storm stream groupings.
    """

    def __init__(self, partitioner: Partitioner, rel_name: str):
        self.partitioner = partitioner
        self.rel_name = rel_name

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        if n_tasks != self.partitioner.n_machines:
            raise ValueError(
                f"joiner parallelism {n_tasks} does not match the scheme's "
                f"{self.partitioner.n_machines} machines"
            )
        return self.partitioner.destinations(self.rel_name, values)

    def is_content_sensitive(self) -> bool:
        return self.partitioner.is_content_sensitive()


class KeyMappedGrouping(Grouping):
    """Round-robin assignment of a small predefined key domain.

    When the number of distinct GROUP BY / join keys is close to the
    parallelism, hash imperfections easily give one task twice its fair
    share.  Squall instead fixes an optimal key->task mapping up front
    (paper section 5, 'Skew due to hash imperfections').
    """

    def __init__(self, position: int, mapping: Dict[object, int]):
        self.position = position
        self.mapping = dict(mapping)

    def targets(self, stream: str, values: tuple, n_tasks: int) -> List[int]:
        key = values[self.position]
        try:
            return [self.mapping[key] % n_tasks]
        except KeyError:
            # unseen key: fall back to hashing rather than dropping data
            return [stable_hash(key) % n_tasks]
