"""Topology definition: spouts, bolts, and the builder wiring them up.

A topology is a DAG of named components.  Component factories are called
once per task (with the task index and parallelism), so sources can
partition their data across tasks the way Storm's spout instances do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.storm.groupings import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    ShuffleGrouping,
)

Emission = Tuple[str, tuple]  # (stream id, values)


class TopologyError(ValueError):
    """Invalid topology wiring (unknown component, duplicate name, ...)."""


class Spout:
    """A data source: pull-based, one tuple per call, None when exhausted."""

    def open(self, task_index: int, parallelism: int):
        """Called once before the first ``next_tuple``."""

    def next_tuple(self) -> Optional[Emission]:
        raise NotImplementedError

    def next_batch(self, max_rows: int) -> List[Emission]:
        """Pull up to ``max_rows`` emissions in one call.

        Returning fewer than ``max_rows`` emissions signals exhaustion (the
        per-tuple contract's ``None``).  The default implementation loops
        ``next_tuple``; sources with cheap bulk access override it.
        """
        emissions: List[Emission] = []
        while len(emissions) < max_rows:
            emission = self.next_tuple()
            if emission is None:
                break
            emissions.append(emission)
        return emissions


class ListSpout(Spout):
    """Emits a pre-materialised list of rows on one stream.

    Rows are striped across the spout's tasks, mirroring a partitioned
    input file read by parallel reader tasks.
    """

    def __init__(self, rows: Sequence[tuple], stream: str = "default"):
        self.rows = rows
        self.stream = stream
        self._position = 0
        self._step = 1

    def open(self, task_index: int, parallelism: int):
        self._position = task_index
        self._step = parallelism

    def next_tuple(self) -> Optional[Emission]:
        if self._position >= len(self.rows):
            return None
        row = self.rows[self._position]
        self._position += self._step
        return (self.stream, row)

    def next_batch(self, max_rows: int) -> List[Emission]:
        rows = self.rows
        stream = self.stream
        position = self._position
        step = self._step
        stop = min(len(rows), position + step * max_rows)
        emissions = [(stream, rows[i]) for i in range(position, stop, step)]
        self._position = position + step * len(emissions)
        return emissions


class Bolt:
    """A computation node: consumes tuples, returns emissions."""

    def prepare(self, task_index: int, parallelism: int):
        """Called once before the first ``execute``."""

    def execute(self, source: str, stream: str, values: tuple) -> List[Emission]:
        raise NotImplementedError

    def execute_batch(self, source: str, stream: str,
                      rows: Sequence[tuple]) -> List[Emission]:
        """Consume a micro-batch of tuples from one (source, stream).

        Emissions are returned in per-tuple order, so batched execution
        preserves the per-tuple semantics.  The default implementation
        loops ``execute``; hot bolts override it with a vectorized pass.
        """
        emissions: List[Emission] = []
        execute = self.execute
        for row in rows:
            emissions.extend(execute(source, stream, row))
        return emissions

    def finish(self) -> List[Emission]:
        """Called once after every upstream component finished (flush)."""
        return []


@dataclass
class ComponentSpec:
    name: str
    factory: Callable[[int, int], object]  # (task index, parallelism) -> instance
    parallelism: int
    is_spout: bool


@dataclass
class EdgeSpec:
    source: str
    target: str
    grouping: Grouping
    streams: Optional[frozenset] = None  # None = subscribe to all streams

    def subscribes(self, stream: str) -> bool:
        return self.streams is None or stream in self.streams


@dataclass
class Topology:
    components: Dict[str, ComponentSpec]
    edges: List[EdgeSpec]

    def out_edges(self, source: str) -> List[EdgeSpec]:
        return [edge for edge in self.edges if edge.source == source]

    def in_edges(self, target: str) -> List[EdgeSpec]:
        return [edge for edge in self.edges if edge.target == target]

    def upstream(self, target: str) -> List[str]:
        return sorted({edge.source for edge in self.in_edges(target)})

    def topological_order(self) -> List[str]:
        """Component names, sources first; raises on cycles."""
        incoming = {name: 0 for name in self.components}
        for edge in self.edges:
            incoming[edge.target] += 1
        ready = sorted(name for name, count in incoming.items() if count == 0)
        order = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for edge in self.out_edges(node):
                incoming[edge.target] -= 1
                if incoming[edge.target] == 0:
                    ready.append(edge.target)
            ready.sort()
        if len(order) != len(self.components):
            raise TopologyError("topology contains a cycle")
        return order


class BoltDeclarer:
    """Fluent grouping declarations, as in Storm's TopologyBuilder."""

    def __init__(self, builder: "TopologyBuilder", name: str):
        self._builder = builder
        self._name = name

    def _add(self, source: str, grouping: Grouping, streams=None) -> "BoltDeclarer":
        self._builder._edges.append(
            EdgeSpec(source, self._name, grouping,
                     frozenset(streams) if streams else None)
        )
        return self

    def shuffle_grouping(self, source: str, streams=None) -> "BoltDeclarer":
        return self._add(source, ShuffleGrouping(), streams)

    def fields_grouping(self, source: str, positions: Sequence[int],
                        streams=None) -> "BoltDeclarer":
        return self._add(source, FieldsGrouping(positions), streams)

    def all_grouping(self, source: str, streams=None) -> "BoltDeclarer":
        return self._add(source, AllGrouping(), streams)

    def global_grouping(self, source: str, streams=None) -> "BoltDeclarer":
        return self._add(source, GlobalGrouping(), streams)

    def custom_grouping(self, source: str, grouping: Grouping,
                        streams=None) -> "BoltDeclarer":
        return self._add(source, grouping, streams)


class TopologyBuilder:
    """Collects components and groupings, then validates and builds."""

    def __init__(self):
        self._components: Dict[str, ComponentSpec] = {}
        self._edges: List[EdgeSpec] = []

    def _register(self, name: str, factory, parallelism: int, is_spout: bool):
        if not name:
            raise TopologyError("component name must be non-empty")
        if name in self._components:
            raise TopologyError(f"duplicate component name {name!r}")
        if parallelism <= 0:
            raise TopologyError(f"parallelism of {name!r} must be positive")
        self._components[name] = ComponentSpec(name, factory, parallelism, is_spout)

    def set_spout(self, name: str, factory: Callable[[int, int], Spout],
                  parallelism: int = 1):
        self._register(name, factory, parallelism, is_spout=True)

    def set_bolt(self, name: str, factory: Callable[[int, int], Bolt],
                 parallelism: int = 1) -> BoltDeclarer:
        self._register(name, factory, parallelism, is_spout=False)
        return BoltDeclarer(self, name)

    def build(self) -> Topology:
        for edge in self._edges:
            if edge.source not in self._components:
                raise TopologyError(f"edge references unknown source {edge.source!r}")
            if edge.target not in self._components:
                raise TopologyError(f"edge references unknown target {edge.target!r}")
            if self._components[edge.target].is_spout:
                raise TopologyError(f"spout {edge.target!r} cannot receive streams")
        topology = Topology(dict(self._components), list(self._edges))
        topology.topological_order()  # raises on cycles
        return topology


def singleton_factory(instance) -> Callable[[int, int], object]:
    """Factory that hands the same instance to a parallelism-1 component."""

    def factory(task_index: int, parallelism: int):
        if parallelism != 1:
            raise TopologyError("singleton_factory requires parallelism 1")
        return instance

    return factory
