"""LocalCluster: executes a topology to completion in-process.

Tuples are pulled from spouts round-robin (interleaving the sources the
way concurrent spout tasks would) and pushed through the stream groupings
as ``(component, stream, rows)`` micro-batches on an explicit work stack
-- no recursion, so arbitrarily deep topologies run without hitting the
interpreter's recursion limit.

``batch_size=1`` reproduces Storm's per-tuple, pipelined execution model
exactly (the model the paper contrasts with Spark Streaming, section
8.1): every emission is routed individually and the work stack unwinds in
the same depth-first order as the seed engine's recursive dispatch.
Larger batch sizes amortize dispatch, grouping, and metric bookkeeping
over whole micro-batches; per-tuple *results* are unchanged (the engine's
operators are order-insensitive up to the final multiset), only the
interleaving differs.

``run(executor=...)`` selects the execution backend: ``inline`` (this
module's single-threaded loop, the default), or the staged shared-nothing
``threads`` / ``processes`` backends of :mod:`repro.storm.executor`,
which spread the tasks across parallel workers exchanging micro-batches.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.core.columnar import ColumnBatch
from repro.core.options import ExecutionOptions
from repro.obs import Observer
from repro.storm.executor import ExecutorError, Router, create_executor
from repro.storm.metrics import TopologyMetrics
from repro.storm.topology import Bolt, Spout, Topology, TopologyError

#: one unit of pending work: rows of `stream` (emitted by `source`)
#: awaiting execution at task `task` of component `target`
_WorkItem = Tuple[str, int, str, str, List[tuple]]


class LocalCluster:
    """Instantiates every task of a topology and runs it to completion."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self.metrics = TopologyMetrics()
        self._tasks: Dict[str, List[object]] = {}
        for name, spec in topology.components.items():
            instances = []
            for task_index in range(spec.parallelism):
                instance = spec.factory(task_index, spec.parallelism)
                if spec.is_spout:
                    if not isinstance(instance, Spout):
                        raise TopologyError(f"{name!r} factory did not return a Spout")
                    instance.open(task_index, spec.parallelism)
                else:
                    if not isinstance(instance, Bolt):
                        raise TopologyError(f"{name!r} factory did not return a Bolt")
                    instance.prepare(task_index, spec.parallelism)
                instances.append(instance)
            self._tasks[name] = instances
            self.metrics.register(name, spec.parallelism)
        # static routing table over the topology's own groupings: routing
        # is identical to the seed engine's per-dispatch edge walk
        self._router = Router(topology)
        self._coalesce = False
        #: per-run observability context; None = observe='off', which
        #: keeps every hot path byte-identical to the unobserved engine
        self._observer: Optional[Observer] = None

    def task(self, component: str, index: int):
        """Access a live task instance (tests, result extraction).

        After a ``processes`` run this returns the final task state
        shipped back from the owning worker."""
        return self._tasks[component][index]

    def tasks(self, component: str) -> List[object]:
        return list(self._tasks[component])

    @property
    def observer(self) -> Optional[Observer]:
        return self._observer

    def set_observer(self, observer: Optional[Observer]):
        """Attach a per-run observability context (None turns it off).

        The cluster's own counters join the observer's registry as a
        collector, so a ``/metrics`` scrape or ``profile()`` sees the
        topology counters without any extra recording cost."""
        self._observer = observer
        if observer is not None:
            observer.registry.register_collector(self.metrics.collect)
            # tell the skew gauge which edges are key-partitioned: one
            # entry per component, folding all of its in-edge groupings
            groupings: Dict[str, Tuple[str, bool]] = {}
            for name in self.topology.components:
                for edge in self.topology.out_edges(name):
                    description, possible = groupings.get(
                        edge.target, ("", False))
                    label = edge.grouping.routing_description()
                    if label not in description.split("+"):
                        description = (f"{description}+{label}"
                                       if description else label)
                    groupings[edge.target] = (
                        description, possible or edge.grouping.skew_possible())
            observer.set_groupings(groupings)

    # -- execution ---------------------------------------------------------

    def run(self, max_tuples: Optional[int] = None, batch_size: int = 1,
            executor: str = "inline", parallelism: Optional[int] = None,
            columnar: Optional[bool] = None,
            observe: Optional[str] = None) -> TopologyMetrics:
        """Drain all spouts, then flush bolts in topological order.

        ``batch_size`` is the number of tuples pulled from each spout per
        round; 1 gives exact per-tuple interleaving.  Downstream batches
        derive from the spout batches but are not re-chunked: a bolt
        emitting more rows than ``batch_size`` forwards them as one batch.

        ``executor`` selects the backend: ``"inline"`` (default) runs
        every task in this thread; ``"threads"`` / ``"processes"`` spread
        the tasks over ``parallelism`` shared-nothing workers (see
        :mod:`repro.storm.executor`).  All backends produce the same
        result multiset and per-component totals.

        ``columnar`` turns the columnar execution path on/off; the
        default (None) enables it for ``batch_size >= COLUMNAR_MIN_BATCH``
        -- below that the per-batch vector overhead outweighs the win, and
        ``batch_size=1`` keeps the seed engine's byte-identical path.
        """
        # ExecutionOptions.resolve is the single owner of the knob
        # defaults (incl. columnar-on-at-batch_size>=COLUMNAR_MIN_BATCH)
        resolved = ExecutionOptions(
            batch_size=batch_size, executor=executor,
            parallelism=parallelism, columnar=columnar,
            observe=observe).resolve()
        batch_size, columnar = resolved.batch_size, resolved.columnar
        if resolved.observe != "off" and self._observer is None:
            self.set_observer(Observer(resolved.observe))
        self._set_columnar(columnar)
        started = time.perf_counter()
        try:
            return self._run_inline(max_tuples, batch_size, executor,
                                    parallelism)
        finally:
            self.metrics.elapsed = time.perf_counter() - started

    def _run_inline(self, max_tuples, batch_size, executor, parallelism):
        if executor not in (None, "inline"):
            if max_tuples is not None:
                raise ExecutorError(
                    "max_tuples is only supported by the inline executor "
                    "(parallel spout draining has no global tuple cursor)"
                )
            backend = create_executor(executor, self, parallelism)
            return backend.run(batch_size=batch_size)
        self._coalesce = batch_size > 1
        observer = self._observer
        trace = observer is not None and observer.trace
        spouts: List[Tuple[str, int, Spout]] = []
        for name, spec in self.topology.components.items():
            if spec.is_spout:
                for task_index, instance in enumerate(self._tasks[name]):
                    spouts.append((name, task_index, instance))
        stack: List[_WorkItem] = []
        ctx_stack: Optional[list] = [] if trace else None
        pulled = 0
        active = list(spouts)
        while active:
            still_active = []
            for name, task_index, spout in active:
                limit = batch_size
                if max_tuples is not None:
                    limit = min(limit, max_tuples - pulled)
                    if limit <= 0:
                        return self.metrics
                if observer is not None:
                    started = time.perf_counter()
                    emissions = spout.next_batch(limit)
                    pull_time = time.perf_counter() - started
                else:
                    emissions = spout.next_batch(limit)
                if not emissions:
                    continue
                self.metrics.record_emit(name, task_index, len(emissions))
                self.metrics.record_batch(name, task_index)
                pulled += len(emissions)
                items = self._route_emissions(name, emissions)
                if observer is None:
                    self._push(stack, items)
                    self._drain(stack)
                else:
                    observer.on_execute(name, task_index, len(emissions),
                                        pull_time)
                    ctx = observer.root(name, task_index, len(emissions),
                                        pull_time)
                    self._push(stack, items)
                    if trace:
                        ctx_stack.extend([ctx] * len(items))
                    self._drain_observed(stack, ctx_stack, observer)
                if max_tuples is not None and pulled >= max_tuples:
                    return self.metrics
                # a short batch normally means exhaustion, but a columnar
                # spout's selection can thin a mid-stream chunk below the
                # limit -- keep any spout that says it has rows left
                has_more = getattr(spout, "has_more", None)
                if len(emissions) == limit or (
                        has_more is not None and has_more()):
                    still_active.append((name, task_index, spout))
            active = still_active
        self.flush_bolts()
        return self.metrics

    def _set_columnar(self, enabled: bool):
        """Flag every columnar-capable spout before draining starts.

        Must run before a parallel backend forks/starts its workers so
        the flag travels with the task instances.
        """
        for name, spec in self.topology.components.items():
            if not spec.is_spout:
                continue
            for instance in self._tasks[name]:
                if hasattr(instance, "columnar"):
                    instance.columnar = enabled

    # -- external drivers (continuous runtime) -----------------------------

    def set_coalescing(self, coalesce: bool):
        """Batch-mode routing toggle for external drivers.

        With coalescing on, consecutive emissions on one stream are routed
        as a single micro-batch; off reproduces the seed engine's
        per-tuple dispatch order.  ``run`` derives this from its
        ``batch_size``; push-based drivers (the streaming pump) set it
        once up front."""
        self._coalesce = coalesce

    def inject(self, source: str, emissions: List[Tuple[str, tuple]],
               task_index: int = 0):
        """Route externally produced emissions and run them to quiescence.

        The push-based entry point of the continuous runtime
        (:class:`repro.streaming.cluster.StreamingCluster`): each arriving
        micro-batch of a *resident* topology is fed here, attributed to
        task ``task_index`` of component ``source``, and driven through
        the same work-stack drain as spout batches."""
        if not emissions:
            return
        self.metrics.record_emit(source, task_index, len(emissions))
        self.metrics.record_batch(source, task_index)
        stack: List[_WorkItem] = []
        items = self._route_emissions(source, emissions)
        observer = self._observer
        if observer is None:
            self._push(stack, items)
            self._drain(stack)
            return
        ctx = None
        if self.topology.components[source].is_spout:
            # a new source batch starts a new trace; watermark-driven
            # injections (bolt components) stay untraced punctuations
            observer.on_execute(source, task_index, len(emissions), 0.0)
            ctx = observer.root(source, task_index, len(emissions), 0.0)
        ctx_stack: Optional[list] = [] if observer.trace else None
        self._push(stack, items)
        if ctx_stack is not None:
            ctx_stack.extend([ctx] * len(items))
        self._drain_observed(stack, ctx_stack, observer)

    def flush_bolts(self):
        """Run every bolt's ``finish()`` in topological order (end of
        stream): upstream components finish before downstream ones, so a
        snapshot aggregation flushes only after all its input arrived."""
        observer = self._observer
        stack: List[_WorkItem] = []
        ctx_stack: Optional[list] = \
            [] if (observer is not None and observer.trace) else None
        for name in self.topology.topological_order():
            spec = self.topology.components[name]
            if spec.is_spout:
                continue
            for task_index, bolt in enumerate(self._tasks[name]):
                emissions = bolt.finish()
                if not emissions:
                    continue
                self.metrics.record_emit(name, task_index, len(emissions))
                items = self._route_emissions(name, emissions)
                self._push(stack, items)
                if observer is None:
                    self._drain(stack)
                else:
                    # flush emissions are end-of-stream punctuations, not
                    # part of any source batch's trace
                    if ctx_stack is not None:
                        ctx_stack.extend([None] * len(items))
                    self._drain_observed(stack, ctx_stack, observer)

    # -- work queue --------------------------------------------------------

    @staticmethod
    def _push(stack: List[_WorkItem], items: List[_WorkItem]):
        """Push routed work so the stack pops it in generation order."""
        if items:
            stack.extend(reversed(items))

    def _drain(self, stack: List[_WorkItem]):
        """Run pending work to exhaustion (iterative depth-first)."""
        tasks = self._tasks
        metrics = self.metrics
        while stack:
            target, task, source, stream, rows = stack.pop()
            metrics.record_receive(source, target, task, len(rows))
            metrics.record_batch(target, task)
            metrics.record_path(isinstance(rows, ColumnBatch), len(rows))
            bolt: Bolt = tasks[target][task]
            emissions = bolt.execute_batch(source, stream, rows)
            if emissions:
                metrics.record_emit(target, task, len(emissions))
                self._push(stack, self._route_emissions(target, emissions))

    def _drain_observed(self, stack: List[_WorkItem],
                        ctx_stack: Optional[list], observer: Observer):
        """The observed twin of :meth:`_drain`: same scheduling, plus
        per-batch timing, queue-depth sampling, and (at the trace level)
        one span per hop.  ``ctx_stack`` stays aligned 1:1 with the work
        stack; a ``None`` context marks an untraced punctuation batch."""
        tasks = self._tasks
        metrics = self.metrics
        trace = ctx_stack is not None
        while stack:
            target, task, source, stream, rows = stack.pop()
            ctx = ctx_stack.pop() if trace else None
            metrics.record_receive(source, target, task, len(rows))
            metrics.record_batch(target, task)
            metrics.record_path(isinstance(rows, ColumnBatch), len(rows))
            observer.on_queue_depth("inline", len(stack) + 1)
            bolt: Bolt = tasks[target][task]
            started = time.perf_counter()
            emissions = bolt.execute_batch(source, stream, rows)
            elapsed = time.perf_counter() - started
            observer.on_execute(target, task, len(rows), elapsed)
            child = observer.span(ctx, target, task, len(rows), elapsed)
            if emissions:
                metrics.record_emit(target, task, len(emissions))
                items = self._route_emissions(target, emissions)
                if items:
                    stack.extend(reversed(items))
                    if trace:
                        ctx_stack.extend([child] * len(items))

    def _route_emissions(self, source: str,
                         emissions: List[Tuple[str, tuple]]) -> List[_WorkItem]:
        """Turn one component's emissions into routed work items.

        In per-tuple mode every emission is routed individually (exactly
        the seed engine's recursive dispatch order); in batch mode
        consecutive emissions on the same stream are routed as one batch.
        """
        return self._router.route(source, emissions, coalesce=self._coalesce)
