"""LocalCluster: executes a topology to completion in-process.

Tuples are pulled from spouts round-robin (interleaving the sources the
way concurrent spout tasks would) and pushed depth-first through the
stream groupings -- per-tuple, pipelined processing with no micro-batch
synchronisation, which is exactly Storm's execution model that the paper
contrasts with Spark Streaming (section 8.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.storm.metrics import TopologyMetrics
from repro.storm.topology import Bolt, Spout, Topology, TopologyError


class LocalCluster:
    """Instantiates every task of a topology and runs it to completion."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self.metrics = TopologyMetrics()
        self._tasks: Dict[str, List[object]] = {}
        for name, spec in topology.components.items():
            instances = []
            for task_index in range(spec.parallelism):
                instance = spec.factory(task_index, spec.parallelism)
                if spec.is_spout:
                    if not isinstance(instance, Spout):
                        raise TopologyError(f"{name!r} factory did not return a Spout")
                    instance.open(task_index, spec.parallelism)
                else:
                    if not isinstance(instance, Bolt):
                        raise TopologyError(f"{name!r} factory did not return a Bolt")
                    instance.prepare(task_index, spec.parallelism)
                instances.append(instance)
            self._tasks[name] = instances
            self.metrics.register(name, spec.parallelism)

    def task(self, component: str, index: int):
        """Access a live task instance (tests, result extraction)."""
        return self._tasks[component][index]

    def tasks(self, component: str) -> List[object]:
        return list(self._tasks[component])

    # -- execution ---------------------------------------------------------

    def run(self, max_tuples: Optional[int] = None) -> TopologyMetrics:
        """Drain all spouts, then flush bolts in topological order."""
        spouts: List[Tuple[str, int, Spout]] = []
        for name, spec in self.topology.components.items():
            if spec.is_spout:
                for task_index, instance in enumerate(self._tasks[name]):
                    spouts.append((name, task_index, instance))
        pulled = 0
        active = list(spouts)
        while active:
            still_active = []
            for name, task_index, spout in active:
                emission = spout.next_tuple()
                if emission is None:
                    continue
                stream, values = emission
                self.metrics.record_emit(name, task_index)
                self._dispatch(name, stream, values)
                pulled += 1
                if max_tuples is not None and pulled >= max_tuples:
                    return self.metrics
                still_active.append((name, task_index, spout))
            active = still_active
        # flush: upstream components finish before downstream ones
        for name in self.topology.topological_order():
            spec = self.topology.components[name]
            if spec.is_spout:
                continue
            for task_index, bolt in enumerate(self._tasks[name]):
                for stream, values in bolt.finish():
                    self.metrics.record_emit(name, task_index)
                    self._dispatch(name, stream, values)
        return self.metrics

    def _dispatch(self, source: str, stream: str, values: tuple):
        for edge in self.topology.out_edges(source):
            if not edge.subscribes(stream):
                continue
            parallelism = self.topology.components[edge.target].parallelism
            for target_task in edge.grouping.targets(stream, values, parallelism):
                if not 0 <= target_task < parallelism:
                    raise TopologyError(
                        f"grouping for {edge.source}->{edge.target} returned "
                        f"task {target_task} outside [0, {parallelism})"
                    )
                self.metrics.record_receive(source, edge.target, target_task)
                bolt: Bolt = self._tasks[edge.target][target_task]
                for out_stream, out_values in bolt.execute(source, stream, values):
                    self.metrics.record_emit(edge.target, target_task)
                    self._dispatch(edge.target, out_stream, out_values)
