"""Join predicates, join specifications and join-key equivalence classes.

A multi-way join is described by a :class:`JoinSpec`: the participating
relations (with size estimates and per-attribute skew information) and the
conditions between them.  Equality conditions induce *equivalence classes*
of attributes (the paper's join keys ``y``, ``z`` ...): these classes are
the candidate hypercube dimensions for the Hash-Hypercube, and -- after
skewed-attribute *renaming* -- for the Hybrid-Hypercube.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.schema import Schema

AttrRef = Tuple[str, str]  # (relation name, attribute name)

_THETA_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "!=": operator.ne,
}


class JoinCondition:
    """Base class for binary join conditions."""

    left: AttrRef
    right: AttrRef

    @property
    def is_equi(self) -> bool:
        return False

    def relations(self) -> Tuple[str, str]:
        return (self.left[0], self.right[0])

    def evaluate(self, left_value, right_value) -> bool:
        raise NotImplementedError

    def flipped(self) -> "JoinCondition":
        """The same condition with left/right swapped."""
        raise NotImplementedError


@dataclass(frozen=True)
class EquiCondition(JoinCondition):
    """``R.a = S.b`` -- the only condition type hash partitioning supports."""

    left: AttrRef
    right: AttrRef

    @property
    def is_equi(self) -> bool:
        return True

    def evaluate(self, left_value, right_value) -> bool:
        return left_value == right_value

    def flipped(self) -> "EquiCondition":
        return EquiCondition(self.right, self.left)

    def __repr__(self):
        return f"{self.left[0]}.{self.left[1]} = {self.right[0]}.{self.right[1]}"


@dataclass(frozen=True)
class ThetaCondition(JoinCondition):
    """``scale_l * R.a  OP  scale_r * S.b`` for OP in <, <=, >, >=, !=.

    Covers the paper's running example ``2 * R.B < S.C``.
    """

    left: AttrRef
    op: str
    right: AttrRef
    left_scale: float = 1.0
    right_scale: float = 1.0

    def __post_init__(self):
        if self.op not in _THETA_OPS:
            raise ValueError(f"unknown theta operator {self.op!r}")

    def evaluate(self, left_value, right_value) -> bool:
        return _THETA_OPS[self.op](
            self.left_scale * left_value, self.right_scale * right_value
        )

    def flipped(self) -> "ThetaCondition":
        flipped_op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "!=": "!="}
        return ThetaCondition(
            self.right, flipped_op[self.op], self.left,
            left_scale=self.right_scale, right_scale=self.left_scale,
        )

    def __repr__(self):
        return (
            f"{self.left_scale}*{self.left[0]}.{self.left[1]} {self.op} "
            f"{self.right_scale}*{self.right[0]}.{self.right[1]}"
        )


@dataclass(frozen=True)
class BandCondition(JoinCondition):
    """``|R.a - S.b| <= width`` -- the band joins targeted by M-Bucket/EWH."""

    left: AttrRef
    right: AttrRef
    width: float = 0.0

    def __post_init__(self):
        if self.width < 0:
            raise ValueError("band width must be non-negative")

    def evaluate(self, left_value, right_value) -> bool:
        return abs(left_value - right_value) <= self.width

    def flipped(self) -> "BandCondition":
        return BandCondition(self.right, self.left, self.width)

    def __repr__(self):
        return f"|{self.left[0]}.{self.left[1]} - {self.right[0]}.{self.right[1]}| <= {self.width}"


@dataclass
class RelationInfo:
    """Planning-time description of one join input.

    ``size`` is the (estimated) cardinality used by the hypercube dimension
    optimiser.  ``skewed`` marks attributes with data skew; the
    Hybrid-Hypercube uses random partitioning on those.  ``top_freq`` gives
    the fraction of tuples carrying the most frequent key per attribute
    (used in the skew-adjusted load formula ``(L - Lmf)/p + Lmf``).
    """

    name: str
    schema: Schema
    size: int = 0
    skewed: FrozenSet[str] = frozenset()
    top_freq: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        self.skewed = frozenset(self.skewed)
        for attr in self.skewed:
            self.schema.index_of(attr)  # raises on unknown attribute
        if self.size < 0:
            raise ValueError("relation size must be non-negative")

    def is_skewed(self, attribute: str) -> bool:
        return attribute in self.skewed

    def top_frequency(self, attribute: str) -> float:
        """Fraction of tuples with the most frequent key (0 = treat as uniform)."""
        return self.top_freq.get(attribute, 0.0)


class UnionFind:
    """Classic disjoint-set structure used to build join-key classes."""

    def __init__(self):
        self._parent: dict = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a, b):
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def groups(self) -> List[FrozenSet]:
        by_root: Dict[object, set] = {}
        for item in list(self._parent):
            by_root.setdefault(self.find(item), set()).add(item)
        return [frozenset(group) for group in by_root.values()]


class JoinSpec:
    """A multi-way join: relations plus the conditions between them."""

    def __init__(self, relations: Sequence[RelationInfo], conditions: Sequence[JoinCondition]):
        if not relations:
            raise ValueError("a join needs at least one relation")
        self.relations: List[RelationInfo] = list(relations)
        self.by_name: Dict[str, RelationInfo] = {}
        for info in self.relations:
            if info.name in self.by_name:
                raise ValueError(f"duplicate relation {info.name!r} in join spec")
            self.by_name[info.name] = info
        self.conditions: List[JoinCondition] = list(conditions)
        self._validate()

    def _validate(self):
        for cond in self.conditions:
            for rel_name, attr in (cond.left, cond.right):
                if rel_name not in self.by_name:
                    raise ValueError(f"condition references unknown relation {rel_name!r}")
                self.by_name[rel_name].schema.index_of(attr)
            if cond.left[0] == cond.right[0]:
                raise ValueError(
                    "join conditions must relate two distinct relations; "
                    f"got {cond!r} (self-joins need aliased relations)"
                )

    @property
    def relation_names(self) -> List[str]:
        return [info.name for info in self.relations]

    @property
    def is_equi_join(self) -> bool:
        return all(cond.is_equi for cond in self.conditions)

    def conditions_between(self, rel_a: str, rel_b: str) -> List[JoinCondition]:
        """All conditions linking two relations, oriented so left is ``rel_a``."""
        found = []
        for cond in self.conditions:
            if cond.left[0] == rel_a and cond.right[0] == rel_b:
                found.append(cond)
            elif cond.left[0] == rel_b and cond.right[0] == rel_a:
                found.append(cond.flipped())
        return found

    def conditions_involving(self, rel_name: str) -> List[JoinCondition]:
        return [
            cond for cond in self.conditions
            if rel_name in (cond.left[0], cond.right[0])
        ]

    def adjacency(self) -> Dict[str, set]:
        """Relation-level join graph."""
        graph = {name: set() for name in self.relation_names}
        for cond in self.conditions:
            a, b = cond.left[0], cond.right[0]
            graph[a].add(b)
            graph[b].add(a)
        return graph

    def is_connected(self) -> bool:
        """True when no Cartesian product is hidden in the spec."""
        graph = self.adjacency()
        seen = set()
        stack = [self.relation_names[0]]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph[node] - seen)
        return len(seen) == len(self.relations)

    def is_acyclic(self) -> bool:
        """True when the relation-level join graph is a forest."""
        edges = set()
        for cond in self.conditions:
            edge = frozenset((cond.left[0], cond.right[0]))
            edges.add(edge)
        return len(edges) <= len(self.relations) - 1 or not self._has_cycle(edges)

    def _has_cycle(self, edges) -> bool:
        uf = UnionFind()
        for edge in edges:
            a, b = sorted(edge)
            if uf.find(a) == uf.find(b):
                return True
            uf.union(a, b)
        return False

    def equality_classes(self) -> List[FrozenSet[AttrRef]]:
        """Connected components of attributes linked by equality conditions.

        Each class is one logical join key (the paper's ``y``, ``z`` ...)
        and a candidate hypercube dimension.  Attributes appearing only in
        theta/band conditions form singleton classes.
        """
        uf = UnionFind()
        for cond in self.conditions:
            if cond.is_equi:
                uf.union(cond.left, cond.right)
            else:
                uf.find(cond.left)
                uf.find(cond.right)
        return sorted(uf.groups(), key=lambda group: sorted(group))

    def join_attributes(self, rel_name: str) -> List[str]:
        """Attributes of ``rel_name`` that participate in any condition."""
        attrs = []
        for cond in self.conditions:
            for ref in (cond.left, cond.right):
                if ref[0] == rel_name and ref[1] not in attrs:
                    attrs.append(ref[1])
        return attrs

    def __repr__(self):
        rels = ", ".join(self.relation_names)
        return f"JoinSpec([{rels}], {self.conditions!r})"


def equi_join_spec(
    relations: Sequence[RelationInfo],
    keys: Iterable[Tuple[AttrRef, AttrRef]],
) -> JoinSpec:
    """Convenience constructor for pure equi-joins from (left, right) pairs."""
    return JoinSpec(relations, [EquiCondition(left, right) for left, right in keys])
