"""Relation schemas and typed rows.

Rows are plain Python tuples; a :class:`Schema` names and types the
positions.  This mirrors Squall's byte-array tuple representation: the
engine never boxes rows into per-field objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

VALID_TYPES = ("int", "float", "str", "date")


@dataclass(frozen=True)
class Field:
    """A named, typed column of a relation."""

    name: str
    type: str = "int"

    def __post_init__(self):
        if self.type not in VALID_TYPES:
            raise ValueError(
                f"unknown field type {self.type!r}; expected one of {VALID_TYPES}"
            )


class Schema:
    """An ordered list of :class:`Field` with O(1) name lookup."""

    def __init__(self, fields: Iterable[Field]):
        self.fields: Tuple[Field, ...] = tuple(fields)
        self._index = {}
        for position, fld in enumerate(self.fields):
            if fld.name in self._index:
                raise ValueError(f"duplicate field name {fld.name!r}")
            self._index[fld.name] = position

    @classmethod
    def of(cls, *specs: str) -> "Schema":
        """Build a schema from ``"name:type"`` strings (type defaults to int).

        >>> Schema.of("a", "b:str").names
        ('a', 'b')
        """
        fields = []
        for spec in specs:
            if ":" in spec:
                name, _, type_name = spec.partition(":")
                fields.append(Field(name, type_name))
            else:
                fields.append(Field(spec))
        return cls(fields)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(fld.name for fld in self.fields)

    @property
    def arity(self) -> int:
        return len(self.fields)

    def index_of(self, name: str) -> int:
        """Position of the named field; raises KeyError for unknown names."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"field {name!r} not in schema {self.names}"
            ) from None

    def has_field(self, name: str) -> bool:
        return name in self._index

    def field(self, name: str) -> Field:
        return self.fields[self.index_of(name)]

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names`` in the given order."""
        return Schema(self.field(name) for name in names)

    def concat(self, other: "Schema", prefix_self: str = "", prefix_other: str = "") -> "Schema":
        """Concatenate two schemas, optionally qualifying names to avoid clashes."""
        fields = [
            Field(prefix_self + fld.name, fld.type) for fld in self.fields
        ] + [Field(prefix_other + fld.name, fld.type) for fld in other.fields]
        return Schema(fields)

    def row_getter(self, name: str):
        """Compiled positional accessor for a field (fast path for operators)."""
        position = self.index_of(name)
        return lambda row: row[position]

    def __eq__(self, other):
        return isinstance(other, Schema) and self.fields == other.fields

    def __hash__(self):
        return hash(self.fields)

    def __len__(self):
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __repr__(self):
        inner = ", ".join(f"{f.name}:{f.type}" for f in self.fields)
        return f"Schema({inner})"


@dataclass
class Relation:
    """A named relation: schema plus (optionally) materialised rows.

    In the online engine relations are *streams*; the ``rows`` list is used
    by generators, tests and reference implementations.
    """

    name: str
    schema: Schema
    rows: List[tuple] = field(default_factory=list)

    def __post_init__(self):
        if not self.name:
            raise ValueError("relation name must be non-empty")

    @property
    def size(self) -> int:
        return len(self.rows)

    def append(self, row: tuple):
        if len(row) != self.schema.arity:
            raise ValueError(
                f"row arity {len(row)} does not match schema arity "
                f"{self.schema.arity} for relation {self.name!r}"
            )
        self.rows.append(tuple(row))

    def extend(self, rows: Iterable[tuple]):
        for row in rows:
            self.append(row)

    def column(self, name: str) -> list:
        """Materialise one column (test/statistics helper)."""
        position = self.schema.index_of(name)
        return [row[position] for row in self.rows]

    def head(self, n: int = 5) -> List[tuple]:
        return self.rows[:n]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return f"Relation({self.name!r}, {self.schema!r}, {len(self.rows)} rows)"


def qualified(relation_name: str, attribute: str) -> str:
    """Canonical ``relation.attribute`` spelling used across the planner."""
    return f"{relation_name}.{attribute}"


def split_qualified(name: str) -> Tuple[Optional[str], str]:
    """Split ``"R.a"`` into ``("R", "a")``; unqualified names map to (None, name)."""
    if "." in name:
        relation, _, attribute = name.partition(".")
        return relation, attribute
    return None, name
